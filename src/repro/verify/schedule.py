"""Independent validation of an emitted modulo schedule.

Given an applied :class:`~repro.core.slms.SLMSResult` and the original
loop, this module re-checks the transformation from scratch — it shares
no state with the scheduler beyond the AST:

**Layer 1 — modulo constraints.**  The DDG of the scheduled MIs is
re-derived with :func:`repro.analysis.ddg.build_ddg` and every edge
``src → dst, <distance d, delay δ>`` is checked against the row
arithmetic of SLMS's fixed placement (MI ``m`` of iteration ``k`` sits
at row ``k·II + m``, so ``σ(m) = m``)::

    d·II + (σ(dst) − σ(src))  ≥  1   for flow edges
    d·II + (σ(dst) − σ(src))  ≥  0   for anti/output edges

This is the paper's ``d·II + σ(dst) − σ(src) ≥ δ`` specialized to the
source-level delay model: a flow edge's value must be produced in a
strictly earlier row, while a same-row anti/output overlap is legal
because rows are emitted oldest-iteration first (see
:mod:`repro.core.mii`).  Violations are ``V201``; bookkeeping mismatches
(II/stage counts) are ``V202``; an imprecise re-derived graph on an
applied result is ``V203``.

**Layer 2 — structural replay.**  For loops with literal bounds the
emitted statement list is *flattened*: every loop in it is concretely
interpreted (tracking the loop variable's integer value), producing the
exact sequence of statement instances the transformed program executes.
Each instance is matched back to a pair ``(MI m, iteration g)`` by
instantiating MI ``m`` at every iteration value through the same
substitute-and-fold pipeline the emitters use, modulo the renames the
expansion introduced (MVE rotation names, scalar-expansion arrays).
Then:

* every MI must execute for exactly the iterations ``0 … N−1``, once
  each (``V204`` — the prologue/kernel/epilogue coverage check);
* every flow dependence must be serialized def-before-use in the
  flattened order (``V205``);
* scalar def-use chains are replayed through a symbolic store so that a
  use of ``x`` in MI ``m`` of iteration ``g`` — wherever the renaming
  put it — reads exactly the value MI ``def(x)`` produced for the
  iteration the original program would read (``V206``), including the
  live-out copies after the loop;
* an emitted statement that is neither an MI instance nor a pure
  bookkeeping copy is ``V207``.

Result shapes the replay cannot decide (symbolic bounds behind a
runtime guard, reduction-lane splits whose header was rewritten) are
skipped with an ``N208`` note, never a false error.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.ddg import DependenceGraph, build_ddg
from repro.analysis.loopinfo import LoopInfo
from repro.core.slms import SLMSResult
from repro.lang.ast_nodes import (
    ArrayRef,
    Assign,
    BinOp,
    Call,
    Decl,
    Expr,
    ExprStmt,
    FloatLit,
    For,
    If,
    IntLit,
    Node,
    ParGroup,
    Stmt,
    Ternary,
    UnaryOp,
    Var,
    While,
)
from repro.lang.visitors import collect_vars, fold_constants, substitute_expr, walk
from repro.verify.diagnostics import Diagnostic, DiagnosticBag, has_errors

# Flattening budgets: far above anything the corpus produces (the
# largest workloads run a few thousand statement instances), but they
# keep a pathological input from hanging the validator.
_MAX_EVENTS = 500_000
_MAX_LOOP_ITERS = 1_000_000

# Cap per-code reports so one systematic corruption doesn't emit
# thousands of identical diagnostics.
_MAX_REPORTS_PER_CODE = 5


@dataclass
class ValidationReport:
    """Outcome of validating one :class:`SLMSResult`."""

    diagnostics: List[Diagnostic] = field(default_factory=list)
    events: int = 0
    matched: int = 0
    structural: bool = False  # did the layer-2 replay run?

    @property
    def ok(self) -> bool:
        return not has_errors(self.diagnostics)


# ---------------------------------------------------------------------------
# Expression evaluation over a concrete integer environment
# ---------------------------------------------------------------------------


def _eval_int(expr: Expr, env: Dict[str, int]) -> Optional[int]:
    """Evaluate an integer expression; ``None`` when not statically known."""
    if isinstance(expr, IntLit):
        return expr.value
    if isinstance(expr, Var):
        return env.get(expr.name)
    if isinstance(expr, UnaryOp):
        inner = _eval_int(expr.operand, env)
        if inner is None:
            return None
        if expr.op == "-":
            return -inner
        if expr.op == "+":
            return inner
        if expr.op == "!":
            return 0 if inner else 1
        return None
    if isinstance(expr, BinOp):
        left = _eval_int(expr.left, env)
        right = _eval_int(expr.right, env)
        if left is None or right is None:
            return None
        op = expr.op
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if op == "<":
            return int(left < right)
        if op == "<=":
            return int(left <= right)
        if op == ">":
            return int(left > right)
        if op == ">=":
            return int(left >= right)
        if op == "==":
            return int(left == right)
        if op == "!=":
            return int(left != right)
        return None
    return None


class _FlattenBailout(Exception):
    """The statement list cannot be concretely replayed."""

    def __init__(self, reason: str):
        self.reason = reason
        super().__init__(reason)


def _flatten(stmts: List[Stmt], var: str, env: Dict[str, int], out: List[Stmt]) -> None:
    """Unroll the emitted statement list into concrete statement events.

    Assignments to the loop variable are bookkeeping (they advance
    ``env``); everything else is emitted with the loop variable folded
    to its current value.
    """
    for stmt in stmts:
        if isinstance(stmt, ParGroup):
            _flatten(stmt.stmts, var, env, out)
        elif isinstance(stmt, Decl):
            continue  # hoisted declarations carry no schedule content
        elif isinstance(stmt, Assign) and isinstance(stmt.target, Var) and stmt.target.name == var:
            value = _eval_int(stmt.expanded_value(), env)
            if value is None:
                raise _FlattenBailout(
                    f"loop variable {var!r} assigned a non-constant value"
                )
            env[var] = value
        elif isinstance(stmt, For):
            if not isinstance(stmt.init, Assign) or not isinstance(stmt.init.target, Var):
                raise _FlattenBailout("emitted loop has a non-assignment init")
            init_val = _eval_int(stmt.init.expanded_value(), env)
            if init_val is None:
                raise _FlattenBailout("emitted loop bound is not statically known")
            env[stmt.init.target.name] = init_val
            iters = 0
            while True:
                cond = _eval_int(stmt.cond, env) if stmt.cond is not None else 1
                if cond is None:
                    raise _FlattenBailout("emitted loop condition is not static")
                if not cond:
                    break
                iters += 1
                if iters > _MAX_LOOP_ITERS:
                    raise _FlattenBailout("flattening iteration budget exceeded")
                _flatten(stmt.body, var, env, out)
                if stmt.step is not None:
                    _flatten([stmt.step], var, env, out)
        elif isinstance(stmt, If):
            cond = _eval_int(stmt.cond, env)
            if cond is None:
                raise _FlattenBailout("emitted guard condition is not static")
            _flatten(stmt.then if cond else stmt.els, var, env, out)
        elif isinstance(stmt, While):
            raise _FlattenBailout("emitted while loop cannot be replayed")
        else:
            if var in env:
                # The rewriters never mutate their input, and with
                # ``reuse`` the event shares unchanged interior nodes
                # with the emitted statement — safe because replay
                # treats every tree as read-only, and it makes the
                # canonical-key memo hit across iterations.
                event = substitute_expr(stmt, var, IntLit(env[var]), reuse=True)
            else:
                event = fold_constants(stmt, reuse=True)
            out.append(event)  # type: ignore[arg-type]
            if len(out) > _MAX_EVENTS:
                raise _FlattenBailout("flattening event budget exceeded")


# ---------------------------------------------------------------------------
# Canonical keys and strict unification (renaming-aware matching)
# ---------------------------------------------------------------------------


def _canon(
    node: Node,
    wildcard_arrays: Set[str],
    memo: Optional[Dict[int, object]] = None,
) -> object:
    """Rename-insensitive structural key: scalars (and renamed arrays)
    collapse to a wildcard; literals, operators, and original array
    names stay, which is where the matching selectivity comes from.

    ``memo`` maps ``id(node)`` to its key.  The rewriters share
    unchanged subtrees between instances, so one matching session
    canonicalizes the same subtree objects many times over; a shared
    memo turns those into O(1) lookups.  Only valid while every
    canonicalized root stays referenced (ids must not be recycled) —
    callers keep instances/events alive for the whole session.
    """
    if memo is not None:
        hit = memo.get(id(node))
        if hit is not None:
            return hit
        res = _canon_compute(node, wildcard_arrays, memo)
        memo[id(node)] = res
        return res
    return _canon_compute(node, wildcard_arrays, None)


def _canon_compute(
    node: Node,
    wildcard_arrays: Set[str],
    memo: Optional[Dict[int, object]],
) -> object:
    if isinstance(node, Var):
        return "□"
    if isinstance(node, IntLit):
        return ("i", node.value)
    if isinstance(node, FloatLit):
        return ("f", repr(node.value))
    if isinstance(node, ArrayRef):
        if node.name in wildcard_arrays:
            return "□"
        return ("ref", node.name, tuple(_canon(i, wildcard_arrays, memo) for i in node.indices))
    if isinstance(node, BinOp):
        return ("b", node.op, _canon(node.left, wildcard_arrays, memo), _canon(node.right, wildcard_arrays, memo))
    if isinstance(node, UnaryOp):
        return ("u", node.op, _canon(node.operand, wildcard_arrays, memo))
    if isinstance(node, Ternary):
        return (
            "t",
            _canon(node.cond, wildcard_arrays, memo),
            _canon(node.then, wildcard_arrays, memo),
            _canon(node.els, wildcard_arrays, memo),
        )
    if isinstance(node, Call):
        return ("call", node.name, tuple(_canon(a, wildcard_arrays, memo) for a in node.args))
    if isinstance(node, Assign):
        return (
            "=",
            node.op,
            _canon(node.target, wildcard_arrays, memo),
            _canon(node.value, wildcard_arrays, memo),
        )
    if isinstance(node, If):
        return (
            "if",
            _canon(node.cond, wildcard_arrays, memo),
            tuple(_canon(s, wildcard_arrays, memo) for s in node.then),
            tuple(_canon(s, wildcard_arrays, memo) for s in node.els),
        )
    if isinstance(node, ExprStmt):
        return ("e", _canon(node.expr, wildcard_arrays, memo))
    if isinstance(node, ParGroup):
        return ("par", tuple(_canon(s, wildcard_arrays, memo) for s in node.stmts))
    return ("?", type(node).__name__)


# A concrete storage location in the replayed program:
#   ("s", name)        — a scalar
#   ("e", arr, index)  — one array element (constant index)
#   ("a", arr)         — an array summary (index not statically known)
Location = Tuple


@dataclass
class _Bindings:
    """Scalar occurrences of one matched statement instance."""

    uses: List[Tuple[str, Location]] = field(default_factory=list)
    defs: List[Tuple[str, Location]] = field(default_factory=list)


def _event_location(node: Expr) -> Optional[Location]:
    if isinstance(node, Var):
        return ("s", node.name)
    if isinstance(node, ArrayRef):
        if len(node.indices) == 1 and isinstance(node.indices[0], IntLit):
            return ("e", node.name, node.indices[0].value)
        return ("a", node.name)
    return None


def _rename_admits(
    ev_name: str, pat_name: str, origins: Dict[str, str]
) -> bool:
    """May rename ``ev_name`` stand for pattern scalar ``pat_name``?

    With provenance (``SLMSResult.renames``) a rename only matches the
    scalar it was created for — ``s1`` (a rotation of ``s``) never
    unifies against ``t``.  Without provenance (older pickled results)
    any rename is admitted, as before.
    """
    if not origins:
        return True
    origin = origins.get(ev_name)
    return origin is None or origin == pat_name


def _unify(
    pat: Node,
    ev: Node,
    rename_scalars: Set[str],
    rename_arrays: Set[str],
    bindings: _Bindings,
    role: str = "use",
    origins: Optional[Dict[str, str]] = None,
) -> bool:
    """Match one emitted node against an instantiated MI pattern.

    A pattern scalar may appear in the event either under its own name,
    under an expansion rename (MVE rotation names bind per occurrence —
    a def and a previous-iteration use of the same scalar legitimately
    land in *different* rotated names), or as an element of a
    scalar-expansion array.  Which value those locations hold is not
    decided here; the store replay checks that afterwards.
    """
    origins = origins or {}
    if isinstance(pat, Var):
        if isinstance(ev, Var) and (
            ev.name == pat.name
            or (
                ev.name in rename_scalars
                and _rename_admits(ev.name, pat.name, origins)
            )
        ):
            loc = _event_location(ev)
        elif isinstance(ev, ArrayRef) and ev.name in rename_arrays and (
            _rename_admits(ev.name, pat.name, origins)
        ):
            loc = _event_location(ev)
        else:
            return False
        assert loc is not None
        (bindings.defs if role == "def" else bindings.uses).append((pat.name, loc))
        return True
    if isinstance(pat, IntLit):
        return isinstance(ev, IntLit) and ev.value == pat.value
    if isinstance(pat, FloatLit):
        return isinstance(ev, FloatLit) and ev.value == pat.value
    if isinstance(pat, ArrayRef):
        if not isinstance(ev, ArrayRef) or ev.name != pat.name:
            return False
        if len(ev.indices) != len(pat.indices):
            return False
        return all(
            _unify(p, e, rename_scalars, rename_arrays, bindings, origins=origins)
            for p, e in zip(pat.indices, ev.indices)
        )
    if isinstance(pat, BinOp):
        return (
            isinstance(ev, BinOp)
            and ev.op == pat.op
            and _unify(pat.left, ev.left, rename_scalars, rename_arrays, bindings, origins=origins)
            and _unify(pat.right, ev.right, rename_scalars, rename_arrays, bindings, origins=origins)
        )
    if isinstance(pat, UnaryOp):
        return (
            isinstance(ev, UnaryOp)
            and ev.op == pat.op
            and _unify(pat.operand, ev.operand, rename_scalars, rename_arrays, bindings, origins=origins)
        )
    if isinstance(pat, Ternary):
        return (
            isinstance(ev, Ternary)
            and _unify(pat.cond, ev.cond, rename_scalars, rename_arrays, bindings, origins=origins)
            and _unify(pat.then, ev.then, rename_scalars, rename_arrays, bindings, origins=origins)
            and _unify(pat.els, ev.els, rename_scalars, rename_arrays, bindings, origins=origins)
        )
    if isinstance(pat, Call):
        return (
            isinstance(ev, Call)
            and ev.name == pat.name
            and len(ev.args) == len(pat.args)
            and all(
                _unify(p, e, rename_scalars, rename_arrays, bindings, origins=origins)
                for p, e in zip(pat.args, ev.args)
            )
        )
    if isinstance(pat, Assign):
        if not isinstance(ev, Assign) or ev.op != pat.op:
            return False
        if isinstance(pat.target, Var):
            if not _unify(
                pat.target, ev.target, rename_scalars, rename_arrays, bindings, role="def", origins=origins
            ):
                return False
            if pat.op is not None:
                # A compound assign reads the old value of its target;
                # record that as a use at the same location.
                bindings.uses.append((pat.target.name, bindings.defs[-1][1]))
        else:
            if not _unify(pat.target, ev.target, rename_scalars, rename_arrays, bindings, origins=origins):
                return False
        return _unify(pat.value, ev.value, rename_scalars, rename_arrays, bindings, origins=origins)
    if isinstance(pat, If):
        return (
            isinstance(ev, If)
            and len(ev.then) == len(pat.then)
            and len(ev.els) == len(pat.els)
            and _unify(pat.cond, ev.cond, rename_scalars, rename_arrays, bindings, origins=origins)
            and all(
                _unify(p, e, rename_scalars, rename_arrays, bindings, origins=origins)
                for p, e in zip(pat.then, ev.then)
            )
            and all(
                _unify(p, e, rename_scalars, rename_arrays, bindings, origins=origins)
                for p, e in zip(pat.els, ev.els)
            )
        )
    if isinstance(pat, ExprStmt):
        return isinstance(ev, ExprStmt) and _unify(
            pat.expr, ev.expr, rename_scalars, rename_arrays, bindings
        )
    return False


def _is_pure_copy(stmt: Stmt) -> Optional[Tuple[Location, Optional[Expr]]]:
    """Bookkeeping copy shape: ``loc = loc`` or ``loc = literal``.

    Returns ``(target_location, source_expr)``; source ``None`` is never
    returned — literals pass through as the expression itself.
    """
    if not isinstance(stmt, Assign) or stmt.op is not None:
        return None
    target = _event_location(stmt.target)
    if target is None or target[0] == "a":
        return None
    if isinstance(stmt.value, (Var, IntLit, FloatLit)):
        return target, stmt.value
    if isinstance(stmt.value, ArrayRef) and _event_location(stmt.value) is not None:
        return target, stmt.value
    return None


# ---------------------------------------------------------------------------
# The validator
# ---------------------------------------------------------------------------


def _scalar_def_mis(mis: List[Stmt]) -> Tuple[Dict[str, int], Set[str]]:
    """Map each scalar to its unique defining MI.

    Scalars with several defining MIs or with defs nested under control
    flow go into the exempt set: the linear store replay cannot predict
    their values, and (by construction) the expansions never rename
    them, so skipping their checks loses nothing.
    """
    def_mi: Dict[str, int] = {}
    exempt: Set[str] = set()
    for m, stmt in enumerate(mis):
        plain: Set[str] = set()
        if isinstance(stmt, Assign) and isinstance(stmt.target, Var):
            plain.add(stmt.target.name)
            # A pure scalar-to-scalar copy MI (a fuzzer shape like
            # ``s2 = s`` surviving multi-def renaming) is structurally
            # indistinguishable from the expansions' bookkeeping
            # copies, so the store replay cannot attribute either
            # name's value reliably: exempt both ends.
            if stmt.op is None and isinstance(stmt.value, Var):
                exempt.add(stmt.target.name)
                exempt.add(stmt.value.name)
        for node in walk(stmt):
            if isinstance(node, If):
                for inner in list(node.then) + list(node.els):
                    for sub in walk(inner):
                        if isinstance(sub, Assign) and isinstance(sub.target, Var):
                            exempt.add(sub.target.name)
        for name in plain:
            if name in def_mi:
                exempt.add(name)
            else:
                def_mi[name] = m
    return def_mi, exempt


class _Capped:
    """Per-code diagnostic limiter."""

    def __init__(self, bag: DiagnosticBag):
        self.bag = bag
        self.counts: Dict[str, int] = {}

    def error(self, code: str, message: str) -> None:
        seen = self.counts.get(code, 0)
        self.counts[code] = seen + 1
        if seen < _MAX_REPORTS_PER_CODE:
            self.bag.error(code, None, message)
        elif seen == _MAX_REPORTS_PER_CODE:
            self.bag.note(
                "N208", None, f"further {code} reports suppressed"
            )


def validate_result(result: SLMSResult, loop: For) -> ValidationReport:
    """Validate an SLMS outcome against the loop it transformed.

    Declined results validate trivially.  Applied results get the
    layer-1 modulo-constraint check always, and the layer-2 structural
    replay whenever the loop has literal bounds and the result shape is
    replayable (``N208`` notes mark the skips).
    """
    report = ValidationReport()
    bag = DiagnosticBag()
    if not result.applied:
        return report

    info = LoopInfo.from_for(loop)
    if info is None:
        bag.note("N208", None, "original loop is not canonical; nothing to validate")
        report.diagnostics = bag.diagnostics
        return report
    if getattr(result, "lanes", 0) >= 2:
        bag.note(
            "N208",
            None,
            "reduction-lane split rewrote the loop header; "
            "schedule validation skipped",
        )
        report.diagnostics = bag.diagnostics
        return report

    # ---- layer 1: bookkeeping + modulo constraints ----------------------
    mis = result.final_mis
    n = len(mis)
    ii = result.ii
    if not mis or ii is None:
        bag.error("V202", None, "applied result carries no MIs or no II")
        report.diagnostics = bag.diagnostics
        return report
    if not 1 <= ii < n:
        bag.error("V202", None, f"II={ii} is outside [1, n_mis) for {n} MIs")
    if result.n_mis is not None and result.n_mis != n:
        bag.error(
            "V202", None, f"n_mis={result.n_mis} but {n} final MIs recorded"
        )
    expected_stages = -(-n // ii) if ii >= 1 else None
    if expected_stages is not None and result.stages != expected_stages:
        bag.error(
            "V202",
            None,
            f"stages={result.stages} but ⌈{n}/{ii}⌉ = {expected_stages}",
        )

    graph = build_ddg(mis, info)
    if not graph.precise:
        bag.error(
            "V203",
            None,
            "re-derived dependence graph is imprecise for an applied "
            "result: " + "; ".join(graph.reasons),
        )
    capped = _Capped(bag)
    for edge in graph.edges:
        slack = edge.distance * ii + (edge.dst - edge.src)
        need = 1 if edge.kind == "flow" else 0
        if slack < need:
            capped.error(
                "V201",
                f"{edge.kind} dependence on {edge.var!r} "
                f"MI{edge.src} → MI{edge.dst} <dist={edge.distance}, "
                f"delay={edge.delay}>: slack {edge.distance}·{ii} + "
                f"({edge.dst} − {edge.src}) = {slack} < {need}",
            )

    # ---- layer 2: structural replay ---------------------------------------
    structural_skip: Optional[str] = None
    if info.trip_count is None:
        structural_skip = "symbolic loop bounds (runtime-guarded emission)"
    elif info.lo_const is None:
        structural_skip = "symbolic lower bound"
    if structural_skip is None:
        _structural_replay(result, info, graph, bag, report)
    else:
        bag.note("N208", None, f"structural replay skipped: {structural_skip}")

    report.diagnostics = bag.diagnostics
    return report


def _structural_replay(
    result: SLMSResult,
    info: LoopInfo,
    graph: DependenceGraph,
    bag: DiagnosticBag,
    report: ValidationReport,
) -> None:
    mis = result.final_mis
    trips = info.trip_count
    lo = info.lo_const
    assert trips is not None and lo is not None and result.ii is not None
    capped = _Capped(bag)

    # Names introduced *after* the MIs were fixed (MVE rotations,
    # scalar-expansion arrays) are the only legal renames; anything the
    # MIs themselves mention must match verbatim.
    mentioned: Set[str] = set()
    for mi in mis:
        mentioned |= collect_vars(mi)
        mentioned |= {node.name for node in walk(mi) if isinstance(node, ArrayRef)}
    rename_scalars = set(result.new_scalars) - mentioned
    rename_arrays = {d.name for d in result.new_decls if d.dims} - mentioned
    # Rename provenance (rotation name -> rotated scalar): lets unify
    # reject a rename of one scalar standing in for another.
    origins: Dict[str, str] = dict(getattr(result, "renames", {}) or {})

    # ---- flatten ---------------------------------------------------------
    events: List[Stmt] = []
    try:
        _flatten(list(result.stmts), info.var, {}, events)
    except _FlattenBailout as exc:
        bag.note("N208", None, f"structural replay skipped: {exc.reason}")
        return
    report.events = len(events)
    report.structural = True

    # ---- index every MI instance by canonical key -----------------------
    # The memos live exactly as long as the trees they key (instances /
    # events hold every root for the whole session), so id-keyed
    # lookups are safe; instances share subtrees across iterations,
    # which is where the memo pays off.
    mi_memo: Dict[int, object] = {}
    event_memo: Dict[int, object] = {}
    instances: Dict[Tuple[int, int], Stmt] = {}
    index: Dict[object, List[Tuple[int, int]]] = {}
    for m, mi in enumerate(mis):
        if info.var in collect_vars(mi):
            for g in range(trips):
                inst = substitute_expr(
                    mi, info.var, IntLit(lo + g * info.step), reuse=True
                )
                instances[(m, g)] = inst  # type: ignore[assignment]
                index.setdefault(_canon(inst, set(), mi_memo), []).append((m, g))
        else:
            inst = fold_constants(mi, reuse=True)
            key = _canon(inst, set(), mi_memo)
            for g in range(trips):
                instances[(m, g)] = inst  # type: ignore[assignment]
                index.setdefault(key, []).append((m, g))

    # ---- match events, replaying the store as we go ---------------------
    def_mi, exempt = _scalar_def_mis(mis)

    def expected_tag(name: str, m: int, g: int) -> Tuple:
        d = def_mi.get(name)
        if d is None:
            return ("init", name)
        # Uses at or before the defining MI read the previous iteration.
        read_iter = g if m > d else g - 1
        if read_iter < 0:
            return ("init", name)
        return ("def", name, read_iter)

    store: Dict[Location, Tuple] = {}

    def read(loc: Location) -> Tuple:
        return store.get(loc, ("init", loc[1] if loc[0] == "s" else loc))

    claimed: Set[Tuple[int, int]] = set()
    positions: Dict[Tuple[int, int], int] = {}
    per_mi_iters: Dict[int, List[int]] = {m: [] for m in range(len(mis))}

    for pos, event in enumerate(events):
        key = _canon(event, rename_arrays, event_memo)
        # Structurally aliased instances are possible (``A[8] = s`` is
        # both MI3 of iteration 5 and MI4 of iteration 0 when the MIs
        # store the same scalar at offsets 3 and 8), so collect every
        # unifiable candidate and prefer one whose scalar uses agree
        # with the replayed store; falling back to the first candidate
        # preserves the old greedy behaviour when none is consistent.
        candidates: List[Tuple[int, int, _Bindings]] = []
        for m, g in index.get(key, ()):  # insertion order: (m asc, g asc)
            if (m, g) in claimed:
                continue
            bindings = _Bindings()
            if _unify(
                instances[(m, g)],
                event,
                rename_scalars,
                rename_arrays,
                bindings,
                origins=origins,
            ):
                candidates.append((m, g, bindings))
        match: Optional[Tuple[int, int, _Bindings]] = None
        for m, g, bindings in candidates:
            if all(
                read(loc) == expected_tag(name, m, g)
                for name, loc in bindings.uses
                if name not in exempt and name != info.var and loc[0] != "a"
            ):
                match = (m, g, bindings)
                break
        if match is None and candidates:
            match = candidates[0]
        if match is None:
            copy = _is_pure_copy(event)
            if copy is None:
                capped.error(
                    "V207",
                    f"emitted statement #{pos} matches no MI instance "
                    "and is not a bookkeeping copy",
                )
            else:
                target, source = copy
                src_loc = _event_location(source)  # type: ignore[arg-type]
                if src_loc is None:
                    store[target] = ("const",)
                else:
                    store[target] = read(src_loc)
            continue

        m, g, bindings = match
        claimed.add((m, g))
        positions[(m, g)] = pos
        per_mi_iters[m].append(g)
        report.matched += 1
        for name, loc in bindings.uses:
            if name in exempt or name == info.var or loc[0] == "a":
                continue
            want = expected_tag(name, m, g)
            got = read(loc)
            if got != want:
                capped.error(
                    "V206",
                    f"MI{m} iteration {g} reads {name!r} from "
                    f"{loc}: holds {got}, expected {want}",
                )
        for name, loc in bindings.defs:
            if loc[0] == "a":
                continue
            store[loc] = ("def", name, g)

    # ---- iteration-space coverage ---------------------------------------
    want_iters = list(range(trips))
    for m, iters in per_mi_iters.items():
        if sorted(iters) != want_iters:
            missing = sorted(set(want_iters) - set(iters))
            extra = sorted(set(iters) - set(want_iters))
            dups = sorted({g for g in iters if iters.count(g) > 1})
            detail = []
            if missing:
                detail.append(f"missing {missing[:6]}")
            if extra:
                detail.append(f"out-of-space {extra[:6]}")
            if dups:
                detail.append(f"duplicated {dups[:6]}")
            capped.error(
                "V204",
                f"MI{m} covers {len(iters)} of {trips} iterations: "
                + "; ".join(detail),
            )

    # ---- flow-dependence serialization -----------------------------------
    # Only array-carried flow edges: a scalar flow edge's value may
    # legally cross rows through an expansion copy (that is what MVE
    # renaming is *for*), and the store replay above already pins every
    # scalar read to the right iteration's definition.
    array_names = {
        node.name for mi in mis for node in walk(mi) if isinstance(node, ArrayRef)
    }
    for edge in graph.edges:
        if edge.kind != "flow" or edge.var not in array_names:
            continue
        violated = 0
        for g in range(trips - edge.distance):
            a = positions.get((edge.src, g))
            b = positions.get((edge.dst, g + edge.distance))
            if a is not None and b is not None and a >= b:
                violated += 1
        if violated:
            capped.error(
                "V205",
                f"flow dependence on {edge.var!r} MI{edge.src} → "
                f"MI{edge.dst} <dist={edge.distance}> runs use before "
                f"def in {violated} iteration(s)",
            )

    # ---- live-out consistency --------------------------------------------
    for name in sorted(def_mi):
        if name in exempt or name == info.var:
            continue
        got = read(("s", name))
        want = ("def", name, trips - 1)
        if got != want:
            capped.error(
                "V206",
                f"live-out value of {name!r} is {got}, expected {want} "
                "(last iteration's definition)",
            )
