"""Cross-phase IR invariant checker (``V21x`` series).

Every boundary the pipeline's values cross gets an independent
invariant check, so a bug in one phase is caught *at that phase* rather
than as a downstream miscompare:

* **AST → MI partition** (:func:`check_partition`, V210) — the MI list
  must be flat (pure assignments), preserve the loop body's set of
  array stores and scalar definitions, and keep every renamed
  multi-definition web's *final* definition on the original name.
* **Post-SLMS kernel** (:func:`check_kernel`, V211) — every scalar the
  transformation *introduced* (predicates, renamed webs, decomposition
  temporaries, MVE rotation names) must be defined before its first use
  along the emitted prologue → kernel → epilogue order.  Scalars that
  existed in the input may be defined outside the fragment and are not
  judged.
* **LIR** (:func:`check_module`, V212–V216) — opcodes and branch
  targets must be known, register operands must stay inside the virtual
  (``v``), physical (``r``) or scratch (``s``) files for the active
  machine, memory operations must name declared arrays, operand counts
  must match opcode shapes, and constant addresses must land inside the
  array extent.

:func:`check_result` bundles the source-level checks; it runs inside
``SLMSOptions(verify=True)`` right after the V2xx schedule validator.
All checks are read-only and raise nothing: findings come back as
:class:`~repro.verify.diagnostics.Diagnostic` records.
"""

from __future__ import annotations

import re
from math import prod
from typing import Iterable, List, Optional, Set

from repro.backend.lir import (
    ALL_OPS,
    COMPARES,
    FLOAT_ARITH,
    INT_ARITH,
    Instr,
    Module,
)
from repro.lang.ast_nodes import (
    Assign,
    ArrayRef,
    Decl,
    ExprStmt,
    For,
    If,
    ParGroup,
    Stmt,
    Var,
    While,
)
from repro.lang.visitors import defined_scalars, used_scalars, walk
from repro.machines.model import MachineModel
from repro.obs import get_metrics, get_tracer
from repro.verify.diagnostics import Diagnostic, DiagnosticBag

# The backend emits several opcodes that predate the ALL_OPS registry:
# ``fma`` (multiply-add fusion), ``trunc`` (float-to-int assignment),
# ``brt`` (loop rotation) and the type-polymorphic ``vabs``/``vmin``/
# ``vmax`` intrinsics.
_KNOWN_OPS: Set[str] = set(ALL_OPS) | {
    "fma", "brt", "trunc", "vabs", "vmin", "vmax",
}

_REGISTER = re.compile(r"^(v|r|s)(\d+)$")

# Opcode -> (needs_dst, allowed source arities).
_SHAPES = {
    "movi": (True, (0,)),
    "mov": (True, (1,)),
    "neg": (True, (1,)),
    "fneg": (True, (1,)),
    "not": (True, (1,)),
    "select": (True, (3,)),
    "fma": (True, (3,)),
    "trunc": (True, (1,)),
    "vabs": (True, (1,)),
    "vmin": (True, (2,)),
    "vmax": (True, (2,)),
    "ld": (True, (0, 1)),
    "st": (False, (1, 2)),
    "br": (False, (0,)),
    "brf": (False, (1,)),
    "brt": (False, (1,)),
    "sqrt": (True, (1,)),
    "fabs": (True, (1,)),
    "iabs": (True, (1,)),
    "exp": (True, (1,)),
    "log": (True, (1,)),
    "sin": (True, (1,)),
    "cos": (True, (1,)),
    "floorr": (True, (1,)),
    "ceilr": (True, (1,)),
    "fmin": (True, (2,)),
    "fmax": (True, (2,)),
    "imin": (True, (2,)),
    "imax": (True, (2,)),
    "powr": (True, (2,)),
}
for _op in INT_ARITH + FLOAT_ARITH + COMPARES + ("and", "or"):
    _SHAPES[_op] = (True, (2,))


# ---------------------------------------------------------------------------
# AST -> MI partition (V210)
# ---------------------------------------------------------------------------


def _stored_arrays(stmts: Iterable[Stmt]) -> Set[str]:
    out: Set[str] = set()
    for stmt in stmts:
        for node in walk(stmt):
            if isinstance(node, Assign) and isinstance(
                node.target, ArrayRef
            ):
                out.add(node.target.name)
    return out


def _defined(stmts: Iterable[Stmt]) -> Set[str]:
    out: Set[str] = set()
    for stmt in stmts:
        out |= defined_scalars(stmt)
    return out


def check_partition(result, loop: For) -> List[Diagnostic]:
    """V210: the MI partition covers the loop body exactly once."""
    bag = DiagnosticBag()
    partition = result.partition
    if partition is None:
        return bag.diagnostics
    loc = loop.loc
    for pos, mi in enumerate(partition.mis):
        if isinstance(mi, If):
            # Post-if-conversion residue: a single predicated MI with no
            # else arm is the only control shape a partition may hold.
            if mi.els or len(mi.then) != 1 or not isinstance(
                mi.then[0], (Assign, ExprStmt)
            ):
                bag.error(
                    "V210", getattr(mi, "loc", loc),
                    f"MI {pos} is an unconverted if statement",
                )
        elif not isinstance(mi, (Assign, ExprStmt)):
            bag.error(
                "V210", getattr(mi, "loc", loc),
                f"MI {pos} is a {type(mi).__name__}, not a flat statement",
            )
    body_stores = _stored_arrays(loop.body)
    mi_stores = _stored_arrays(partition.mis)
    for name in sorted(body_stores - mi_stores):
        bag.error(
            "V210", loc,
            f"store to array {name!r} from the loop body is missing "
            "from the MI partition",
        )
    for name in sorted(mi_stores - body_stores):
        bag.error(
            "V210", loc,
            f"MI partition stores to array {name!r} which the loop "
            "body never stores",
        )
    hoisted = {d.name for d in partition.hoisted_decls}
    body_defs = _defined(loop.body) | hoisted
    mi_defs = _defined(partition.mis)
    for name in sorted(body_defs - mi_defs):
        bag.error(
            "V210", loc,
            f"scalar {name!r} is defined by the loop body but by no MI",
        )
    for original, web in partition.renamed.items():
        if original not in mi_defs:
            bag.error(
                "V210", loc,
                f"renamed web of {original!r} lost its final definition "
                "on the original name",
            )
        for fresh in web:
            if fresh != original and fresh not in mi_defs:
                bag.error(
                    "V210", loc,
                    f"renamed definition {fresh!r} (web of {original!r}) "
                    "is defined by no MI",
                )
    return bag.diagnostics


# ---------------------------------------------------------------------------
# post-SLMS kernel (V211)
# ---------------------------------------------------------------------------


def _introduced_scalars(result) -> Set[str]:
    """Names the transformation introduced and must define itself —
    excluding scalar-expansion *arrays* (they are subscripted, not read
    as scalars)."""
    array_names = {d.name for d in result.new_decls if d.dims}
    names = set(result.new_scalars) | set(result.renames)
    return names - array_names


class _DefScan:
    """Linear def-before-use scan over the emitted statement sequence.

    Tracks only the introduced names; a use with no textually earlier
    definition means the first concrete execution reads garbage (the
    prologue covers every earlier-iteration instance, so "textually
    earlier" is exactly "defined at runtime")."""

    def __init__(self, tracked: Set[str], bag: DiagnosticBag):
        self.tracked = tracked
        self.bag = bag
        self.reported: Set[str] = set()

    def scan(self, stmts: Iterable[Stmt], defined: Set[str]) -> Set[str]:
        for stmt in stmts:
            defined = self.scan_stmt(stmt, defined)
        return defined

    def scan_stmt(self, stmt: Stmt, defined: Set[str]) -> Set[str]:
        if isinstance(stmt, ParGroup):
            return self.scan(stmt.stmts, defined)
        if isinstance(stmt, Decl):
            if stmt.init is not None and not stmt.dims:
                return defined | {stmt.name}
            return defined
        if isinstance(stmt, If):
            self.uses(stmt.cond, defined, stmt)
            then_defs = self.scan(stmt.then, set(defined))
            else_defs = self.scan(stmt.els, set(defined))
            return then_defs & else_defs
        if isinstance(stmt, (For, While)):
            if isinstance(stmt, For):
                defined = self.scan_stmt(stmt.init, defined)
            self.uses(stmt.cond, defined, stmt)
            # One pass over the body IS the first concrete kernel
            # iteration; wrap-around uses must be prologue-defined.
            defined = self.scan(stmt.body, defined)
            if isinstance(stmt, For):
                defined = self.scan_stmt(stmt.step, defined)
            return defined
        if isinstance(stmt, Assign):
            self.uses(stmt.expanded_value(), defined, stmt)
            if isinstance(stmt.target, ArrayRef):
                for idx in stmt.target.indices:
                    self.uses(idx, defined, stmt)
                return defined
            if isinstance(stmt.target, Var):
                return defined | {stmt.target.name}
            return defined
        if isinstance(stmt, ExprStmt):
            self.uses(stmt.expr, defined, stmt)
        return defined

    def uses(self, expr, defined: Set[str], stmt: Stmt) -> None:
        if expr is None:
            return
        for node in walk(expr):
            if not isinstance(node, Var):
                continue
            name = node.name
            if (
                name in self.tracked
                and name not in defined
                and name not in self.reported
            ):
                self.reported.add(name)
                self.bag.error(
                    "V211", getattr(stmt, "loc", None),
                    f"introduced scalar {name!r} is read before any "
                    "definition in the emitted prologue/kernel/epilogue",
                )


def check_kernel(result, loop: For) -> List[Diagnostic]:
    """V211: def-before-use for introduced scalars across the emitted
    sequence (renames included)."""
    bag = DiagnosticBag()
    if not result.applied or result.lanes >= 2:
        # Lane-split results rewrite the loop header wholesale; the
        # schedule validator already skips them (N208) for the same
        # reason.
        return bag.diagnostics
    tracked = _introduced_scalars(result)
    if not tracked:
        return bag.diagnostics
    scan = _DefScan(tracked, bag)
    defined: Set[str] = {
        d.name for d in result.new_decls if d.init is not None and not d.dims
    }
    scan.scan(result.stmts, defined)
    return bag.diagnostics


def check_result(result, loop: For) -> List[Diagnostic]:
    """All source-level IR invariants for one applied SLMS result."""
    if not result.applied:
        return []
    diags = check_partition(result, loop) + check_kernel(result, loop)
    tracer = get_tracer()
    if tracer.enabled:
        tracer.event(
            "ir_check.result",
            findings=len(diags),
            codes=sorted({d.code for d in diags}),
        )
    if diags:
        get_metrics().counter("ir_check.findings").inc(len(diags))
    return diags


# ---------------------------------------------------------------------------
# LIR (V212 - V216)
# ---------------------------------------------------------------------------


def _check_register(
    reg: str, module: Module, machine: Optional[MachineModel],
    bag: DiagnosticBag, where: str,
) -> None:
    match = _REGISTER.match(reg)
    if match is None:
        bag.error("V213", None, f"{where}: malformed register {reg!r}")
        return
    space, index = match.group(1), int(match.group(2))
    if space == "v":
        if not 1 <= index <= max(module.n_vregs, 1):
            bag.error(
                "V213", None,
                f"{where}: virtual register {reg} outside "
                f"v1..v{module.n_vregs}",
            )
    elif machine is not None:
        limit = (
            machine.num_registers if space == "r" else 3  # scratch pool
        )
        if index >= limit:
            bag.error(
                "V213", None,
                f"{where}: register {reg} outside the "
                f"{machine.name} file of {limit} ({space}-space)",
            )


def _check_instr(
    instr: Instr, module: Module, machine: Optional[MachineModel],
    bag: DiagnosticBag, where: str,
) -> None:
    if instr.op not in _KNOWN_OPS:
        bag.error("V212", None, f"{where}: unknown opcode {instr.op!r}")
        return
    shape = _SHAPES.get(instr.op)
    if shape is not None and instr.op != "call":
        needs_dst, arities = shape
        if needs_dst and instr.dst is None:
            bag.error(
                "V215", None,
                f"{where}: {instr.op} must produce a destination",
            )
        if not needs_dst and instr.dst is not None:
            bag.error(
                "V215", None,
                f"{where}: {instr.op} must not write a destination",
            )
        if len(instr.srcs) not in arities:
            bag.error(
                "V215", None,
                f"{where}: {instr.op} takes {arities} source(s), "
                f"got {len(instr.srcs)}",
            )
    if instr.op == "movi" and instr.imm is None:
        bag.error("V215", None, f"{where}: movi without an immediate")
    if instr.op in ("br", "brf", "brt"):
        if instr.label is None or instr.label not in module.blocks:
            bag.error(
                "V212", None,
                f"{where}: branch to unknown block {instr.label!r}",
            )
    if instr.op == "call" and not instr.name:
        bag.error("V215", None, f"{where}: call without a target name")
    for reg in list(instr.srcs) + ([instr.dst] if instr.dst else []):
        _check_register(reg, module, machine, bag, where)
    if instr.op in ("ld", "st"):
        _check_memory(instr, module, bag, where)


def _check_memory(
    instr: Instr, module: Module, bag: DiagnosticBag, where: str
) -> None:
    if instr.array is None:
        bag.error(
            "V215", None, f"{where}: {instr.op} without an array operand"
        )
        return
    if instr.array == "__spill":
        return  # spill slots are sized by the allocator, not declared
    meta = module.arrays.get(instr.array)
    if meta is None:
        bag.error(
            "V214", None,
            f"{where}: {instr.op} names undeclared array {instr.array!r}",
        )
        return
    dims, _elem = meta
    extent = prod(dims)
    # Constant-address accesses (no index register) are fully static.
    has_index = (instr.op == "ld" and len(instr.srcs) == 1) or (
        instr.op == "st" and len(instr.srcs) == 2
    )
    if not has_index and not 0 <= instr.disp < extent:
        bag.error(
            "V216", None,
            f"{where}: constant address {instr.array}+{instr.disp} "
            f"outside extent {extent}",
        )


def check_module(
    module: Module, machine: Optional[MachineModel] = None
) -> List[Diagnostic]:
    """V212-V216 over a compiled module.  ``machine`` enables the
    physical/scratch register-file checks (post-allocation modules)."""
    bag = DiagnosticBag()
    if module.entry not in module.blocks:
        bag.error(
            "V212", None, f"entry block {module.entry!r} does not exist"
        )
    for name in module.order:
        block = module.blocks.get(name)
        if block is None:
            bag.error("V212", None, f"ordered block {name!r} missing")
            continue
        for pos, instr in enumerate(block.instrs):
            _check_instr(
                instr, module, machine, bag, f"{name}[{pos}]"
            )
    tracer = get_tracer()
    if tracer.enabled:
        tracer.event(
            "ir_check.module",
            findings=len(bag.diagnostics),
            blocks=len(module.order),
        )
    if bag.diagnostics:
        get_metrics().counter("ir_check.findings").inc(len(bag.diagnostics))
    return bag.diagnostics
