"""Minimal stdlib client for the ``slms-serve/1`` protocol.

Used by the load harness (:mod:`repro.serve.loadgen`), the CI smoke
job, and the tests.  One :class:`ServeClient` is cheap and
thread-safe; concurrent callers just share the base URL (each request
opens its own connection).
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from typing import Any, Dict, Optional, Tuple


class ServeError(RuntimeError):
    """A non-200 response, carrying the structured envelope."""

    def __init__(self, status: int, envelope: Dict[str, Any]):
        self.status = status
        self.envelope = envelope
        error = envelope.get("error") or {}
        super().__init__(
            f"HTTP {status}: [{error.get('kind', 'unknown')}] "
            f"{error.get('message', '')}"
        )

    @property
    def kind(self) -> str:
        return (self.envelope.get("error") or {}).get("kind", "unknown")


class ServeClient:
    """``post``/``call`` against one server; raises only on transport."""

    def __init__(self, base_url: str, timeout: Optional[float] = 300.0):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    def _fetch(self, request) -> Tuple[int, Dict[str, Any]]:
        try:
            with urllib.request.urlopen(
                request, timeout=self.timeout
            ) as response:
                return response.status, json.loads(response.read() or b"{}")
        except urllib.error.HTTPError as exc:
            # Non-2xx still carries the JSON envelope.
            try:
                payload = json.loads(exc.read() or b"{}")
            except ValueError:
                payload = {"ok": False,
                           "error": {"kind": "transport",
                                     "message": str(exc)}}
            return exc.code, payload

    def get(self, path: str) -> Tuple[int, Dict[str, Any]]:
        return self._fetch(
            urllib.request.Request(self.base_url + path, method="GET")
        )

    def post(
        self, op: str, params: Optional[Dict[str, Any]] = None
    ) -> Tuple[int, Dict[str, Any]]:
        """(status, envelope) for one ``POST /v1/<op>``; never raises
        for protocol-level failures (400/429/500/503)."""
        body = json.dumps(params or {}).encode("utf-8")
        request = urllib.request.Request(
            f"{self.base_url}/v1/{op}",
            data=body,
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        return self._fetch(request)

    def call(self, op: str, params: Optional[Dict[str, Any]] = None) -> Any:
        """The ``result`` payload of a successful request, else raise
        :class:`ServeError` with the structured envelope."""
        status, envelope = self.post(op, params)
        if status != 200 or not envelope.get("ok"):
            raise ServeError(status, envelope)
        return envelope["result"]

    def healthz(self) -> Dict[str, Any]:
        return self.get("/healthz")[1]

    def statsz(self) -> Dict[str, Any]:
        return self.get("/statsz")[1]
