"""The serving layer: ``slms serve`` / ``slms serve-bench``.

Turns the one-shot CLI into an always-on compilation service
(docs/SERVING.md).  The package splits into:

:mod:`repro.serve.session`
    The :class:`Session` request→response API shared by the CLI and
    the server, so the two entry points cannot drift.

:mod:`repro.serve.server`
    A zero-dependency HTTP server (stdlib ``http.server``, JSON
    protocol ``slms-serve/1``) with request coalescing, bounded
    admission, per-request timeouts/retry via the fault layer,
    poison-request quarantine, and SIGTERM draining.

:mod:`repro.serve.client`
    A tiny stdlib client (``urllib``) used by the load harness, the
    CI smoke job, and the tests.

:mod:`repro.serve.loadgen`
    The concurrent-client load harness behind ``slms serve-bench``
    (produces ``BENCH_serve.json``).
"""

from repro.serve.session import (  # noqa: F401
    RequestError,
    Session,
    SessionConfig,
    sweep_digest,
)
from repro.serve.server import (  # noqa: F401
    SERVE_SCHEMA,
    ServeConfig,
    SlmsServer,
    serve_forever,
)
from repro.serve.client import ServeClient, ServeError  # noqa: F401

__all__ = [
    "RequestError",
    "Session",
    "SessionConfig",
    "sweep_digest",
    "SERVE_SCHEMA",
    "ServeConfig",
    "SlmsServer",
    "serve_forever",
    "ServeClient",
    "ServeError",
]
