"""The ``slms serve`` HTTP server (protocol ``slms-serve/1``).

Zero-dependency: stdlib ``http.server`` with one thread per
connection.  Every execution is routed through the same guarded
dispatcher the sweep engine uses
(:func:`repro.harness.faults.execute_guarded`), so requests inherit
the full fault taxonomy for free — per-request wall-clock timeouts
(a hung worker is torn down, not waited on), deterministic retry of
transient failures, crash containment in a worker process, and
structured :class:`~repro.harness.faults.FailedResult` classification.

On top of that the server adds the service-level behaviors
(docs/SERVING.md):

* **Coalescing** — concurrent identical requests (same op + params +
  session context, content-addressed via
  :func:`repro.harness.expcache.request_key`) execute once; followers
  wait on the leader and get the same payload with ``coalesced: true``.
* **Bounded admission** — at most ``queue_limit`` distinct requests
  in flight; beyond that new work is shed with a 429 so latency stays
  bounded instead of queueing unboundedly.
* **Quarantine** — a request key whose execution crashed repeatedly is
  refused with a 503 before it can take down another worker.
* **Draining** — SIGTERM stops accepting work, lets every in-flight
  request (leaders *and* coalesced followers) finish, then exits 0.

Fault injection: a :class:`~repro.harness.faults.FaultPlan` (e.g. from
``SLMS_FAULTS``) is interpreted against *admission sequence numbers* —
``crash:2`` crashes the worker of the third admitted execution,
``reject:1`` sheds the second at admission.  ``?`` wildcards are not
resolved here (the request stream has no fixed length); rules with
unresolved indices are ignored.
"""

from __future__ import annotations

import json
import os
import signal
import sys
import threading
import time
from dataclasses import dataclass, field, replace
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple

from repro.harness.faults import FaultPlan, FaultPolicy, RetryPolicy, execute_guarded
from repro.serve.session import RequestError, Session, SessionConfig

SERVE_SCHEMA = "slms-serve/1"
STATS_SCHEMA = "slms-serve-stats/1"

#: Plan ops that fire inside the request's worker; admission-side ops
#: (``reject``) and engine-side ops (``corrupt-cache``/``abort``) are
#: not forwarded to the per-request dispatcher.
_IN_TASK_OPS = ("crash", "hang", "transient", "fail", "oom")


@dataclass(frozen=True)
class ServeConfig:
    """Everything the server needs; see docs/SERVING.md."""

    host: str = "127.0.0.1"
    port: int = 8787
    #: Max distinct requests in flight before 429 shedding.
    queue_limit: int = 16
    #: Per-request wall-clock limit (None = unlimited).
    timeout_s: Optional[float] = 120.0
    retry: RetryPolicy = RetryPolicy()
    #: Crashes of one request key before it is quarantined.
    crash_strikes: int = 2
    #: Execute in a disposable worker process (required for real
    #: timeout/crash containment).  ``False`` degrades to in-process
    #: execution: faster, but a hang blocks and a crash is simulated.
    isolation: bool = True
    fault_plan: Optional[FaultPlan] = None
    session: SessionConfig = field(default_factory=SessionConfig)
    #: Expose the deterministic ``sleep`` debug op (load/chaos tests).
    enable_sleep: bool = False
    #: Write the server-level trace (one span per request) on shutdown.
    trace_out: Optional[str] = None


class _Flight:
    """One in-flight execution: the leader runs, followers wait."""

    __slots__ = ("event", "status", "payload")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.status = 500
        self.payload: Dict[str, Any] = _err(
            "deterministic", "internal dispatch error"
        )


def _serve_worker(item: Tuple[str, Dict[str, Any], Dict[str, Any]]):
    """Top-level (picklable) request executor run under guard.

    Returns an ``{"ok": …}`` envelope instead of raising for
    caller-fault errors so they classify as 400s, not worker failures.
    """
    op, params, session_cfg = item
    # The serving layer owns fault injection for this request; the
    # engine working *inside* it must not re-read the ambient plan.
    os.environ.pop("SLMS_FAULTS", None)
    from dataclasses import replace as _replace

    from repro.lang.errors import FrontendError

    session = Session(
        _replace(SessionConfig.from_dict(session_cfg), ambient_faults=False)
    )
    try:
        result = session.handle(op, params)
    except RequestError as exc:
        return {"ok": False, "kind": "bad-request", "message": str(exc)}
    except FrontendError as exc:
        return {"ok": False, "kind": "bad-request", "message": exc.format()}
    return {"ok": True, "result": result}


class SlmsServer(ThreadingHTTPServer):
    """Threading HTTP server with coalescing/admission/quarantine state."""

    # Drain semantics: handler threads are real (non-daemon) and joined
    # by ``server_close`` so SIGTERM waits for in-flight requests.
    daemon_threads = False
    block_on_close = True
    allow_reuse_address = True

    def __init__(self, config: ServeConfig):
        super().__init__((config.host, config.port), _Handler)
        self.config = config
        self.session = Session(config.session)
        self.draining = False
        self.started_at = time.time()
        self._lock = threading.Lock()
        self._flights: Dict[str, _Flight] = {}
        self._seq = 0
        self._strikes: Dict[str, int] = {}
        self._quarantined: set = set()
        self._reject_at = (
            config.fault_plan.reject_indices()
            if config.fault_plan is not None
            else frozenset()
        )
        self.counters: Dict[str, int] = {
            "requests": 0,
            "ok": 0,
            "failed": 0,
            "bad_request": 0,
            "coalesced": 0,
            "shed": 0,
            "shed_injected": 0,
            "quarantine_refusals": 0,
            "drain_refusals": 0,
            "executions": 0,
            "retries": 0,
        }
        self.failed_kinds: Dict[str, int] = {}
        from repro.obs import Tracer

        self.tracer = Tracer()

    # -- lifecycle -----------------------------------------------------
    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"

    def begin_drain(self) -> None:
        """Stop admitting, finish in-flight work, let serve_forever exit.

        Safe to call from a signal handler: ``shutdown()`` must not run
        on the thread executing ``serve_forever``, so it is kicked to a
        helper thread.
        """
        with self._lock:
            if self.draining:
                return
            self.draining = True
        threading.Thread(target=self.shutdown, daemon=True).start()

    def finalize(self) -> None:
        """Post-drain bookkeeping: trace file + ledger record."""
        if self.config.trace_out:
            try:
                from repro.obs import write_json_trace

                write_json_trace(self.tracer.to_dict(), self.config.trace_out)
            except Exception:
                pass
        try:
            from repro.obs import RunLedger, ledger_enabled, make_entry

            if not ledger_enabled():
                return
            counters = dict(self.counters)
            RunLedger().append(
                make_entry(
                    "serve",
                    f"serve:{self.url}",
                    config={
                        "queue_limit": self.config.queue_limit,
                        "timeout_s": self.config.timeout_s,
                        "isolation": self.config.isolation,
                        "session": self.config.session.to_dict(),
                    },
                    experiments=counters["executions"],
                    wall_s=time.time() - self.started_at,
                    faults={
                        "failed": counters["failed"],
                        "shed": counters["shed"],
                        "retries": counters["retries"],
                        "quarantined": len(self._quarantined),
                    },
                    extra={"requests": counters},
                )
            )
        except Exception:
            pass

    # -- request processing -------------------------------------------
    def process(self, op: str, params: Dict[str, Any]) -> Tuple[int, Dict]:
        """Admit, coalesce, execute; returns (http_status, envelope)."""
        t0 = time.perf_counter()
        status, envelope = self._process(op, params)
        envelope.setdefault("schema", SERVE_SCHEMA)
        envelope.setdefault("op", op)
        envelope["elapsed_s"] = round(time.perf_counter() - t0, 6)
        self._account(status, envelope)
        self._record_span(op, status, envelope)
        return status, envelope

    def _process(self, op: str, params: Dict[str, Any]) -> Tuple[int, Dict]:
        from repro.harness.expcache import request_key

        if op == "sleep" and not self.config.enable_sleep:
            return 400, _err("bad-request",
                             "the sleep op requires --enable-sleep")
        try:
            self.session.validate(op, params)
        except RequestError as exc:
            return 400, _err("bad-request", str(exc))

        key = request_key(op, params, self.config.session)
        with self._lock:
            if self.draining:
                return 503, _err("draining", "server is draining",
                                 id=key[:16])
            if key in self._quarantined:
                self.counters["quarantine_refusals"] += 1
                return 503, _err(
                    "quarantined",
                    "request key is quarantined after repeated worker "
                    "crashes",
                    id=key[:16], quarantined=True,
                )
            flight = self._flights.get(key)
            if flight is None:
                if len(self._flights) >= self.config.queue_limit:
                    self.counters["shed"] += 1
                    return 429, _err(
                        "shed",
                        f"admission queue full "
                        f"({self.config.queue_limit} in flight)",
                        id=key[:16],
                    )
                seq = self._seq
                self._seq += 1
                if seq in self._reject_at:
                    self.counters["shed"] += 1
                    self.counters["shed_injected"] += 1
                    return 429, _err(
                        "shed", f"injected admission reject (seq {seq})",
                        id=key[:16], injected=True,
                    )
                flight = _Flight()
                self._flights[key] = flight
                leader = True
            else:
                leader = False

        if not leader:
            flight.event.wait()
            status, payload = flight.status, dict(flight.payload)
            payload["coalesced"] = True
            return status, payload

        try:
            status, payload = self._execute(op, params, key, seq)
            flight.status, flight.payload = status, payload
        finally:
            # Always release followers, even if the dispatcher itself
            # failed unexpectedly (they'd see the default 500).
            with self._lock:
                self._flights.pop(key, None)
            flight.event.set()
        return status, dict(payload)

    def _execute(self, op, params, key, seq) -> Tuple[int, Dict]:
        """Run one admitted request under the guarded dispatcher."""
        with self._lock:
            self.counters["executions"] += 1
        policy = FaultPolicy(
            timeout_s=self.config.timeout_s if self.config.isolation else None,
            retry=self.config.retry,
            crash_strikes=self.config.crash_strikes,
            fault_plan=self._plan_for(seq),
        )
        outcomes = execute_guarded(
            _serve_worker,
            [(op, params, self.config.session.to_dict())],
            policy=policy,
            labels=[f"{op}:{key[:16]}"],
            specs=[{"op": op, "id": key[:16]}],
        )
        out = outcomes[0]
        retries = max(0, out.attempts - 1)
        if retries:
            with self._lock:
                self.counters["retries"] += retries
        base = {"id": key[:16], "coalesced": False, "attempts": out.attempts}
        if out.ok:
            worker = out.value or {}
            if worker.get("ok"):
                return 200, {**base, "ok": True, "result": worker["result"]}
            return 400, {
                **base,
                "ok": False,
                "error": {
                    "kind": worker.get("kind", "bad-request"),
                    "message": worker.get("message", ""),
                    "retryable": False,
                },
            }
        failure = out.failure
        if failure.kind == "crash" and failure.quarantined:
            with self._lock:
                self._strikes[key] = (
                    self._strikes.get(key, 0) + failure.attempts
                )
                if self._strikes[key] >= self.config.crash_strikes:
                    self._quarantined.add(key)
        return 500, {
            **base,
            "ok": False,
            "error": {
                "kind": failure.kind,
                "phase": failure.phase,
                "message": failure.message,
                "retryable": failure.kind in self.config.retry.kinds,
                "quarantined": failure.quarantined,
            },
        }

    def _plan_for(self, seq: int) -> Optional[FaultPlan]:
        """In-task rules targeting admission ``seq``, rebased to task 0."""
        plan = self.config.fault_plan
        if plan is None:
            return None
        rules = tuple(
            replace(rule, index=0)
            for rule in plan.rules
            if rule.index == seq and rule.op in _IN_TASK_OPS
        )
        return FaultPlan(rules=rules, seed=plan.seed) if rules else None

    # -- bookkeeping ---------------------------------------------------
    def _account(self, status: int, envelope: Dict[str, Any]) -> None:
        with self._lock:
            self.counters["requests"] += 1
            if status == 200:
                self.counters["ok"] += 1
            elif status == 400:
                self.counters["bad_request"] += 1
            elif status == 503 and envelope.get("error", {}).get(
                "kind"
            ) == "draining":
                self.counters["drain_refusals"] += 1
            elif status == 500:
                self.counters["failed"] += 1
                kind = envelope.get("error", {}).get("kind", "unknown")
                self.failed_kinds[kind] = self.failed_kinds.get(kind, 0) + 1
            if envelope.get("coalesced"):
                self.counters["coalesced"] += 1

    def _record_span(self, op, status, envelope) -> None:
        """One ``serve.request`` span per request on the server tracer.

        Handler threads record into private tracers and merge under the
        lock (the tracer itself is not thread-safe).
        """
        from repro.obs import Tracer

        local = Tracer()
        with local.span(
            "serve.request",
            op=op,
            status=status,
            id=envelope.get("id", ""),
            ok=bool(envelope.get("ok")),
            coalesced=bool(envelope.get("coalesced")),
        ):
            pass
        with self._lock:
            self.tracer.absorb(local.to_dict())

    def stats(self) -> Dict[str, Any]:
        from repro.harness.expcache import (
            ENGINE_VERSION,
            ExperimentCache,
            PhaseCache,
        )

        with self._lock:
            counters = dict(self.counters)
            failed_kinds = dict(self.failed_kinds)
            inflight = len(self._flights)
            quarantined = sorted(k[:16] for k in self._quarantined)
            draining = self.draining
        payload: Dict[str, Any] = {
            "schema": STATS_SCHEMA,
            "uptime_s": round(time.time() - self.started_at, 3),
            "draining": draining,
            "requests": counters,
            "failed_kinds": failed_kinds,
            "queue": {"inflight": inflight,
                      "limit": self.config.queue_limit},
            "quarantine": quarantined,
            "engine_version": ENGINE_VERSION,
            "session": self.config.session.to_dict(),
        }
        try:
            cache = ExperimentCache(self.config.session.cache_dir)
            payload["cache"] = {
                "full": cache.stats(),
                "tiers": PhaseCache(self.config.session.cache_dir).stats()[
                    "tiers"
                ],
            }
        except Exception:
            payload["cache"] = None
        return payload


def _err(kind: str, message: str, **extra: Any) -> Dict[str, Any]:
    out = {"ok": False, "coalesced": False,
           "error": {"kind": kind, "message": message}}
    out.update(extra)
    return out


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server: SlmsServer

    # Quiet by default: the access log goes to stderr only when asked.
    def log_message(self, fmt, *args):  # pragma: no cover - noise
        if os.environ.get("SLMS_SERVE_LOG"):
            sys.stderr.write(
                "%s - - [%s] %s\n"
                % (self.address_string(), self.log_date_time_string(),
                   fmt % args)
            )

    def _reply(self, status: int, payload: Dict[str, Any]) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        # One request per connection: an idle keep-alive socket would
        # pin its (non-daemon) handler thread and stall draining.
        self.send_header("Connection", "close")
        self.end_headers()
        self.wfile.write(body)
        self.close_connection = True

    def do_GET(self) -> None:
        if self.path == "/healthz":
            self._reply(
                200,
                {
                    "ok": True,
                    "schema": SERVE_SCHEMA,
                    "draining": self.server.draining,
                },
            )
        elif self.path == "/statsz":
            self._reply(200, self.server.stats())
        else:
            self._reply(
                404,
                _err("not-found",
                     f"unknown path {self.path!r}; "
                     "GET /healthz, /statsz or POST /v1/<op>"),
            )

    def do_POST(self) -> None:
        if not self.path.startswith("/v1/"):
            self._reply(
                404, _err("not-found", f"unknown path {self.path!r}")
            )
            return
        op = self.path[len("/v1/"):]
        try:
            length = int(self.headers.get("Content-Length") or 0)
            raw = self.rfile.read(length) if length else b"{}"
            params = json.loads(raw.decode("utf-8") or "{}")
        except (ValueError, UnicodeDecodeError) as exc:
            self._reply(400, _err("bad-request", f"bad JSON body: {exc}"))
            return
        if not isinstance(params, dict):
            self._reply(
                400, _err("bad-request", "request body must be a JSON object")
            )
            return
        status, envelope = self.server.process(op, params)
        try:
            self._reply(status, envelope)
        except (BrokenPipeError, ConnectionResetError):  # pragma: no cover
            pass


def serve_forever(config: ServeConfig) -> int:
    """Run the server until SIGTERM/SIGINT; drains before returning 0.

    Prints ``# serving on <url> (slms-serve/1)`` once the socket is
    bound (with ``--port 0`` this is how callers learn the real port).
    """
    server = SlmsServer(config)

    def _drain(signum, frame):
        print(f"# draining ({signal.Signals(signum).name}) …",
              file=sys.stderr, flush=True)
        server.begin_drain()

    previous = {}
    for sig in (signal.SIGTERM, signal.SIGINT):
        try:
            previous[sig] = signal.signal(sig, _drain)
        except ValueError:  # pragma: no cover - non-main thread
            pass
    print(f"# serving on {server.url} ({SERVE_SCHEMA})", flush=True)
    try:
        server.serve_forever(poll_interval=0.1)
    finally:
        # Joins in-flight handler threads (block_on_close) — every
        # admitted request finishes before the process exits.
        server.server_close()
        server.finalize()
        for sig, handler in previous.items():
            try:
                signal.signal(sig, handler)
            except ValueError:  # pragma: no cover
                pass
    print("# drained; exiting", file=sys.stderr, flush=True)
    return 0
