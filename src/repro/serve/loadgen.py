"""Concurrent-client load harness: ``slms serve-bench``.

Spins up in-process servers (one per phase, on ephemeral ports) and
drives them with real HTTP clients on threads, measuring what the
serving layer promises (docs/SERVING.md):

* **latency** — ≥8 concurrent clients issuing *distinct* compile
  requests; reports p50/p99 latency and throughput.
* **coalesce** — N identical in-flight requests must execute exactly
  once (the others ride the leader's result).
* **shed** — a burst past ``queue_limit`` distinct requests must be
  refused with 429s, not queued unboundedly.
* **chaos** — under an injected worker crash + hang
  (``crash:2;hang:3@60``), only the targeted requests fail (with
  structured ``crash``/``timeout`` errors); every other in-flight
  request completes.
* **digest** (optional, ``--full``) — a whole corpus sweep executed
  through the service must reproduce the frozen
  ``BENCH_sweep.json`` result digest byte-for-byte.

The result is the machine-readable ``BENCH_serve.json``
(schema ``slms-serve-bench/1``).
"""

from __future__ import annotations

import json
import sys
import threading
import time
from contextlib import contextmanager
from typing import Any, Dict, List, Optional

from repro.harness.faults import FaultPlan
from repro.serve.client import ServeClient
from repro.serve.server import ServeConfig, SlmsServer
from repro.serve.session import SessionConfig

BENCH_SCHEMA = "slms-serve-bench/1"


@contextmanager
def _server(config: ServeConfig):
    """An in-process server on an ephemeral port, cleanly torn down."""
    server = SlmsServer(config)
    thread = threading.Thread(
        target=server.serve_forever, kwargs={"poll_interval": 0.05}
    )
    thread.start()
    try:
        yield server
    finally:
        server.shutdown()
        thread.join(timeout=30)
        server.server_close()


def _fanout(n: int, fn) -> List[Any]:
    """Run ``fn(i)`` on ``n`` threads at once; results in thread order."""
    results: List[Any] = [None] * n
    barrier = threading.Barrier(n)

    def run(i: int) -> None:
        barrier.wait()
        results[i] = fn(i)

    threads = [threading.Thread(target=run, args=(i,)) for i in range(n)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    return results


def _kernel_source(index: int) -> str:
    """A distinct (but always pipelinable) daxpy-style kernel."""
    n = 48 + index
    return (
        f"float A[{n}], B[{n}];\n"
        "float s = 0.0, t;\n"
        f"for (i = 0; i < {n}; i++) {{ A[i] = i; B[i] = 2.0; }}\n"
        f"for (i = 0; i < {n}; i++) "
        "{ t = A[i] * B[i]; s = s + t; }\n"
    )


def _phase_latency(
    clients: int, per_client: int, session: SessionConfig
) -> Dict[str, Any]:
    from repro.obs import latency_percentiles

    config = ServeConfig(port=0, queue_limit=clients * 2, session=session)
    with _server(config) as server:
        url = server.url

        def drive(i: int) -> List[float]:
            client = ServeClient(url)
            samples = []
            for j in range(per_client):
                source = _kernel_source(i * per_client + j)
                t0 = time.perf_counter()
                result = client.call("compile", {"source": source})
                samples.append(time.perf_counter() - t0)
                assert result["applied"] >= 1
            return samples

        t_start = time.perf_counter()
        per_thread = _fanout(clients, drive)
        wall = time.perf_counter() - t_start
        stats = server.stats()

    samples = [s for chunk in per_thread for s in chunk]
    return {
        "clients": clients,
        "requests": len(samples),
        "wall_s": round(wall, 3),
        "throughput_rps": round(len(samples) / wall, 3) if wall else 0.0,
        "latency": latency_percentiles(samples),
        "server": stats["requests"],
    }


def _phase_coalesce(clients: int, session: SessionConfig) -> Dict[str, Any]:
    config = ServeConfig(
        port=0, queue_limit=clients * 2, session=session, enable_sleep=True
    )
    with _server(config) as server:
        url = server.url
        # A generous window so every barrier-released client joins the
        # leader's flight even on a loaded machine.
        statuses = _fanout(
            clients,
            lambda i: ServeClient(url).post("sleep", {"seconds": 1.0}),
        )
        stats = server.stats()
    ok = sum(1 for status, _ in statuses if status == 200)
    coalesced = sum(
        1 for _, env in statuses if env.get("coalesced")
    )
    executions = stats["requests"]["executions"]
    return {
        "clients": clients,
        "ok": ok,
        "executions": executions,
        "coalesced": coalesced,
        "coalesce_rate": round(coalesced / clients, 3) if clients else 0.0,
    }


def _phase_shed(session: SessionConfig) -> Dict[str, Any]:
    limit, burst = 2, 6
    config = ServeConfig(
        port=0, queue_limit=limit, session=session, enable_sleep=True
    )
    with _server(config) as server:
        url = server.url
        statuses = _fanout(
            burst,
            # Distinct durations → distinct keys → no coalescing.
            lambda i: ServeClient(url).post(
                "sleep", {"seconds": 0.5 + i * 0.001}
            ),
        )
        stats = server.stats()
    shed = sum(1 for status, _ in statuses if status == 429)
    ok = sum(1 for status, _ in statuses if status == 200)
    return {
        "queue_limit": limit,
        "burst": burst,
        "ok": ok,
        "shed": shed,
        "server_shed": stats["requests"]["shed"],
    }


def _phase_chaos(session: SessionConfig) -> Dict[str, Any]:
    """crash:2 + hang:3@60 under a 4 s timeout: exactly the targeted
    admissions fail; unrelated in-flight requests all complete.  The
    timeout is generous relative to the 0.5 s workloads so a slow
    worker spawn on a loaded box cannot masquerade as a hang."""
    burst = 6
    plan = FaultPlan.parse("crash:2;hang:3@60")
    config = ServeConfig(
        port=0,
        queue_limit=burst * 2,
        timeout_s=4.0,
        crash_strikes=2,
        fault_plan=plan,
        session=session,
        enable_sleep=True,
    )
    with _server(config) as server:
        url = server.url
        statuses = _fanout(
            burst,
            lambda i: ServeClient(url).post(
                "sleep", {"seconds": 0.5 + i * 0.001}
            ),
        )
        stats = server.stats()
    kinds = sorted(
        (env.get("error") or {}).get("kind")
        for status, env in statuses
        if status != 200
    )
    return {
        "plan": plan.spec(),
        "burst": burst,
        "ok": sum(1 for status, _ in statuses if status == 200),
        "failed": sum(1 for status, _ in statuses if status != 200),
        "failed_kinds": kinds,
        "server_failed_kinds": stats["failed_kinds"],
        "survived": stats["requests"]["ok"],
    }


def _phase_digest(session: SessionConfig, workers: Optional[int]):
    """Full corpus sweep through the service; its result digest must be
    byte-identical to the CLI's (and the frozen baseline's)."""
    config = ServeConfig(port=0, timeout_s=None, session=session)
    with _server(config) as server:
        client = ServeClient(server.url, timeout=None)
        result = client.call(
            "sweep", {"workers": workers} if workers else {}
        )
    return {
        "experiments": result["experiments"],
        "failures": result["failures"],
        "result_digest_sha256": result["result_digest"],
    }


def run_serve_bench(
    out_path: Optional[str] = "BENCH_serve.json",
    clients: int = 8,
    per_client: int = 3,
    chaos: bool = True,
    full: bool = False,
    sweep_workers: Optional[int] = None,
    cache_dir: Optional[str] = None,
    quiet: bool = False,
) -> Dict[str, Any]:
    """Run every phase; returns (and optionally writes) the record."""

    def note(message: str) -> None:
        if not quiet:
            print(f"# {message}", file=sys.stderr, flush=True)

    session = SessionConfig(cache_dir=cache_dir)
    record: Dict[str, Any] = {
        "schema": BENCH_SCHEMA,
        "label": f"serve-bench:clients={clients}",
    }
    note(f"latency phase: {clients} clients × {per_client} requests …")
    record["latency_phase"] = _phase_latency(clients, per_client, session)
    note(
        "p50={p50:.3f}s p99={p99:.3f}s ({rps} req/s)".format(
            p50=record["latency_phase"]["latency"]["p50"],
            p99=record["latency_phase"]["latency"]["p99"],
            rps=record["latency_phase"]["throughput_rps"],
        )
    )
    note(f"coalesce phase: {clients} identical in-flight requests …")
    record["coalesce_phase"] = _phase_coalesce(clients, session)
    note(
        "executions={executions} coalesced={coalesced}".format(
            **record["coalesce_phase"]
        )
    )
    note("shed phase: burst past the admission queue …")
    record["shed_phase"] = _phase_shed(session)
    note("shed={shed}/{burst}".format(**record["shed_phase"]))
    if chaos:
        note("chaos phase: injected crash + hang …")
        record["chaos_phase"] = _phase_chaos(session)
        note(
            "ok={ok} failed={failed} kinds={failed_kinds}".format(
                **record["chaos_phase"]
            )
        )
    if full:
        note("digest phase: full corpus sweep through the service …")
        record["digest_phase"] = _phase_digest(session, sweep_workers)
        note(
            "digest={result_digest_sha256}".format(**record["digest_phase"])
        )

    # Top-level headline numbers (what the dashboards read).
    record["latency"] = record["latency_phase"]["latency"]
    record["throughput_rps"] = record["latency_phase"]["throughput_rps"]
    record["coalesce_rate"] = record["coalesce_phase"]["coalesce_rate"]
    record["shed_count"] = record["shed_phase"]["shed"]

    if out_path:
        with open(out_path, "w", encoding="utf-8") as handle:
            json.dump(record, handle, indent=1)
            handle.write("\n")
        note(f"record written to {out_path}")
    return record
