"""The request→response API shared by the CLI and the server.

A :class:`Session` turns every user-facing operation — transform a
source file, predict applicability, trace one experiment, run a sweep
— into a plain ``params``-dict → JSON-payload call.  ``slms
transform``/``advise``/``trace``/``sweep`` route their computation
through the same methods the server dispatches to, so the one-shot CLI
and the long-running service cannot drift: a request served over HTTP
and the equivalent CLI invocation execute identical code and produce
identical result payloads (the acceptance digest in docs/SERVING.md
pins this byte-for-byte).

Validation is two-phase.  :meth:`Session.validate` is cheap and
side-effect free — unknown ops, unknown parameter keys, unresolvable
machine/compiler names — so the server can reject malformed requests
at admission without burning a worker.  Anything that requires real
work (parsing the source, running experiments) surfaces later as a
:class:`RequestError` or a frontend diagnostic from the execution
itself.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional, Tuple


class RequestError(ValueError):
    """A malformed request: the caller's fault, never retried."""


#: SLMSOptions fields a request may set (mirrors ``slms transform``'s
#: flag surface; everything else keeps its library default).
OPTION_KEYS = (
    "enable_filter",
    "force",
    "expansion",
    "reduction_lanes",
    "allow_reassociation",
    "scheduler",
    "sched_budget",
    "machine",
)

#: op → (required params, optional params).
OP_PARAMS: Dict[str, Tuple[Tuple[str, ...], Tuple[str, ...]]] = {
    "compile": (("source",), OPTION_KEYS + ("style", "report")),
    "advise": (("source",), OPTION_KEYS),
    "trace": (("workload",), ("machine", "compiler", "verify")),
    "bench": (("workload",), ("machine", "compiler")),
    "sweep": ((), ("workloads", "suites", "pairs", "verify", "workers")),
    # Debug op (server-side, gated): deterministic busy-wait used by
    # the load harness and the chaos tests.
    "sleep": (("seconds",), ()),
}

OPS = tuple(sorted(OP_PARAMS))


@dataclass(frozen=True)
class SessionConfig:
    """Execution context shared by every request of one session.

    Part of the request coalescing key: two requests are "identical"
    only when both their params *and* their session context match.
    """

    machine: str = "itanium2"
    compiler: str = "gcc_O3"
    use_cache: bool = True
    cache_dir: Optional[str] = None
    #: Engine processes per sweep (None = one per CPU).  The server
    #: default stays 1: its parallelism unit is the request, not the
    #: experiment.
    workers: Optional[int] = 1
    verify: bool = True
    #: Whether engine work may read the ambient ``SLMS_FAULTS`` plan.
    #: The CLI keeps it (chaos runs inject through the environment);
    #: the server disables it — the serving layer owns fault injection
    #: per request, and a plan leaking into every engine task inside a
    #: request would double-inject.
    ambient_faults: bool = True

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @staticmethod
    def from_dict(data: Dict[str, Any]) -> "SessionConfig":
        known = {f for f in SessionConfig.__dataclass_fields__}
        return SessionConfig(
            **{k: v for k, v in (data or {}).items() if k in known}
        )


def sweep_digest(sweep) -> str:
    """Raw-bytes sha256 of ``SweepResult.to_json()``.

    The same digest ``slms sweep`` records in the ledger and
    ``BENCH_sweep.json`` pins — byte-comparable across the CLI, the
    server, and the frozen acceptance baseline.
    """
    return hashlib.sha256(sweep.to_json().encode("utf-8")).hexdigest()


def options_from_params(params: Dict[str, Any]):
    """Build :class:`SLMSOptions` from a request's option keys.

    Bad values (unknown scheduler, negative budget, …) surface as
    :class:`RequestError` so the server maps them to a 400, not a 500.
    """
    from repro.core.slms import SLMSOptions

    kwargs = {key: params[key] for key in OPTION_KEYS if key in params}
    try:
        return SLMSOptions(**kwargs)
    except (TypeError, ValueError) as exc:
        raise RequestError(str(exc)) from None


@dataclass
class Session:
    """Stateless request executor over the library pipeline.

    Every method takes a plain params dict and returns a plain JSON
    payload; the ``*_objects`` companions return the underlying library
    objects for callers (the CLI) that need rich rendering.
    """

    config: SessionConfig = field(default_factory=SessionConfig)

    # -- validation (cheap, side-effect free) --------------------------
    def validate(self, op: str, params: Dict[str, Any]) -> None:
        """Reject malformed requests without doing any real work."""
        if op not in OP_PARAMS:
            raise RequestError(
                f"unknown op {op!r}; valid ops: {', '.join(OPS)}"
            )
        if not isinstance(params, dict):
            raise RequestError("params must be a JSON object")
        required, optional = OP_PARAMS[op]
        allowed = set(required) | set(optional)
        unknown = sorted(set(params) - allowed)
        if unknown:
            raise RequestError(
                f"unknown parameter(s) for {op}: {', '.join(unknown)}; "
                f"valid: {', '.join(sorted(allowed))}"
            )
        missing = sorted(set(required) - set(params))
        if missing:
            raise RequestError(
                f"missing required parameter(s) for {op}: "
                + ", ".join(missing)
            )
        if "source" in params and not isinstance(params["source"], str):
            raise RequestError("'source' must be a string")
        if "workload" in params and not isinstance(params["workload"], str):
            raise RequestError("'workload' must be a string")
        self._validate_names(op, params)

    def _validate_names(self, op: str, params: Dict[str, Any]) -> None:
        from repro.backend.compiler import COMPILER_PRESETS
        from repro.machines.presets import ALL_MACHINES

        machine = params.get("machine", self.config.machine)
        if (
            op in ("trace", "bench")
            and machine is not None
            and machine not in ALL_MACHINES
        ):
            raise RequestError(
                f"unknown machine {machine!r}; choose from "
                + ", ".join(sorted(ALL_MACHINES))
            )
        compiler = params.get("compiler", self.config.compiler)
        if op in ("trace", "bench") and compiler not in COMPILER_PRESETS:
            raise RequestError(
                f"unknown compiler preset {compiler!r}; choose from "
                + ", ".join(sorted(COMPILER_PRESETS))
            )
        if op == "sweep":
            for pair in params.get("pairs") or []:
                if not (
                    isinstance(pair, (list, tuple)) and len(pair) == 2
                ):
                    raise RequestError(
                        f"bad pair {pair!r}; expected [machine, compiler]"
                    )
                if pair[0] not in ALL_MACHINES:
                    raise RequestError(f"unknown machine {pair[0]!r}")
                if pair[1] not in COMPILER_PRESETS:
                    raise RequestError(f"unknown compiler preset {pair[1]!r}")
        if op == "sleep":
            seconds = params.get("seconds")
            if not isinstance(seconds, (int, float)) or seconds < 0:
                raise RequestError("'seconds' must be a non-negative number")

    # -- dispatch ------------------------------------------------------
    def handle(self, op: str, params: Dict[str, Any]) -> Dict[str, Any]:
        """Validate + execute one request; the server's single entry."""
        self.validate(op, params)
        return getattr(self, op)(params)

    # -- compile (slms transform) --------------------------------------
    def compile_outcome(self, source: str, options=None):
        from repro import slms

        return slms(source, options)

    def compile(self, params: Dict[str, Any]) -> Dict[str, Any]:
        from repro import to_source

        style = params.get("style", "c")
        if style not in ("c", "paper"):
            raise RequestError(f"unknown style {style!r}; use 'c' or 'paper'")
        options = options_from_params(params)
        outcome = self.compile_outcome(params["source"], options)
        return {
            "source": to_source(outcome.program, style=style),
            "applied": outcome.applied_count,
            "loops": [loop_report_dict(r) for r in outcome.loops],
        }

    # -- advise --------------------------------------------------------
    def advise_objects(self, source: str, options=None):
        from repro.core.advisor import advise_program
        from repro.lang.parser import parse_program

        return advise_program(parse_program(source), options)

    def advise(self, params: Dict[str, Any]) -> Dict[str, Any]:
        options = options_from_params(params)
        advices = self.advise_objects(params["source"], options)
        return {
            "schema": "slms-advise/1",
            "loops": [a.to_dict() for a in advices],
        }

    # -- bench (one untraced experiment) -------------------------------
    def bench_result(
        self,
        workload: str,
        machine: Optional[str] = None,
        compiler: Optional[str] = None,
    ):
        from repro.harness.experiment import run_experiment
        from repro.workloads import get_workload

        try:
            wl = get_workload(workload)
        except ValueError as exc:
            raise RequestError(str(exc)) from None
        return run_experiment(
            wl,
            machine or self.config.machine,
            compiler or self.config.compiler,
            verify=self.config.verify,
        )

    def bench(self, params: Dict[str, Any]) -> Dict[str, Any]:
        res = self.bench_result(
            params["workload"],
            params.get("machine"),
            params.get("compiler"),
        )
        return result_dict(res)

    # -- trace (one traced experiment) ---------------------------------
    def trace_result(
        self,
        workload: str,
        machine: Optional[str] = None,
        compiler: Optional[str] = None,
        verify: Optional[bool] = None,
    ):
        """(result, trace dict, metrics dict) for one traced run.

        Bypasses the engine cache exactly like ``slms trace``: a trace
        of a cache lookup would show none of the pipeline decisions.
        """
        from repro.harness.experiment import run_experiment
        from repro.obs import MetricsRegistry, Tracer, metrics_scope, tracing
        from repro.workloads import get_workload

        try:
            wl = get_workload(workload)
        except ValueError as exc:
            raise RequestError(str(exc)) from None
        verify = self.config.verify if verify is None else bool(verify)
        with tracing(Tracer()) as tracer, \
                metrics_scope(MetricsRegistry()) as reg:
            res = run_experiment(
                wl,
                machine or self.config.machine,
                compiler or self.config.compiler,
                verify=verify,
            )
        return res, tracer.to_dict(), reg.to_dict()

    def trace(self, params: Dict[str, Any]) -> Dict[str, Any]:
        res, trace, metrics = self.trace_result(
            params["workload"],
            params.get("machine"),
            params.get("compiler"),
            params.get("verify"),
        )
        return trace_payload(res, trace, metrics)

    # -- sweep ---------------------------------------------------------
    def sweep_result(
        self,
        params: Dict[str, Any],
        task_timeout_s: Optional[float] = None,
        journal_path: Optional[str] = None,
        resume: bool = False,
    ):
        """One guarded sweep run.  The extra keyword arguments are the
        CLI-only knobs (checkpointing, per-task timeouts) that have no
        place in a coalesceable request payload."""
        from repro.harness.faults import FaultPlan
        from repro.harness.sweep import run_sweep
        from repro.workloads import by_suite

        workloads: List[str] = list(params.get("workloads") or [])
        try:
            for suite in params.get("suites") or []:
                workloads.extend(wl.name for wl in by_suite(suite))
        except ValueError as exc:
            raise RequestError(str(exc)) from None
        pairs = params.get("pairs")
        if pairs is not None:
            pairs = [tuple(pair) for pair in pairs]
        verify = params.get("verify")
        try:
            return run_sweep(
                workloads or None,
                pairs=pairs,
                verify=self.config.verify if verify is None else bool(verify),
                workers=(
                    params["workers"]
                    if params.get("workers") is not None
                    else self.config.workers
                ),
                use_cache=self.config.use_cache,
                cache_dir=self.config.cache_dir,
                task_timeout_s=task_timeout_s,
                journal_path=journal_path,
                resume=resume,
                # Serving context: the request's own fault handling
                # belongs to the server; an ambient SLMS_FAULTS plan
                # must not be re-applied to every engine task inside
                # the request's worker.
                fault_plan=None if self.config.ambient_faults else FaultPlan(),
            )
        except ValueError as exc:
            raise RequestError(str(exc)) from None

    def sweep(self, params: Dict[str, Any]) -> Dict[str, Any]:
        sweep = self.sweep_result(params)
        payload: Dict[str, Any] = {
            "experiments": len(sweep.results),
            "failures": len(sweep.failures),
            "result_digest": sweep_digest(sweep),
            "results": json.loads(sweep.to_json()),
        }
        if sweep.stats is not None:
            payload["stats"] = sweep.stats.to_dict()
        return payload

    # -- sleep (debug; the server gates exposure) ----------------------
    def sleep(self, params: Dict[str, Any]) -> Dict[str, Any]:
        import time

        seconds = float(params["seconds"])
        time.sleep(seconds)
        return {"slept_s": seconds}


def trace_payload(res, trace: Dict, metrics: Dict) -> Dict[str, Any]:
    """The ``slms trace --json`` object — shared by CLI and server."""
    from repro.obs import result_payload

    return {
        "workload": res.workload,
        "machine": res.machine,
        "compiler": res.compiler,
        "slms_applied": res.slms_applied,
        "slms_reason": res.slms_reason,
        "ii": res.ii,
        "speedup": round(res.speedup, 6),
        # Symmetric timing shape: both keys always present (a cache hit
        # would report phase_times={"cache": …} with the original work
        # under cached_phase_times).
        **result_payload(res),
        "trace": trace,
        "metrics": metrics,
    }


def loop_report_dict(report) -> Dict[str, Any]:
    """JSON form of one per-loop SLMS report (what ``--report`` prints)."""
    out: Dict[str, Any] = {
        "applied": report.applied,
        "reason": report.reason,
    }
    if report.applied:
        out.update(
            ii=report.ii,
            stages=report.stages,
            expansion=report.expansion,
            scheduler=report.scheduler,
        )
        if report.scheduler != "heuristic":
            out.update(
                heuristic_ii=report.heuristic_ii,
                sched_proven=report.sched_proven,
            )
        if report.res_mii is not None:
            out["res_mii"] = report.res_mii
    return out


def result_dict(res) -> Dict[str, Any]:
    """Compact JSON form of one experiment result (bench payload)."""
    return {
        "workload": res.workload,
        "suite": res.suite,
        "machine": res.machine,
        "compiler": res.compiler,
        "base_cycles": res.base_cycles,
        "slms_cycles": res.slms_cycles,
        "speedup": round(res.speedup, 6),
        "base_energy_pj": round(res.base_energy, 1),
        "slms_energy_pj": round(res.slms_energy, 1),
        "slms_applied": res.slms_applied,
        "slms_reason": res.slms_reason,
        "ii": res.ii,
    }
