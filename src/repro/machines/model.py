"""Machine model dataclasses.

A :class:`MachineModel` is everything the backend and the cycle
simulator need to know about a CPU: how many operations issue per cycle,
how many of each functional-unit class exist, operation latencies, the
architected register count (register allocation spills beyond it), an L1
data-cache configuration, and optionally a per-operation energy profile
(used for the ARM power experiments).

Operation classes used throughout the backend:

``alu``   integer/compare/move/address arithmetic
``fadd``  floating add/sub
``fmul``  floating multiply (also fma)
``div``   any divide/mod/sqrt
``mem``   load/store (shared port pool)
``branch`` control transfer
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

OP_CLASSES = ("alu", "fadd", "fmul", "div", "mem", "branch")


@dataclass(frozen=True)
class CacheConfig:
    """Direct-mapped L1 data cache."""

    size_bytes: int = 16 * 1024
    line_bytes: int = 64
    miss_penalty: int = 12
    word_bytes: int = 8

    @property
    def num_lines(self) -> int:
        return max(1, self.size_bytes // self.line_bytes)


@dataclass(frozen=True)
class PowerProfile:
    """Per-event energy in picojoules (Sim-Panalyzer-style accounting)."""

    energy_per_op: Mapping[str, float] = field(
        default_factory=lambda: {
            "alu": 120.0,
            "fadd": 400.0,
            "fmul": 600.0,
            "div": 900.0,
            "mem": 250.0,
            "branch": 90.0,
        }
    )
    energy_per_cycle: float = 60.0  # clock tree + leakage per cycle
    energy_cache_miss: float = 2800.0  # line fill from memory

    def op_energy(self, op_class: str) -> float:
        return self.energy_per_op.get(op_class, 100.0)


@dataclass(frozen=True)
class MachineModel:
    """A CPU for the final compiler and the cycle simulator.

    ``units`` caps how many operations of each class issue per cycle;
    ``issue_width`` caps the total.  ``latencies`` are producer→consumer
    delays in cycles (1 = result available next cycle).
    """

    name: str
    issue_width: int
    units: Mapping[str, int]
    latencies: Mapping[str, int]
    num_registers: int
    cache: CacheConfig = field(default_factory=CacheConfig)
    power: PowerProfile = field(default_factory=PowerProfile)
    # Compilers restrict machine-level MS to small loops (§7 point 1).
    ims_max_ops: int = 50

    def unit_count(self, op_class: str) -> int:
        return self.units.get(op_class, 1)

    def latency(self, op_class: str) -> int:
        return self.latencies.get(op_class, 1)

    def validate(self) -> None:
        for cls in self.units:
            if cls not in OP_CLASSES:
                raise ValueError(f"unknown op class {cls!r}")
        for cls in self.latencies:
            if cls not in OP_CLASSES:
                raise ValueError(f"unknown op class {cls!r}")
        if self.issue_width < 1 or self.num_registers < 4:
            raise ValueError("degenerate machine model")


def resource_usage(op_class: str) -> str:
    """Identity helper kept for symmetry; op classes map 1:1 to pools."""
    return op_class


def res_mii_for_counts(machine: MachineModel, counts: Mapping[str, int]) -> int:
    """Resource-constrained MII for a per-iteration op-class census.

    ``max over classes ⌈uses/units⌉``, plus the total-issue bound
    ``⌈Σ uses / issue_width⌉``.  Branches ride the loop back-edge slot
    and are excluded.  Shared by the machine-level ``backend/ims.py``
    (counting LIR instructions) and the source-level
    ``core/schedulers`` resMII (counting MI operations).
    """
    best = 1
    total = 0
    for cls, count in counts.items():
        if cls == "branch" or count <= 0:
            continue
        total += count
        best = max(best, -(-count // max(1, machine.unit_count(cls))))
    return max(best, -(-total // max(1, machine.issue_width)))
