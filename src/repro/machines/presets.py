"""The four evaluation CPUs, parameterized from their public
microarchitecture descriptions.

Absolute numbers are approximations — the reproduction targets the
*shape* of the paper's results, which these models drive: Itanium II is
wide with deep FP latency (SLMS exposes ILP to fill bundles), Pentium is
narrow with 8 registers (MVE-induced spilling hurts, Fig. 17 / kernel
10), POWER4 is a middle ground with strong FP (Fig. 20), and ARM7TDMI is
scalar so SLMS's parallelism only hides memory latency (Figs. 21–22).
"""

from __future__ import annotations

from typing import Dict

from repro.machines.model import CacheConfig, MachineModel, PowerProfile


def itanium2() -> MachineModel:
    """Itanium II: 2 bundles/cycle ≈ 6 issue, 2 FP (fma) units, 4 mem
    ports, 128 registers, 4-cycle FP latency."""
    return MachineModel(
        name="itanium2",
        issue_width=6,
        units={"alu": 6, "fadd": 2, "fmul": 2, "div": 1, "mem": 4, "branch": 3},
        latencies={"alu": 1, "fadd": 4, "fmul": 4, "div": 24, "mem": 2, "branch": 1},
        num_registers=96,
        cache=CacheConfig(size_bytes=16 * 1024, line_bytes=64, miss_penalty=7),
    )


def pentium() -> MachineModel:
    """Pentium-class superscalar: narrow issue, one memory port, and the
    x86 architected register famine (8)."""
    return MachineModel(
        name="pentium",
        issue_width=3,
        units={"alu": 2, "fadd": 1, "fmul": 1, "div": 1, "mem": 1, "branch": 1},
        latencies={"alu": 1, "fadd": 3, "fmul": 5, "div": 30, "mem": 1, "branch": 1},
        num_registers=8,
        cache=CacheConfig(size_bytes=8 * 1024, line_bytes=32, miss_penalty=10),
    )


def power4() -> MachineModel:
    """POWER4: 5-wide, two FMA pipes with 6-cycle latency, 32 registers."""
    return MachineModel(
        name="power4",
        issue_width=5,
        units={"alu": 2, "fadd": 2, "fmul": 2, "div": 1, "mem": 2, "branch": 1},
        latencies={"alu": 1, "fadd": 6, "fmul": 6, "div": 30, "mem": 2, "branch": 1},
        num_registers=32,
        cache=CacheConfig(size_bytes=32 * 1024, line_bytes=128, miss_penalty=12),
    )


def arm7tdmi() -> MachineModel:
    """ARM7TDMI: single-issue scalar, no FP hardware (soft-float modeled
    as long-latency ops), 3-stage pipeline, small cache, power profile
    tuned for the Sim-Panalyzer-style energy accounting."""
    return MachineModel(
        name="arm7tdmi",
        issue_width=1,
        units={"alu": 1, "fadd": 1, "fmul": 1, "div": 1, "mem": 1, "branch": 1},
        latencies={"alu": 1, "fadd": 8, "fmul": 10, "div": 40, "mem": 2, "branch": 2},
        num_registers=14,  # r0-r12 + lr usable for data
        cache=CacheConfig(size_bytes=4 * 1024, line_bytes=16, miss_penalty=20),
        power=PowerProfile(
            energy_per_op={
                "alu": 80.0,
                "fadd": 350.0,
                "fmul": 450.0,
                "div": 800.0,
                "mem": 180.0,
                "branch": 70.0,
            },
            energy_per_cycle=45.0,
            energy_cache_miss=2200.0,
        ),
    )


def machine_by_name(name: str) -> MachineModel:
    """Look up a preset by name."""
    try:
        return ALL_MACHINES[name]()
    except KeyError:
        raise ValueError(
            f"unknown machine {name!r}; choose from {sorted(ALL_MACHINES)}"
        ) from None


ALL_MACHINES: Dict[str, object] = {
    "itanium2": itanium2,
    "pentium": pentium,
    "power4": power4,
    "arm7tdmi": arm7tdmi,
}
