"""Parametric CPU models standing in for the paper's testbeds.

The evaluation ran on Itanium II (EPIC/VLIW bundles), Pentium
(superscalar), POWER4, and ARM7TDMI (scalar embedded).  What SLMS's
speedup *shape* depends on is captured here: issue width, functional
unit mix, operation latencies, architected register count, memory ports,
and an L1 model — plus per-operation energy for the ARM power figures.
"""

from repro.machines.model import CacheConfig, MachineModel, PowerProfile
from repro.machines.presets import (
    ALL_MACHINES,
    arm7tdmi,
    itanium2,
    machine_by_name,
    pentium,
    power4,
)

__all__ = [
    "ALL_MACHINES",
    "CacheConfig",
    "MachineModel",
    "PowerProfile",
    "arm7tdmi",
    "itanium2",
    "machine_by_name",
    "pentium",
    "power4",
]
