"""Direct-mapped L1 data cache model.

Arrays (and the spill area) are laid out contiguously in a flat byte
address space; each access maps its element address to a cache line.
The model tracks hits/misses only — latency and energy consequences are
applied by the executor from the machine model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Tuple

from repro.machines.model import CacheConfig

SPILL_REGION_WORDS = 4096


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


class DirectMappedCache:
    """Classic direct-mapped cache with per-line tags."""

    def __init__(self, config: CacheConfig):
        self.config = config
        self.tags: Dict[int, int] = {}
        self.stats = CacheStats()

    def reset(self) -> None:
        self.tags.clear()
        self.stats = CacheStats()

    def access(self, byte_address: int) -> bool:
        """Touch an address; returns True on hit."""
        line = byte_address // self.config.line_bytes
        index = line % self.config.num_lines
        if self.tags.get(index) == line:
            self.stats.hits += 1
            return True
        self.tags[index] = line
        self.stats.misses += 1
        return False


class AddressMap:
    """Assigns each array a contiguous, line-aligned base address."""

    def __init__(
        self,
        arrays: Mapping[str, Tuple[Tuple[int, ...], str]],
        word_bytes: int = 8,
        line_bytes: int = 64,
    ):
        self.word_bytes = word_bytes
        self.bases: Dict[str, int] = {}
        cursor = 0

        def align(value: int) -> int:
            return -(-value // line_bytes) * line_bytes

        for name in sorted(arrays):
            dims, _typ = arrays[name]
            size = 1
            for d in dims:
                size *= d
            self.bases[name] = cursor
            cursor = align(cursor + size * word_bytes)
        # Spill area lives past all arrays (the "stack").
        self.bases["__spill"] = cursor
        self.limit = cursor + SPILL_REGION_WORDS * word_bytes

    def address(self, array: str, flat_index: int) -> int:
        return self.bases[array] + flat_index * self.word_bytes
