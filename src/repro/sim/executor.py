"""Cycle-level execution of compiled programs.

Runs the functional LIR interpreter with an observer that charges time
and energy as blocks execute:

* each basic-block execution costs its list-scheduled length in cycles
  (``-O0`` code costs one cycle per instruction);
* a block that machine-level modulo scheduling pipelined costs its
  ``ims_ii`` per execution instead (the steady-state kernel rate);
* every memory access probes the direct-mapped L1; misses add the
  machine's penalty (this is where SLMS's extra array references — §4's
  bad cases — actually cost);
* energy accumulates per executed operation class, per cycle, and per
  miss, in the Sim-Panalyzer style used for the ARM figures.

Accounting is *static per block* whenever possible: a block's executed
instruction mix is invariant across executions (branches only transfer
control at the end of the straight-line portion), so its instruction
count, op-class mix and per-op energy are precomputed once and charged
per block execution instead of via 10⁴–10⁵ per-instruction Python
callbacks.  Memory/cache events stay dynamic — they depend on the
addresses actually touched.  Blocks whose executed mix *does* vary (a
conditional branch followed by more instructions) fall back to the
per-instruction observer, which is also available explicitly via
``execute(..., accounting="dynamic")`` as the reference implementation.

The functional result is returned alongside the metrics so every
benchmark doubles as a correctness check against the source
interpreter.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.backend.lir import Block, Instr, Module
from repro.machines.model import MachineModel
from repro.sim.cache import AddressMap, DirectMappedCache
from repro.sim.lir_interp import LIRInterpreter, Observer


@dataclass
class ExecutionMetrics:
    """What one simulated run cost."""

    cycles: int = 0
    instructions: int = 0
    mem_accesses: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    energy_pj: float = 0.0
    op_counts: Dict[str, int] = field(default_factory=dict)
    block_executions: Dict[str, int] = field(default_factory=dict)

    @property
    def cpi(self) -> float:
        return self.cycles / self.instructions if self.instructions else 0.0

    @property
    def miss_rate(self) -> float:
        return (
            self.cache_misses / self.mem_accesses if self.mem_accesses else 0.0
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "cycles": self.cycles,
            "instructions": self.instructions,
            "mem_accesses": self.mem_accesses,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "energy_pj": self.energy_pj,
            "op_counts": dict(self.op_counts),
            "block_executions": dict(self.block_executions),
        }

    @staticmethod
    def from_dict(data: Mapping[str, Any]) -> "ExecutionMetrics":
        return ExecutionMetrics(
            cycles=int(data["cycles"]),
            instructions=int(data["instructions"]),
            mem_accesses=int(data["mem_accesses"]),
            cache_hits=int(data["cache_hits"]),
            cache_misses=int(data["cache_misses"]),
            energy_pj=float(data["energy_pj"]),
            op_counts={k: int(v) for k, v in data["op_counts"].items()},
            block_executions={
                k: int(v) for k, v in data["block_executions"].items()
            },
        )


def _block_cost(block: Block) -> int:
    """Cycles one execution of ``block`` costs (before cache misses)."""
    if block.ims_ii is not None:
        return block.ims_ii
    if block.schedule is not None:
        return block.schedule_length
    return len(block.instrs)  # unscheduled: sequential issue


def _executed_prefix(block: Block) -> Optional[List[Instr]]:
    """The instructions every execution of ``block`` runs, or ``None``.

    Control only leaves a block through a branch; a *taken* branch stops
    execution at that point.  Therefore the executed mix is invariant
    when no conditional branch has instructions after it (both outcomes
    then execute the same prefix), and anything after an unconditional
    ``br`` is dead.  A conditional branch mid-block makes the mix
    path-dependent → ``None`` (caller must account dynamically).
    """
    executed: List[Instr] = []
    last = len(block.instrs) - 1
    for pos, instr in enumerate(block.instrs):
        executed.append(instr)
        if instr.op == "br":
            break
        if instr.op in ("brf", "brt") and pos != last:
            return None
    return executed


@dataclass
class _BlockProfile:
    """Static per-execution charge for one block."""

    cost: int
    instructions: int
    op_items: Tuple[Tuple[str, int], ...]
    energy: float  # op energy + cost × energy-per-cycle


def _profile_blocks(
    module: Module, machine: MachineModel
) -> Optional[Dict[str, _BlockProfile]]:
    """Per-block static profiles, or ``None`` if any block's executed
    instruction mix is path-dependent."""
    profiles: Dict[str, _BlockProfile] = {}
    for name, block in module.blocks.items():
        executed = _executed_prefix(block)
        if executed is None:
            return None
        cost = _block_cost(block)
        op_counts: Dict[str, int] = {}
        op_energy = 0.0
        for instr in executed:
            cls = instr.op_class()
            op_counts[cls] = op_counts.get(cls, 0) + 1
            op_energy += machine.power.op_energy(cls)
        profiles[name] = _BlockProfile(
            cost=cost,
            instructions=len(executed),
            op_items=tuple(op_counts.items()),
            energy=op_energy + cost * machine.power.energy_per_cycle,
        )
    return profiles


class _MemObserverMixin(Observer):
    """Shared dynamic cache/memory accounting."""

    machine: MachineModel
    metrics: ExecutionMetrics
    cache: DirectMappedCache
    addresses: AddressMap

    def _init_mem(self, module: Module, machine: MachineModel) -> None:
        self.machine = machine
        self.metrics = ExecutionMetrics()
        self.cache = DirectMappedCache(machine.cache)
        self.addresses = AddressMap(
            module.arrays,
            word_bytes=machine.cache.word_bytes,
            line_bytes=machine.cache.line_bytes,
        )

    def on_mem(self, array: str, flat_index: int, is_store: bool) -> None:
        self.metrics.mem_accesses += 1
        address = self.addresses.address(array, flat_index)
        if self.cache.access(address):
            self.metrics.cache_hits += 1
        else:
            self.metrics.cache_misses += 1
            penalty = self.machine.cache.miss_penalty
            self.metrics.cycles += penalty
            # Stall cycles burn clock/leakage power too.
            self.metrics.energy_pj += (
                self.machine.power.energy_cache_miss
                + penalty * self.machine.power.energy_per_cycle
            )


class _TimingObserver(_MemObserverMixin):
    """Static per-block accounting (the fast path).

    Requires every block's executed mix to be invariant — callers must
    check :func:`_profile_blocks` first.  Deliberately does *not*
    override ``on_instr``, so the interpreter skips per-instruction
    callbacks entirely.
    """

    def __init__(
        self,
        module: Module,
        machine: MachineModel,
        profiles: Optional[Dict[str, _BlockProfile]] = None,
    ):
        self._init_mem(module, machine)
        if profiles is None:
            profiles = _profile_blocks(module, machine)
        if profiles is None:
            raise ValueError("module needs dynamic accounting")
        self._profiles = profiles

    def on_block(self, block_name: str, module: Module) -> None:
        profile = self._profiles[block_name]
        metrics = self.metrics
        metrics.cycles += profile.cost
        metrics.instructions += profile.instructions
        metrics.energy_pj += profile.energy
        op_counts = metrics.op_counts
        for cls, count in profile.op_items:
            op_counts[cls] = op_counts.get(cls, 0) + count
        counts = metrics.block_executions
        counts[block_name] = counts.get(block_name, 0) + 1


class _DynamicTimingObserver(_MemObserverMixin):
    """Per-instruction accounting — the reference implementation, and
    the fallback for modules with path-dependent blocks."""

    def __init__(self, module: Module, machine: MachineModel):
        self._init_mem(module, machine)

    def on_block(self, block_name: str, module: Module) -> None:
        cost = _block_cost(module.blocks[block_name])
        self.metrics.cycles += cost
        self.metrics.energy_pj += cost * self.machine.power.energy_per_cycle
        counts = self.metrics.block_executions
        counts[block_name] = counts.get(block_name, 0) + 1

    def on_instr(self, instr: Instr) -> None:
        self.metrics.instructions += 1
        cls = instr.op_class()
        self.metrics.op_counts[cls] = self.metrics.op_counts.get(cls, 0) + 1
        self.metrics.energy_pj += self.machine.power.op_energy(cls)


@dataclass
class ExecutionResult:
    state: Dict[str, Any]
    metrics: ExecutionMetrics


def execute(
    module: Module,
    machine: MachineModel,
    env: Optional[Mapping[str, Any]] = None,
    functions: Optional[Mapping[str, Any]] = None,
    max_steps: int = 50_000_000,
    accounting: str = "auto",
    codegen: str = "auto",
) -> ExecutionResult:
    """Functionally execute ``module`` while accounting cycles/energy.

    ``accounting`` selects the observer: ``"auto"`` uses static
    per-block charging whenever the module allows it, ``"static"``
    requires it, ``"dynamic"`` forces the per-instruction reference
    path (primarily for cross-checking the fast path in tests).

    ``codegen`` selects the interpreter for the static path:
    ``"auto"`` exec-compiles each block into a fused Python function
    (:mod:`repro.sim.codegen_exec`) whenever static accounting is in
    effect, ``"exec"`` requires that, ``"closure"`` forces the
    per-instruction closure interpreter + observer (the reference the
    fused path is pinned against).  Dynamic accounting always uses the
    closure path — the per-instruction observer needs real callbacks.
    """
    if accounting not in ("auto", "static", "dynamic"):
        raise ValueError(f"unknown accounting mode {accounting!r}")
    if codegen not in ("auto", "exec", "closure"):
        raise ValueError(f"unknown codegen mode {codegen!r}")
    profiles = (
        _profile_blocks(module, machine) if accounting != "dynamic" else None
    )
    if accounting == "static" and profiles is None:
        raise ValueError("module has path-dependent blocks; use auto/dynamic")
    if codegen == "exec" and profiles is None:
        raise ValueError(
            "exec codegen requires static accounting (path-invariant blocks)"
        )
    use_exec = profiles is not None and codegen in ("auto", "exec")
    from repro.obs import get_metrics, get_tracer

    tracer = get_tracer()
    with tracer.span(
        "sim.execute",
        machine=machine.name,
        accounting="static" if profiles is not None else "dynamic",
    ) as span:
        if use_exec:
            from repro.sim.codegen_exec import ExecCompiledInterpreter

            exec_interp = ExecCompiledInterpreter(
                module,
                machine,
                profiles=profiles,
                env=env,
                functions=functions,
                max_steps=max_steps,
            )
            state = exec_interp.run()
            metrics = exec_interp.metrics()
        else:
            observer: _MemObserverMixin = (
                _TimingObserver(module, machine, profiles)
                if profiles is not None
                else _DynamicTimingObserver(module, machine)
            )
            interp = LIRInterpreter(
                module,
                env=env,
                functions=functions,
                observer=observer,
                max_steps=max_steps,
            )
            state = interp.run()
            metrics = observer.metrics
        if tracer.enabled:
            span.set(
                cycles=metrics.cycles,
                instructions=metrics.instructions,
                cache_misses=metrics.cache_misses,
            )
    # Feed the ambient registry: one batch of counter bumps per simulated
    # run — deliberately outside the interpreter loop, so the LIR fast
    # path carries zero observability cost.
    registry = get_metrics()
    registry.counter("sim.runs").inc()
    registry.counter("sim.cycles").inc(metrics.cycles)
    registry.counter("sim.instructions").inc(metrics.instructions)
    registry.counter("sim.mem_accesses").inc(metrics.mem_accesses)
    registry.counter("sim.cache_hits").inc(metrics.cache_hits)
    registry.counter("sim.cache_misses").inc(metrics.cache_misses)
    registry.counter("sim.stall_cycles").inc(
        metrics.cache_misses * machine.cache.miss_penalty
    )
    registry.counter("sim.energy_pj").inc(metrics.energy_pj)
    registry.histogram("sim.cycles_per_run").observe(metrics.cycles)
    return ExecutionResult(state=state, metrics=metrics)
