"""Cycle-level execution of compiled programs.

Runs the functional LIR interpreter with an observer that charges time
and energy as blocks execute:

* each basic-block execution costs its list-scheduled length in cycles
  (``-O0`` code costs one cycle per instruction);
* a block that machine-level modulo scheduling pipelined costs its
  ``ims_ii`` per execution instead (the steady-state kernel rate);
* every memory access probes the direct-mapped L1; misses add the
  machine's penalty (this is where SLMS's extra array references — §4's
  bad cases — actually cost);
* energy accumulates per executed operation class, per cycle, and per
  miss, in the Sim-Panalyzer style used for the ARM figures.

The functional result is returned alongside the metrics so every
benchmark doubles as a correctness check against the source
interpreter.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional

from repro.backend.lir import Instr, Module
from repro.machines.model import MachineModel
from repro.sim.cache import AddressMap, DirectMappedCache
from repro.sim.lir_interp import LIRInterpreter, Observer


@dataclass
class ExecutionMetrics:
    """What one simulated run cost."""

    cycles: int = 0
    instructions: int = 0
    mem_accesses: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    energy_pj: float = 0.0
    op_counts: Dict[str, int] = field(default_factory=dict)
    block_executions: Dict[str, int] = field(default_factory=dict)

    @property
    def cpi(self) -> float:
        return self.cycles / self.instructions if self.instructions else 0.0

    @property
    def miss_rate(self) -> float:
        return (
            self.cache_misses / self.mem_accesses if self.mem_accesses else 0.0
        )


class _TimingObserver(Observer):
    def __init__(self, module: Module, machine: MachineModel):
        self.machine = machine
        self.metrics = ExecutionMetrics()
        self.cache = DirectMappedCache(machine.cache)
        self.addresses = AddressMap(
            module.arrays,
            word_bytes=machine.cache.word_bytes,
            line_bytes=machine.cache.line_bytes,
        )

    def on_block(self, block_name: str, module: Module) -> None:
        block = module.blocks[block_name]
        if block.ims_ii is not None:
            cost = block.ims_ii
        elif block.schedule is not None:
            cost = block.schedule_length
        else:
            cost = len(block.instrs)  # unscheduled: sequential issue
        self.metrics.cycles += cost
        self.metrics.energy_pj += cost * self.machine.power.energy_per_cycle
        counts = self.metrics.block_executions
        counts[block_name] = counts.get(block_name, 0) + 1

    def on_instr(self, instr: Instr) -> None:
        self.metrics.instructions += 1
        cls = instr.op_class()
        self.metrics.op_counts[cls] = self.metrics.op_counts.get(cls, 0) + 1
        self.metrics.energy_pj += self.machine.power.op_energy(cls)

    def on_mem(self, array: str, flat_index: int, is_store: bool) -> None:
        self.metrics.mem_accesses += 1
        address = self.addresses.address(array, flat_index)
        if self.cache.access(address):
            self.metrics.cache_hits += 1
        else:
            self.metrics.cache_misses += 1
            penalty = self.machine.cache.miss_penalty
            self.metrics.cycles += penalty
            # Stall cycles burn clock/leakage power too.
            self.metrics.energy_pj += (
                self.machine.power.energy_cache_miss
                + penalty * self.machine.power.energy_per_cycle
            )


@dataclass
class ExecutionResult:
    state: Dict[str, Any]
    metrics: ExecutionMetrics


def execute(
    module: Module,
    machine: MachineModel,
    env: Optional[Mapping[str, Any]] = None,
    functions: Optional[Mapping[str, Any]] = None,
    max_steps: int = 50_000_000,
) -> ExecutionResult:
    """Functionally execute ``module`` while accounting cycles/energy."""
    observer = _TimingObserver(module, machine)
    interp = LIRInterpreter(
        module,
        env=env,
        functions=functions,
        observer=observer,
        max_steps=max_steps,
    )
    state = interp.run()
    return ExecutionResult(state=state, metrics=observer.metrics)
