"""Power analysis utilities (Sim-Panalyzer-style reporting, §9.3).

The cycle executor already accumulates total energy; this module adds
the *breakdown* views the paper's power study relies on:

* :func:`energy_breakdown` — joules per component (per-op dynamic
  energy by class, clock/leakage, cache-miss refills) for one run;
* :func:`power_report` — original-vs-SLMS comparison for a workload on
  the ARM model (or any machine), returning the per-component deltas
  that explain *why* a loop wins or loses energy;
* :class:`EnergyBreakdown` — the typed result.

The decomposition uses the same :class:`~repro.machines.model.PowerProfile`
coefficients the executor charges, so the components sum exactly to the
executor's ``energy_pj``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.machines.model import MachineModel
from repro.sim.executor import ExecutionMetrics


@dataclass
class EnergyBreakdown:
    """Energy per component, in picojoules."""

    per_class: Dict[str, float] = field(default_factory=dict)
    clock: float = 0.0
    cache_misses: float = 0.0

    @property
    def dynamic(self) -> float:
        return sum(self.per_class.values())

    @property
    def total(self) -> float:
        return self.dynamic + self.clock + self.cache_misses

    def as_dict(self) -> Dict[str, float]:
        out = {f"op_{cls}": e for cls, e in sorted(self.per_class.items())}
        out["clock"] = self.clock
        out["cache_misses"] = self.cache_misses
        out["total"] = self.total
        return out


def energy_breakdown(
    metrics: ExecutionMetrics, machine: MachineModel
) -> EnergyBreakdown:
    """Decompose a run's energy by component.

    The components reconstruct exactly what the executor charged:
    ``Σ op_counts[c]·E_op(c) + cycles·E_cycle + misses·E_miss``.
    """
    profile = machine.power
    breakdown = EnergyBreakdown()
    for cls, count in metrics.op_counts.items():
        breakdown.per_class[cls] = count * profile.op_energy(cls)
    breakdown.clock = metrics.cycles * profile.energy_per_cycle
    breakdown.cache_misses = metrics.cache_misses * profile.energy_cache_miss
    return breakdown


@dataclass
class PowerComparison:
    """Original vs SLMS energy for one workload."""

    workload: str
    machine: str
    base: EnergyBreakdown
    slms: EnergyBreakdown

    @property
    def improvement_pct(self) -> float:
        if self.base.total == 0:
            return 0.0
        return (1.0 - self.slms.total / self.base.total) * 100.0

    def dominant_delta(self) -> str:
        """Which component moved the most (the 'why' of the result)."""
        base = self.base.as_dict()
        slms = self.slms.as_dict()
        deltas = {
            key: slms.get(key, 0.0) - base.get(key, 0.0)
            for key in set(base) | set(slms)
            if key != "total"
        }
        return max(deltas, key=lambda k: abs(deltas[k]))


def power_report(
    workload,
    machine: MachineModel | str = "arm7tdmi",
    compiler: str = "arm_gcc",
    options=None,
) -> PowerComparison:
    """Run the §9.3 comparison for one workload and decompose both sides.

    ``workload`` is a :class:`~repro.workloads.base.Workload` or a
    workload name.
    """
    from repro.harness.experiment import run_experiment
    from repro.machines.presets import machine_by_name
    from repro.workloads import get_workload

    if isinstance(workload, str):
        workload = get_workload(workload)
    if isinstance(machine, str):
        machine = machine_by_name(machine)
    result = run_experiment(workload, machine, compiler, options)
    assert result.base_metrics is not None and result.slms_metrics is not None
    return PowerComparison(
        workload=workload.name,
        machine=machine.name,
        base=energy_breakdown(result.base_metrics, machine),
        slms=energy_breakdown(result.slms_metrics, machine),
    )
