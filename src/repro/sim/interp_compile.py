"""Compiled source-level oracle: the verify phase's fast path.

The tree-walking :class:`~repro.sim.interp.Interpreter` is the
project's semantics reference, but the harness runs it on every cold
verify, where its per-node dispatch dominates the phase.  This module
compiles a whole :class:`~repro.lang.ast_nodes.Program` into one Python
function — statements become statements, expressions become
expressions, bounds checks and step ticks are inlined — and
:func:`run_program_fast` executes that instead, falling back to
:func:`~repro.sim.interp.run_program` whenever the program (or the
calling convention) steps outside the compilable subset.

Equivalence contract — the generated code replays the reference
interpreter exactly:

* evaluation order is preserved: operands left to right, an array
  store's value before its indices, each index ``int()``-coerced as it
  is evaluated, bounds checked per axis in order *after* all indices;
  any operand that precedes a statement-emitting sibling is spilled to
  a temporary first, so the first runtime error is the same error;
* scalars live in an insertion-ordered dict exactly like
  ``Interpreter.scalars`` (the final state's key order matters to
  callers that digest it), with per-site coercion resolved statically
  from the governing ``Decl`` — sites with no governing declaration
  use the reference's dynamic ``isinstance`` coercion verbatim;
* the step budget ticks once per executed statement plus once per loop
  iteration, checked immediately, with the reference's message;
* ``InterpError`` messages are byte-identical, including per-axis
  bounds text, division guards, unknown-function and unbound-variable
  reads (the latter surface as ``KeyError`` from the scalar dict and
  are re-labelled by the driver; user-function ``KeyError``\\ s are
  tagged at the call site so they propagate untouched).

The compiler *bails* (returns ``None``) rather than approximate: any
construct whose static story is unclear — arrays used before or
without their declaration, scalars assigned before a later ``Decl``,
names that are both array and scalar, ``break`` outside a loop —
falls back to the tree-walker, which is always correct.  An
environment also forces the fallback: env-seeded arrays take their
bounds and dtypes from the *runtime* values, which this compiler
resolves statically from declarations.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.lang.ast_nodes import (
    ArrayRef,
    Assign,
    BinOp,
    Break,
    Call,
    Continue,
    Decl,
    Expr,
    ExprStmt,
    FloatLit,
    For,
    If,
    IntLit,
    ParGroup,
    Program,
    Stmt,
    Ternary,
    UnaryOp,
    Var,
    While,
)
from repro.sim.interp import _BUILTINS, InterpError, _c_div, _c_mod, run_program

_EXEC_GLOBALS = {
    "InterpError": InterpError,
    "_c_div": _c_div,
    "_c_mod": _c_mod,
}

_CMP = {"<": "<", "<=": "<=", ">": ">", ">=": ">=", "==": "==", "!=": "!="}
_ARITH = {"+": "+", "-": "-", "*": "*"}

# Compiled programs are usually executed once (the verify oracle builds
# each program fresh), so the cache is a small recency backstop for
# callers that re-run the same object (tests, notebooks).  Entries hold
# a strong reference to the keyed program: ``id()`` is only unique
# among *live* objects, so the key must keep its object alive.
_FN_CACHE: Dict[int, Tuple[Program, Any, Optional[tuple]]] = {}
_FN_CACHE_LIMIT = 64


class _Bail(Exception):
    """Program is outside the compilable subset."""


class _ProgramCodegen:
    def __init__(self, program: Program):
        self.program = program
        self.lines: List[str] = []
        self.indent = 1
        self.K: List[Any] = []
        self.temps = 0
        self.fns: Dict[str, str] = {}  # call target name -> preamble local
        self.arrays: Dict[str, Tuple[str, Tuple[int, ...], str]] = {}
        self.scalar_types: Dict[str, Optional[str]] = {}
        # Loop context for break/continue: ("for", step|None) / ("while",)
        self.loops: List[tuple] = []
        self._analyze()

    # -- static pre-pass ------------------------------------------------
    def _analyze(self) -> None:
        """Resolve declarations statically; bail when program order does
        not pin them down."""
        pos = 0
        array_decl_at: Dict[str, int] = {}
        scalar_decl_at: Dict[str, int] = {}
        first_use: Dict[str, int] = {}
        first_assign: Dict[str, int] = {}
        scalar_type: Dict[str, str] = {}

        def walk(node, depth: int) -> None:
            nonlocal pos
            pos += 1
            here = pos
            if isinstance(node, Decl):
                if depth > 0:
                    # A nested declaration may execute conditionally (or
                    # repeatedly), which the static decl map cannot model.
                    raise _Bail("declaration below program top level")
                if node.dims:
                    prev = self.arrays.get(node.name)
                    shape = tuple(node.dims)
                    if prev is not None and (prev[1], prev[2]) != (shape, node.type):
                        raise _Bail("conflicting array declarations")
                    if prev is None:
                        array_decl_at.setdefault(node.name, here)
                        self.arrays[node.name] = (
                            f"_A{len(self.arrays)}", shape, node.type,
                        )
                else:
                    if scalar_type.get(node.name, node.type) != node.type:
                        raise _Bail("scalar re-declared with another type")
                    scalar_type[node.name] = node.type
                    scalar_decl_at.setdefault(node.name, here)
            elif isinstance(node, ArrayRef):
                first_use.setdefault(node.name, here)
            elif isinstance(node, Assign) and isinstance(node.target, Var):
                first_assign.setdefault(node.target.name, here)
            for child in node.children():
                walk(child, depth + 1)

        for stmt in self.program.body:
            walk(stmt, 0)

        for name, use_at in first_use.items():
            decl_at = array_decl_at.get(name)
            if decl_at is None or decl_at > use_at:
                raise _Bail(f"array {name!r} used before/without declaration")
        for name in self.arrays:
            if name in scalar_type or name in first_assign:
                raise _Bail(f"{name!r} is both array and scalar")
        for name, decl_at in scalar_decl_at.items():
            if first_assign.get(name, decl_at) < decl_at:
                raise _Bail(f"scalar {name!r} assigned before declaration")
        # A Var read before its Decl reads the unbound (or dynamically
        # typed) name; only *assignments* need the static type, and the
        # checks above pin every assignment after its declaration.
        for name, typ in scalar_type.items():
            self.scalar_types[name] = typ

    # -- emission helpers -----------------------------------------------
    def emit(self, line: str) -> None:
        self.lines.append("    " * self.indent + line)

    def temp(self) -> str:
        self.temps += 1
        return f"_t{self.temps}"

    def k(self, value: Any) -> str:
        self.K.append(value)
        return f"_k{len(self.K) - 1}"

    def fn_local(self, name: str) -> str:
        local = self.fns.get(name)
        if local is None:
            local = f"_f{len(self.fns)}"
            self.fns[name] = local
        return local

    def tick(self) -> None:
        self.emit("_ST += 1")
        self.emit("if _ST > MS:")
        self.emit("    raise InterpError(_BMSG)")

    @staticmethod
    def _atomic(s: str) -> bool:
        """Expression strings that cannot raise or observe state."""
        return (
            s.startswith(("_t", "_k"))
            and s[2:].isdigit()
            or s.lstrip("-").isdigit()
        )

    def spill(self, s: str) -> str:
        if self._atomic(s):
            return s
        t = self.temp()
        self.emit(f"{t} = {s}")
        return t

    @staticmethod
    def needs_stmts(e: Expr) -> bool:
        if isinstance(e, (IntLit, FloatLit, Var)):
            return False
        if isinstance(e, (ArrayRef, Call, Ternary)):
            return True
        if isinstance(e, BinOp):
            if e.op in ("&&", "||", "/", "%"):
                return True
            return _ProgramCodegen.needs_stmts(e.left) or _ProgramCodegen.needs_stmts(e.right)
        if isinstance(e, UnaryOp):
            return _ProgramCodegen.needs_stmts(e.operand)
        raise _Bail(f"cannot compile {type(e).__name__}")

    # -- expressions ----------------------------------------------------
    def ex(self, e: Expr) -> str:
        """Emit evaluation code; returns the value as an expression
        string (possibly a temp)."""
        if isinstance(e, IntLit):
            return repr(e.value)
        if isinstance(e, FloatLit):
            return self.k(e.value)
        if isinstance(e, Var):
            return f"S[{e.name!r}]"
        if isinstance(e, ArrayRef):
            return self._load(e)
        if isinstance(e, BinOp):
            return self._binop(e)
        if isinstance(e, UnaryOp):
            if e.op == "!":
                v = self.ex(e.operand)
                return f"(0 if ({v}) != 0 else 1)"
            v = self.ex(e.operand)
            if e.op == "-":
                return f"(-({v}))"
            return f"({v})"
        if isinstance(e, Ternary):
            c = self.ex(e.cond)
            t = self.temp()
            self.emit(f"if ({c}) != 0:")
            self.indent += 1
            self.emit(f"{t} = {self.ex(e.then)}")
            self.indent -= 1
            self.emit("else:")
            self.indent += 1
            self.emit(f"{t} = {self.ex(e.els)}")
            self.indent -= 1
            return t
        if isinstance(e, Call):
            local = self.fn_local(e.name)
            self.emit(f"if {local} is None:")
            self.emit(
                f"    raise InterpError({f'call to unknown function {e.name!r}'!r})"
            )
            # Every argument is forced to a value *before* the guarded
            # call: an unbound-variable KeyError in an argument must
            # surface as the driver's InterpError, never as the
            # user-function KeyError the except-block tags.
            args = [self.spill(self.ex(a)) for a in e.args]
            t = self.temp()
            self.emit("try:")
            self.emit(f"    {t} = {local}({', '.join(args)})")
            self.emit("except KeyError as _ke:")
            self.emit("    _ke._slms_user = True")
            self.emit("    raise")
            return t
        raise _Bail(f"cannot compile {type(e).__name__}")

    def _binop(self, e: BinOp) -> str:
        op = e.op
        if op == "&&" or op == "||":
            lv = self.ex(e.left)
            t = self.temp()
            if op == "&&":
                self.emit(f"{t} = 0")
                self.emit(f"if ({lv}) != 0:")
            else:
                self.emit(f"{t} = 1")
                self.emit(f"if ({lv}) == 0:")
            self.indent += 1
            rv = self.ex(e.right)
            self.emit(f"{t} = 1 if ({rv}) != 0 else 0")
            self.indent -= 1
            return t
        if op in ("/", "%"):
            lv = self.ex(e.left)
            if self.needs_stmts(e.right) and not self._atomic(lv):
                lv = self.spill(lv)
            rv = self.ex(e.right)
            lv = self.spill(lv)
            rv = self.spill(rv)
            t = self.temp()
            self.emit(
                f"if isinstance({lv}, (bool, int, _npi)) "
                f"and isinstance({rv}, (bool, int, _npi)):"
            )
            if op == "/":
                self.emit(f"    {t} = _c_div(int({lv}), int({rv}))")
                self.emit("else:")
                self.emit(f"    if float({rv}) == 0.0:")
                self.emit("        raise InterpError('float division by zero')")
                self.emit(f"    {t} = {lv} / {rv}")
            else:
                self.emit(f"    {t} = _c_mod(int({lv}), int({rv}))")
                self.emit("else:")
                self.emit(
                    "    raise InterpError('% requires integer operands')"
                )
            return t
        lv = self.ex(e.left)
        if self.needs_stmts(e.right) and not self._atomic(lv):
            lv = self.spill(lv)
        rv = self.ex(e.right)
        if op in _CMP:
            return f"(1 if ({lv}) {op} ({rv}) else 0)"
        if op in _ARITH:
            return f"(({lv}) {op} ({rv}))"
        raise _Bail(f"unknown operator {op!r}")

    def _indices(self, ref: ArrayRef) -> List[str]:
        local, shape, _typ = self.arrays[ref.name]
        if len(ref.indices) != len(shape):
            raise _Bail("index arity mismatch")
        idx = []
        rest = ref.indices
        for i, e in enumerate(rest):
            later = any(self.needs_stmts(x) for x in rest[i + 1:])
            v = self.ex(e)
            t = self.temp()
            self.emit(f"{t} = int({v})")
            idx.append(t)
        for axis, (t, size) in enumerate(zip(idx, shape)):
            self.emit(f"if not 0 <= {t} < {size}:")
            self.emit(
                "    raise InterpError(f\"index {%s} out of bounds for "
                "axis %d of %r (size %d)\")" % (t, axis, ref.name, size)
            )
        return idx

    def _load(self, ref: ArrayRef) -> str:
        local, shape, typ = self.arrays[ref.name]
        idx = self._indices(ref)
        t = self.temp()
        self.emit(f"{t} = {local}.item({', '.join(idx)})")
        return t

    # -- statements -----------------------------------------------------
    def st(self, stmt: Stmt) -> None:
        self.tick()
        if isinstance(stmt, Decl):
            self._decl(stmt)
        elif isinstance(stmt, Assign):
            self._assign(stmt)
        elif isinstance(stmt, ExprStmt):
            v = self.ex(stmt.expr)
            self.emit(f"{v}")
        elif isinstance(stmt, If):
            c = self.ex(stmt.cond)
            self.emit(f"if ({c}) != 0:")
            self.indent += 1
            self.block(stmt.then)
            self.indent -= 1
            if stmt.els:
                self.emit("else:")
                self.indent += 1
                self.block(stmt.els)
                self.indent -= 1
        elif isinstance(stmt, While):
            self.loops.append(("while",))
            self.emit("while True:")
            self.indent += 1
            c = self.ex(stmt.cond)
            self.emit(f"if ({c}) == 0:")
            self.emit("    break")
            self.tick()
            self.block(stmt.body)
            self.indent -= 1
            self.loops.pop()
        elif isinstance(stmt, For):
            if stmt.init is not None:
                self.st(stmt.init)
            self.loops.append(("for", stmt.step))
            self.emit("while True:")
            self.indent += 1
            if stmt.cond is not None:
                c = self.ex(stmt.cond)
                self.emit(f"if ({c}) == 0:")
                self.emit("    break")
            self.tick()
            self.block(stmt.body)
            if stmt.step is not None:
                self.st(stmt.step)
            self.indent -= 1
            self.loops.pop()
        elif isinstance(stmt, ParGroup):
            self.block(stmt.stmts)
        elif isinstance(stmt, Break):
            if not self.loops:
                raise _Bail("break outside loop")
            self.emit("break")
        elif isinstance(stmt, Continue):
            if not self.loops:
                raise _Bail("continue outside loop")
            kind = self.loops[-1]
            if kind[0] == "for" and kind[1] is not None:
                # The reference runs the step before re-testing.
                self.st(kind[1])
            self.emit("continue")
        else:
            raise _Bail(f"cannot compile {type(stmt).__name__}")

    def block(self, stmts) -> None:
        if not stmts:
            self.emit("pass")
            return
        for stmt in stmts:
            self.st(stmt)

    def _decl(self, decl: Decl) -> None:
        if decl.dims:
            local, shape, typ = self.arrays[decl.name]
            dtype = "_np.int64" if typ == "int" else "_np.float64"
            self.emit(f"if {local} is None:")
            self.emit(
                f"    {local} = A[{decl.name!r}] = "
                f"_np.zeros({shape!r}, dtype={dtype})"
            )
            return
        if decl.init is not None:
            v = self.ex(decl.init)
            self._coerced_store(decl.name, v, decl.type)
        else:
            default = "0" if decl.type == "int" else "0.0"
            self.emit(f"if {decl.name!r} not in S:")
            self.emit(f"    S[{decl.name!r}] = {default}")

    def _coerced_store(self, name: str, value: str, typ: Optional[str]) -> None:
        if typ == "int":
            self.emit(f"S[{name!r}] = int({value})")
        elif typ == "float":
            self.emit(f"S[{name!r}] = float({value})")
        else:
            t = self.spill(value)
            self.emit(
                f"S[{name!r}] = int({t}) "
                f"if isinstance({t}, (bool, int, _npi)) else float({t})"
            )

    def _assign(self, stmt: Assign) -> None:
        value_expr = stmt.expanded_value()
        if isinstance(stmt.target, Var):
            v = self.ex(value_expr)
            self._coerced_store(
                stmt.target.name, v, self.scalar_types.get(stmt.target.name)
            )
            return
        ref = stmt.target
        if not isinstance(ref, ArrayRef) or ref.name not in self.arrays:
            raise _Bail("unsupported assignment target")
        # Reference order: value first, then indices, then bounds.
        v = self.spill(self.ex(value_expr))
        local, shape, _typ = self.arrays[ref.name]
        idx = self._indices(ref)
        self.emit(f"{local}[{', '.join(idx)}] = {v}")

    # -- assembly -------------------------------------------------------
    def generate(self) -> Tuple[str, tuple]:
        body_start = len(self.lines)
        for stmt in self.program.body:
            self.st(stmt)
        body = self.lines[body_start:]

        pre = ["def _run(S, A, F, MS, K, _np):"]
        pre.append("    _npi = _np.integer")
        pre.append('    _BMSG = f"step budget exceeded ({MS})"')
        for i in range(len(self.K)):
            pre.append(f"    _k{i} = K[{i}]")
        for name, local in self.fns.items():
            pre.append(f"    {local} = F.get({name!r})")
        for local, _shape, _typ in self.arrays.values():
            pre.append(f"    {local} = None")
        pre.append("    _ST = 0")
        return "\n".join(pre + body) + "\n", tuple(self.K)


def compile_program(program: Program):
    """Compile ``program`` to ``(fn, K)``, or ``None`` when it falls
    outside the compilable subset."""
    cached = _FN_CACHE.get(id(program))
    if cached is not None and cached[0] is program:
        return None if cached[1] is None else (cached[1], cached[2])
    try:
        gen = _ProgramCodegen(program)
        source, K = gen.generate()
        namespace = dict(_EXEC_GLOBALS)
        exec(compile(source, "<slms-oracle>", "exec"), namespace)
        result: Optional[Tuple[Any, tuple]] = (namespace["_run"], K)
    except _Bail:
        result = None
    if len(_FN_CACHE) >= _FN_CACHE_LIMIT:
        _FN_CACHE.clear()
    _FN_CACHE[id(program)] = (
        (program,) + result if result is not None else (program, None, None)
    )
    return result


def run_program_fast(
    program: Program,
    env: Optional[Mapping[str, Any]] = None,
    functions: Optional[Mapping[str, Callable[..., Any]]] = None,
    max_steps: int = 2_000_000,
) -> Dict[str, Any]:
    """Drop-in :func:`~repro.sim.interp.run_program` with the compiled
    fast path; identical states, errors and messages.

    Environments force the tree-walking fallback: env-seeded arrays
    take bounds/dtype from the runtime value, not the declaration.
    """
    compiled = None if env else compile_program(program)
    if compiled is None:
        return run_program(
            program, env=env, functions=functions, max_steps=max_steps
        )
    fn, K = compiled
    scalars: Dict[str, Any] = {}
    arrays: Dict[str, np.ndarray] = {}
    table: Dict[str, Callable[..., Any]] = dict(_BUILTINS)
    if functions:
        table.update(functions)
    try:
        fn(scalars, arrays, table, max_steps, K, np)
    except KeyError as exc:
        if getattr(exc, "_slms_user", False):
            raise
        name = exc.args[0] if exc.args else "?"
        raise InterpError(f"read of unbound variable {name!r}") from None
    out: Dict[str, Any] = dict(scalars)
    for name, array in arrays.items():
        out[name] = array.copy()
    return out
