"""Exec-compiled LIR blocks: the simulator's code-generation fast path.

The closure interpreter (:mod:`repro.sim.lir_interp`) pays a Python
call per instruction plus observer calls per memory access.  For the
blocks the static accounting path already requires (executed prefix
invariant — see :func:`repro.sim.executor._profile_blocks`), the whole
block can instead be generated as *one* Python function: instruction
semantics, the direct-mapped cache probe and the timing/energy
accounting are inlined into straight-line source that is ``compile``'d
once per distinct block shape and ``exec``'d once per block instance.

Innermost loops get a second level of fusion: a conditional block
whose fallthrough body ends in an unconditional branch straight back
to it (the classic ``for``-loop shape the backend emits) is compiled
into a *loop superblock* — one function containing a ``while`` that
runs the entire loop, keeping registers in Python locals across
iterations and charging step/count/energy accounting per iteration
exactly as the per-block dispatch loop would have.

Strict equivalence with the closure path is load-bearing — experiment
digests are pinned byte-identical — so the generated code mirrors the
reference semantics operation for operation:

* registers live in locals, preloaded with ``R.get(name, 0)`` only
  when their first use is a read, and written back before every return
  point; a mid-block exception loses uncommitted locals, which is
  unobservable because callers discard state and metrics on error;
* energy is a float whose accumulation order matters (addition is not
  associative): the generated code threads a single energy cell through
  the exact sequence the observers use — block energy at entry, then
  ``energy_cache_miss + penalty * energy_per_cycle`` per miss in access
  order;
* the cache probe inlines :class:`~repro.sim.cache.DirectMappedCache`
  (``line = addr // line_bytes; slot = line % num_lines``) against a
  shared tags list, and addresses inline the
  :class:`~repro.sim.cache.AddressMap` layout, spill region included;
* bounds checks raise :class:`~repro.sim.interp.InterpError` with the
  reference interpreter's exact messages, and run before the probe,
  which runs before the access;
* the step budget is charged per block entry (full static block
  length) and checked before the block body runs, inside the fused
  loop too;
* integer metrics (cycles, instructions, op mix, block executions) are
  derived after the run from per-block execution counts kept in
  first-execution order, so even dict insertion order matches the
  observer path.

Numeric constants — displacements, sizes, base addresses, cache
geometry, energies, immediates, step budgets — are embedded in the
source as literals (LOAD_CONST in the fused loops, no unpack
preamble); only values without an exact literal spelling ride the
per-instance constants tuple ``K``.  The source → code-object cache
still dedups identical blocks within a machine.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

from repro.backend.lir import Block, Module
from repro.machines.model import MachineModel
from repro.sim.cache import AddressMap
from repro.sim.executor import ExecutionMetrics, _BlockProfile, _profile_blocks
from repro.sim.interp import InterpError, _c_div, _c_mod
from repro.sim.lir_interp import LIRInterpreter

# Source text → compiled code object.  Keyed on the full generated
# source, so a hit is exact by construction; bounded as a backstop
# against pathological block diversity (fuzzing).
_CODE_CACHE: Dict[str, Any] = {}
_CODE_CACHE_LIMIT = 4096

# Exec-time globals for generated factories.  ``int``/``float`` etc.
# come from builtins; only the non-builtin helpers need to be provided.
_EXEC_GLOBALS = {
    "InterpError": InterpError,
    "_c_div": _c_div,
    "_c_mod": _c_mod,
    "math": math,
}

# Helper local name → expression binding it in the factory preamble.
_HELPERS = {
    "_int": "int",
    "_float": "float",
    "_min": "min",
    "_max": "max",
    "_abs": "abs",
    "_sqrt": "math.sqrt",
    "_exp": "math.exp",
    "_log": "math.log",
    "_sin": "math.sin",
    "_cos": "math.cos",
    "_floor": "math.floor",
    "_ceil": "math.ceil",
    "_cdiv": "_c_div",
    "_cmod": "_c_mod",
}

# Expression templates — byte-for-byte the arithmetic of
# ``lir_interp._BINOPS`` / ``_UNOPS`` with operands as locals.
_BIN_EXPR: Dict[str, Tuple[str, Tuple[str, ...]]] = {
    "add": ("_int({a}) + _int({b})", ("_int",)),
    "sub": ("_int({a}) - _int({b})", ("_int",)),
    "mul": ("_int({a}) * _int({b})", ("_int",)),
    "div": ("_cdiv(_int({a}), _int({b}))", ("_cdiv", "_int")),
    "mod": ("_cmod(_int({a}), _int({b}))", ("_cmod", "_int")),
    "fadd": ("_float({a}) + _float({b})", ("_float",)),
    "fsub": ("_float({a}) - _float({b})", ("_float",)),
    "fmul": ("_float({a}) * _float({b})", ("_float",)),
    "lt": ("1 if {a} < {b} else 0", ()),
    "le": ("1 if {a} <= {b} else 0", ()),
    "gt": ("1 if {a} > {b} else 0", ()),
    "ge": ("1 if {a} >= {b} else 0", ()),
    "eq": ("1 if {a} == {b} else 0", ()),
    "ne": ("1 if {a} != {b} else 0", ()),
    "and": ("1 if ({a} != 0 and {b} != 0) else 0", ()),
    "or": ("1 if ({a} != 0 or {b} != 0) else 0", ()),
    "vmin": ("_min({a}, {b})", ("_min",)),
    "vmax": ("_max({a}, {b})", ("_max",)),
    "powr": ("_float({a}) ** _float({b})", ("_float",)),
}

_UN_EXPR: Dict[str, Tuple[str, Tuple[str, ...]]] = {
    "neg": ("-_int({a})", ("_int",)),
    "fneg": ("-_float({a})", ("_float",)),
    "not": ("0 if {a} != 0 else 1", ()),
    "vabs": ("_abs({a})", ("_abs",)),
    "sqrt": ("_sqrt({a})", ("_sqrt",)),
    "exp": ("_exp({a})", ("_exp",)),
    "log": ("_log({a})", ("_log",)),
    "sin": ("_sin({a})", ("_sin",)),
    "cos": ("_cos({a})", ("_cos",)),
    "floorr": ("_floor({a})", ("_floor",)),
    "ceilr": ("_ceil({a})", ("_ceil",)),
}

_BUDGET_MSG = "LIR step budget exceeded"


def _first_branch(block: Block) -> Optional[int]:
    """Position of the first control-transfer instruction, or None."""
    for pos, instr in enumerate(block.instrs):
        if instr.op in ("br", "brf", "brt"):
            return pos
    return None


def _self_loops(module: Module) -> set:
    """Names of blocks that are fusable bottom-test self-loops.

    The backend emits innermost loops as a single rotated block ending
    in ``brt``/``brf`` back to itself: the whole iteration is one
    straight-line body with the continue test at the bottom.  Such a
    block can run its entire trip count inside one generated function.
    Outer loops of a nest never take this shape (their body spans
    several blocks), so fusion applies exactly where the iteration
    count concentrates.  Entries from other blocks are unaffected —
    they dispatch into the fused function, which handles every
    back-edge internally and returns on fallthrough.
    """
    loops = set()
    for name, block in module.blocks.items():
        if not block.instrs:
            continue
        last = len(block.instrs) - 1
        instr = block.instrs[last]
        if (
            instr.op in ("brf", "brt")
            and instr.label == name
            and _first_branch(block) == last
        ):
            loops.add(name)
    return loops


class _BlockCodegen:
    """Generates the fused source + constants tuple for one block (or a
    cond+body loop superblock)."""

    def __init__(
        self,
        block: Block,
        module: Module,
        machine: MachineModel,
        amap: AddressMap,
        profiles: Dict[str, _BlockProfile],
    ):
        self.block = block
        self.module = module
        self.machine = machine
        self.amap = amap
        self.profiles = profiles
        self.K: List[Any] = []
        self.body: List[str] = []
        self.helpers: List[str] = []  # first-use order
        self.regmap: Dict[str, str] = {}
        self.arrmap: Dict[str, str] = {}
        self.written: List[str] = []  # register names, first-write order
        # Registers whose first touch is a read need an ``R.get``
        # preload; ones defined before any read start life as plain
        # locals (their pre-block value is dead).
        self.preloaded: List[str] = []
        self.has_probe = False
        # Derived machine constants (folded exactly as the observers
        # compute them).
        cache = machine.cache
        self.word = cache.word_bytes
        self.line = cache.line_bytes
        self.nlines = cache.num_lines
        self.miss_energy = (
            machine.power.energy_cache_miss
            + cache.miss_penalty * machine.power.energy_per_cycle
        )

    # -- symbol helpers -------------------------------------------------
    def k(self, value: Any) -> str:
        """Spell a constant in the generated source.

        Plain ints and finite floats are inlined as literals: their
        ``repr`` round-trips exactly, LOAD_CONST beats the closure-cell
        load inside fused loops, and the ``kN = K[N]`` preamble was a
        measurable slice of what the sweep spends in ``compile``.
        (Lifting bought almost no code-object sharing in practice —
        register naming already forks the source per machine.)
        Negative values are parenthesized so they drop into any
        expression context.  Everything else — non-finite floats have
        no literal spelling, bools must stay distinct from ints —
        still rides the per-instance ``K`` tuple.
        """
        if type(value) is int or (
            type(value) is float and math.isfinite(value)
        ):
            text = repr(value)
            return f"({text})" if text.startswith("-") else text
        self.K.append(value)
        return f"k{len(self.K) - 1}"

    def helper(self, name: str) -> None:
        if name not in self.helpers:
            self.helpers.append(name)

    def reg(self, name: str) -> str:
        local = self.regmap.get(name)
        if local is None:
            local = f"r{len(self.regmap)}"
            self.regmap[name] = local
            self.preloaded.append(name)
        return local

    def wreg(self, name: str) -> str:
        local = self.regmap.get(name)
        if local is None:
            local = f"r{len(self.regmap)}"
            self.regmap[name] = local
        if name not in self.written:
            self.written.append(name)
        return local

    def arr(self, name: str) -> str:
        local = self.arrmap.get(name)
        if local is None:
            local = f"A{len(self.arrmap)}"
            self.arrmap[name] = local
        return local

    # -- accounting fragments -------------------------------------------
    def emit_probe(self, line_expr: str, slot_expr: str) -> None:
        """Inline DirectMappedCache.access + the miss charge."""
        self.has_probe = True
        kme = self.k(self.miss_energy)
        self.body += [
            f"if T[{slot_expr}] == {line_expr}:",
            "    h = h + 1",
            "else:",
            f"    T[{slot_expr}] = {line_expr}",
            "    m = m + 1",
            f"    e = e + {kme}",
        ]

    def emit_const_probe(self, flat: int, array: str) -> None:
        addr = self.amap.bases[array] + flat * self.word
        line = addr // self.line
        slot = line % self.nlines
        self.emit_probe(self.k(line), self.k(slot))

    def emit_var_probe(self, array: str) -> None:
        """Probe for a runtime flat index held in ``_i``.

        ``_i`` is bounds-checked non-negative and the base is
        non-negative, so when the geometry is a power of two the
        div/mod collapse to shift/mask (value-identical for
        non-negative ints).  Power-of-two geometry is emitted as
        literals — it forks the source per cache shape, but the
        code-object cache still dedups within a machine and the
        strength-reduced probe is what the innermost loops run.
        """
        kb = self.k(self.amap.bases[array])
        word, line, nlines = self.word, self.line, self.nlines
        if word & (word - 1) == 0 and line & (line - 1) == 0:
            wshift = word.bit_length() - 1
            lshift = line.bit_length() - 1
            self.body.append(f"_l = ({kb} + (_i << {wshift})) >> {lshift}")
        else:
            kw = self.k(word)
            kl = self.k(line)
            self.body.append(f"_l = ({kb} + _i * {kw}) // {kl}")
        if nlines & (nlines - 1) == 0:
            self.body.append(f"_s = _l & {nlines - 1}")
        else:
            kn = self.k(nlines)
            self.body.append(f"_s = _l % {kn}")
        self.emit_probe("_l", "_s")

    # -- memory instructions --------------------------------------------
    def emit_ld_st(self, instr) -> None:
        is_store = instr.op == "st"
        name = instr.array
        disp = instr.disp
        rv = None
        if is_store:
            rv = self.reg(instr.srcs[0])
            idx_reg = instr.srcs[1] if len(instr.srcs) > 1 else None
        else:
            idx_reg = instr.srcs[0] if instr.srcs else None

        if name == "__spill":
            # Spill accesses skip bounds checks but do probe the cache
            # (the spill region sits past the arrays in address space).
            self.emit_const_probe(disp, "__spill")
            kd = self.k(disp)
            if is_store:
                self.body.append(f"S[{kd}] = {rv}")
            else:
                self.body.append(f"{self.wreg(instr.dst)} = S.get({kd}, 0)")
            return

        dims, _typ = self.module.arrays[name]
        size = 1
        for d in dims:
            size *= d
        a = self.arr(name)
        word = "st" if is_store else "ld"

        if idx_reg is None:
            if not 0 <= disp < size:
                msg = f"{word} out of bounds: {name}[{disp}] (size {size})"
                self.body.append(f"raise InterpError({msg!r})")
                return
            self.emit_const_probe(disp, name)
            kf = self.k(disp)
            if is_store:
                self.body.append(f"{a}[{kf}] = {rv}")
            else:
                self.body.append(f"{self.wreg(instr.dst)} = {a}.item({kf})")
            return

        self.helper("_int")
        kd = self.k(disp)
        ks = self.k(size)
        self.body += [
            f"_i = {kd} + _int({self.reg(idx_reg)})",
            f"if not 0 <= _i < {ks}:",
            "    raise InterpError("
            f"f\"{word} out of bounds: {name}[{{_i}}] (size {{{ks}}})\")",
        ]
        self.emit_var_probe(name)
        if is_store:
            self.body.append(f"{a}[_i] = {rv}")
        else:
            self.body.append(f"{self.wreg(instr.dst)} = {a}.item(_i)")

    # -- straight-line emission ------------------------------------------
    def emit_body(self, block: Block) -> Tuple[List[str], Optional[tuple]]:
        """Emit ``block``'s executed prefix; returns (statements,
        terminator) where terminator is ``("br", label)`` or
        ``(op, label, cond_local)`` or ``None`` (fallthrough)."""
        self.body = []
        terminator: Optional[tuple] = None
        for instr in block.instrs:
            op = instr.op
            if op == "br":
                terminator = ("br", instr.label)
                break
            if op in ("brf", "brt"):
                # _executed_prefix guarantees these are block-final.
                terminator = (op, instr.label, self.reg(instr.srcs[0]))
                break
            self.emit_instr(instr)
        return self.body, terminator

    def emit_instr(self, instr) -> None:
        op = instr.op
        body = self.body
        if op == "movi":
            body.append(f"{self.wreg(instr.dst)} = {self.k(instr.imm)}")
            return
        if op == "mov":
            src = self.reg(instr.srcs[0])
            body.append(f"{self.wreg(instr.dst)} = {src}")
            return
        if op == "trunc":
            self.helper("_int")
            src = self.reg(instr.srcs[0])
            body.append(f"{self.wreg(instr.dst)} = _int({src})")
            return
        if op in ("ld", "st"):
            self.emit_ld_st(instr)
            return
        if op == "fma":
            self.helper("_float")
            a, b, c = (self.reg(s) for s in instr.srcs)
            body.append(
                f"{self.wreg(instr.dst)} = "
                f"_float({a}) * _float({b}) + _float({c})"
            )
            return
        if op == "select":
            cond, a, b = (self.reg(s) for s in instr.srcs)
            body.append(
                f"{self.wreg(instr.dst)} = {a} if {cond} != 0 else {b}"
            )
            return
        if op == "call":
            fname = instr.name or ""
            msg = f"call to unknown function {fname!r}"
            args = ", ".join(self.reg(s) for s in instr.srcs)
            body += [
                f"_f = F.get({fname!r})",
                "if _f is None:",
                f"    raise InterpError({msg!r})",
            ]
            if instr.dst is not None:
                body.append(f"{self.wreg(instr.dst)} = _f({args})")
            else:
                body.append(f"_f({args})")
            return
        if op == "fdiv":
            self.helper("_float")
            a, b = (self.reg(s) for s in instr.srcs)
            body += [
                f"_d = _float({b})",
                "if _d == 0.0:",
                "    raise InterpError('float division by zero')",
                f"{self.wreg(instr.dst)} = _float({a}) / _d",
            ]
            return
        template = _BIN_EXPR.get(op)
        if template is not None:
            expr, helpers = template
            for h in helpers:
                self.helper(h)
            a, b = (self.reg(s) for s in instr.srcs)
            body.append(
                f"{self.wreg(instr.dst)} = " + expr.format(a=a, b=b)
            )
            return
        template = _UN_EXPR.get(op)
        if template is not None:
            expr, helpers = template
            for h in helpers:
                self.helper(h)
            a = self.reg(instr.srcs[0])
            body.append(f"{self.wreg(instr.dst)} = " + expr.format(a=a))
            return
        # Unknown ops raise lazily iff executed, like the closure path.
        body.append(f"raise InterpError({f'unknown LIR op {op!r}'!r})")

    # -- assembly ---------------------------------------------------------
    def _assemble(self, inner: List[str]) -> str:
        pre = ["def _make(R, S, mem, F, T, HM, E, ST, CN, TO, K):"]
        for name in self.helpers:
            pre.append(f"    {name} = {_HELPERS[name]}")
        for name, local in self.arrmap.items():
            pre.append(f"    {local} = mem[{name!r}]")
        for i in range(len(self.K)):
            pre.append(f"    k{i} = K[{i}]")
        if self.preloaded:
            pre.append("    Rg = R.get")
        pre.append("    def _block():")
        lines = [
            f"        {self.regmap[name]} = Rg({name!r}, 0)"
            for name in self.preloaded
        ]
        lines += inner
        lines.append("    return _block")
        # Emission uses 4-space levels for readability; the compiled
        # form squeezes each level to a single space.  ``compile`` time
        # is proportional to source bytes and indentation is a double-
        # digit percentage of them; no generated line starts inside a
        # string literal, so leading whitespace is always layout.
        out = []
        for line in pre + lines:
            n = len(line) - len(line.lstrip(" "))
            out.append(" " * (n // 4) + line[n:])
        return "\n".join(out) + "\n"

    def _writebacks(self) -> List[str]:
        return [
            f"R[{name!r}] = {self.regmap[name]}" for name in self.written
        ]

    def generate(self) -> Tuple[str, Tuple[Any, ...]]:
        """Single-block fused function."""
        kpe = self.k(self.profiles[self.block.name].energy)
        stmts, terminator = self.emit_body(self.block)
        inner: List[str] = []
        if self.has_probe:
            inner += ["h = 0", "m = 0", f"e = E[0] + {kpe}"]
        else:
            inner.append(f"E[0] = E[0] + {kpe}")
        inner += stmts
        if self.has_probe:
            inner += ["E[0] = e", "HM[0] = HM[0] + h", "HM[1] = HM[1] + m"]
        inner += self._writebacks()
        if terminator is None:
            inner.append("return None")
        elif terminator[0] == "br":
            inner.append(f"return {terminator[1]!r}")
        else:
            cmp = "==" if terminator[0] == "brf" else "!="
            inner += [
                f"if {terminator[2]} {cmp} 0:",
                f"    return {terminator[1]!r}",
                "return None",
            ]
        return (
            self._assemble(["        " + s for s in inner]),
            tuple(self.K),
        )

    def generate_self_loop(
        self, block_idx: int, max_steps: int
    ) -> Tuple[str, Tuple[Any, ...]]:
        """Loop superblock for a bottom-test self-loop.

        The caller's dispatch loop charges the first entry (steps,
        budget, counts); every back-edge re-entry is charged here, in
        the same order the per-block loop would: charge+check, count,
        block energy, block body.  Registers stay in Python locals
        across iterations; the register file is only read on entry and
        written on exit.
        """
        block = self.block
        kpe = self.k(self.profiles[block.name].energy)
        stmts, term = self.emit_body(block)
        assert term is not None and term[0] in ("brf", "brt")
        assert term[1] == block.name
        # The branch back to self is taken on falsy (brf) / truthy
        # (brt); the loop exits via fallthrough when it is NOT taken.
        cmp = "!=" if term[0] == "brf" else "=="
        ks = self.k(len(block.instrs))
        ki = self.k(block_idx)
        kmax = self.k(max_steps)

        inner: List[str] = []
        if self.has_probe:
            inner += ["h = 0", "m = 0"]
        inner.append(f"e = E[0] + {kpe}")
        # Steps and the per-block count accumulate in locals across
        # iterations; the shared cells are only read on entry and
        # written on exit — and, for steps, at the budget raise, where
        # the failing iteration is charged but (as in the dispatch
        # loop) not counted.
        inner += ["_st = ST[0]", "_cn = 0"]
        inner.append("while True:")
        loop: List[str] = []
        loop += stmts
        loop += [f"if {term[2]} {cmp} 0:", "    break"]
        loop += [
            f"_st = _st + {ks}",
            f"if _st > {kmax}:",
            "    ST[0] = _st",
            f"    CN[{ki}] = CN[{ki}] + _cn",
            f"    raise InterpError({_BUDGET_MSG!r})",
            "_cn = _cn + 1",
            f"e = e + {kpe}",
        ]
        inner += ["    " + s for s in loop]
        inner += ["ST[0] = _st", f"CN[{ki}] = CN[{ki}] + _cn"]
        inner.append("E[0] = e")
        if self.has_probe:
            inner += ["HM[0] = HM[0] + h", "HM[1] = HM[1] + m"]
        inner += self._writebacks()
        inner.append("return None")
        return (
            self._assemble(["        " + s for s in inner]),
            tuple(self.K),
        )


class ExecCompiledInterpreter(LIRInterpreter):
    """LIR interpreter whose blocks are exec-compiled fused functions.

    Produces the final state via :meth:`run` and the accounting via
    :meth:`metrics`, both strictly equal to running the closure
    interpreter under ``executor._TimingObserver``.
    """

    def __init__(
        self,
        module: Module,
        machine: MachineModel,
        profiles: Optional[Dict[str, _BlockProfile]] = None,
        env: Optional[Mapping[str, Any]] = None,
        functions: Optional[Mapping[str, Callable[..., Any]]] = None,
        max_steps: int = 50_000_000,
    ):
        if profiles is None:
            profiles = _profile_blocks(module, machine)
        if profiles is None:
            raise ValueError(
                "module has path-dependent blocks; exec codegen requires "
                "static accounting"
            )
        self.machine = machine
        self._profiles = profiles
        self._amap = AddressMap(
            module.arrays,
            word_bytes=machine.cache.word_bytes,
            line_bytes=machine.cache.line_bytes,
        )
        # Tags as a dense list with a -1 sentinel: line numbers are
        # always >= 0, so this is observationally the empty tags dict.
        self._tags: List[int] = [-1] * machine.cache.num_lines
        self._hm: List[int] = [0, 0]  # hits, misses
        self._energy: List[float] = [0.0]
        self._steps_cell: List[int] = [0]
        self._exec_counts: List[int] = [0] * len(module.order)
        self._touched: List[int] = []
        self._self_loops = _self_loops(module)
        super().__init__(
            module, env=env, functions=functions, max_steps=max_steps
        )
        self._fused: List[Callable[[], Optional[str]]] = [
            ops[0] for ops in self._program
        ]

    # Called by the base __init__ for each block in module.order.
    def _compile_block(
        self, block: Block, wants_instr: bool, wants_mem: bool
    ) -> List[Callable[[], Optional[str]]]:
        gen = _BlockCodegen(
            block, self.module, self.machine, self._amap, self._profiles
        )
        if block.name in self._self_loops:
            # _block_index is not built yet when the base constructor
            # compiles blocks; order.index is fine at this frequency.
            source, K = gen.generate_self_loop(
                self.module.order.index(block.name), self.max_steps
            )
        else:
            source, K = gen.generate()
        code = _CODE_CACHE.get(source)
        if code is None:
            if len(_CODE_CACHE) >= _CODE_CACHE_LIMIT:
                _CODE_CACHE.clear()
            code = compile(source, "<slms-codegen>", "exec")
            _CODE_CACHE[source] = code
        namespace = dict(_EXEC_GLOBALS)
        exec(code, namespace)
        fn = namespace["_make"](
            self.regs, self.spill, self.memory, self.functions,
            self._tags, self._hm, self._energy, self._steps_cell,
            self._exec_counts, self._touched, K,
        )
        return [fn]

    def run(self) -> Dict[str, Any]:
        fused = self._fused
        block_index = self._block_index
        block_steps = self._block_steps
        counts = self._exec_counts
        touched = self._touched
        max_steps = self.max_steps
        steps_cell = self._steps_cell
        steps_cell[0] = self.steps
        idx = 0
        n = len(fused)
        try:
            while 0 <= idx < n:
                steps = steps_cell[0] + block_steps[idx]
                steps_cell[0] = steps
                if steps > max_steps:
                    raise InterpError(_BUDGET_MSG)
                if not counts[idx]:
                    touched.append(idx)
                counts[idx] += 1
                jump = fused[idx]()
                if jump is None:
                    idx += 1
                else:
                    target = block_index.get(jump)
                    if target is None:
                        raise InterpError(
                            f"branch to unknown block {jump!r}"
                        )
                    idx = target
        finally:
            self.steps = steps_cell[0]
        return self.state()

    def metrics(self) -> ExecutionMetrics:
        """Assemble ExecutionMetrics equal to the observer path's.

        Integer totals are linear in per-block execution counts; dict
        insertion order is reconstructed from first-execution order.
        """
        hits, misses = self._hm
        cycles = misses * self.machine.cache.miss_penalty
        instructions = 0
        op_counts: Dict[str, int] = {}
        block_executions: Dict[str, int] = {}
        order = self.module.order
        for idx in self._touched:
            name = order[idx]
            profile = self._profiles[name]
            count = self._exec_counts[idx]
            block_executions[name] = count
            cycles += profile.cost * count
            instructions += profile.instructions * count
            for cls, per_exec in profile.op_items:
                op_counts[cls] = op_counts.get(cls, 0) + per_exec * count
        return ExecutionMetrics(
            cycles=cycles,
            instructions=instructions,
            mem_accesses=hits + misses,
            cache_hits=hits,
            cache_misses=misses,
            energy_pj=self._energy[0],
            op_counts=op_counts,
            block_executions=block_executions,
        )
