"""Execution substrate: interpreters, cache model, cycle simulator, power.

* :mod:`repro.sim.interp` — a direct AST interpreter for the C subset.
  This is the **semantics oracle**: every transformation in the project is
  validated by running original and transformed programs on identical
  inputs and comparing final memory.
* :mod:`repro.sim.lir_interp` — functional interpreter for the backend's
  low-level IR, checked against the AST interpreter.
* :mod:`repro.sim.cache` — a direct-mapped L1 data cache model.
* :mod:`repro.sim.executor` — cycle-level execution of scheduled LIR over
  a machine model (stand-in for the paper's hardware testbeds).
* :mod:`repro.sim.power` — per-instruction energy accounting in the style
  of Sim-Panalyzer (stand-in for the paper's ARM power measurements).
"""

from repro.sim.interp import InterpError, Interpreter, run_program, state_equal

__all__ = ["InterpError", "Interpreter", "run_program", "state_equal"]
