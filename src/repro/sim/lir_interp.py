"""Functional LIR interpreter.

Executes a :class:`~repro.backend.lir.Module` with exact semantics
(C integer division, IEEE doubles, bounds-checked arrays) so backend
passes can be validated against the source-level interpreter: codegen,
register allocation and scheduling must all leave final memory
bit-identical.

An :class:`Observer` receives block-execution and memory-access events;
the cycle simulator (:mod:`repro.sim.executor`) plugs in there without
duplicating the semantics.

Performance: every instruction is pre-decoded into a bound closure at
:class:`LIRInterpreter` construction — operand slots, immediates, array
buffers and binop/unop callables are resolved exactly once, so the step
loop is a plain ``for fn in ops: fn()`` with no per-instruction string
dispatch.  The ``on_instr`` / ``on_mem`` observer hooks are only wired
into the closures when the observer actually overrides them, which lets
the cycle simulator do static per-block accounting (see
:mod:`repro.sim.executor`) without paying a Python call per instruction.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Dict, List, Mapping, Optional

import numpy as np

from repro.backend.lir import Block, Instr, Module
from repro.sim.interp import InterpError, _c_div, _c_mod


class Observer:
    """Execution event hooks; default implementation ignores everything."""

    def on_block(self, block_name: str, module: Module) -> None:
        """A basic block is about to execute."""

    def on_mem(self, array: str, flat_index: int, is_store: bool) -> None:
        """A load/store touches ``array[flat_index]``."""

    def on_instr(self, instr: Instr) -> None:
        """An instruction executed (for op-mix accounting).

        Only delivered when the observer *overrides* this method; the
        default executor replaces per-instruction callbacks with static
        per-block profiles, so overriding costs a Python call per
        executed instruction.
        """


_BINOPS: Dict[str, Callable[[Any, Any], Any]] = {
    "add": lambda a, b: int(a) + int(b),
    "sub": lambda a, b: int(a) - int(b),
    "mul": lambda a, b: int(a) * int(b),
    "div": lambda a, b: _c_div(int(a), int(b)),
    "mod": lambda a, b: _c_mod(int(a), int(b)),
    "fadd": lambda a, b: float(a) + float(b),
    "fsub": lambda a, b: float(a) - float(b),
    "fmul": lambda a, b: float(a) * float(b),
    "lt": lambda a, b: 1 if a < b else 0,
    "le": lambda a, b: 1 if a <= b else 0,
    "gt": lambda a, b: 1 if a > b else 0,
    "ge": lambda a, b: 1 if a >= b else 0,
    "eq": lambda a, b: 1 if a == b else 0,
    "ne": lambda a, b: 1 if a != b else 0,
    "and": lambda a, b: 1 if (a != 0 and b != 0) else 0,
    "or": lambda a, b: 1 if (a != 0 or b != 0) else 0,
    "vmin": min,
    "vmax": max,
    "powr": lambda a, b: float(a) ** float(b),
}

_UNOPS: Dict[str, Callable[[Any], Any]] = {
    "neg": lambda a: -int(a),
    "fneg": lambda a: -float(a),
    "not": lambda a: 0 if a != 0 else 1,
    "vabs": abs,
    "sqrt": math.sqrt,
    "exp": math.exp,
    "log": math.log,
    "sin": math.sin,
    "cos": math.cos,
    "floorr": math.floor,
    "ceilr": math.ceil,
}


class LIRInterpreter:
    """Interprets a module; see :func:`run_module` for the one-shot API."""

    def __init__(
        self,
        module: Module,
        env: Optional[Mapping[str, Any]] = None,
        functions: Optional[Mapping[str, Callable[..., Any]]] = None,
        observer: Optional[Observer] = None,
        max_steps: int = 50_000_000,
    ):
        self.module = module
        self.regs: Dict[str, Any] = {}
        self.memory: Dict[str, np.ndarray] = {}
        self.functions = dict(functions or {})
        self.observer = observer or Observer()
        self.max_steps = max_steps
        self.steps = 0

        self.spill: Dict[int, Any] = {}

        env = env or {}
        for name, (dims, typ) in module.arrays.items():
            dtype = np.int64 if typ == "int" else np.float64
            size = int(np.prod(dims))
            if name in env and isinstance(env[name], np.ndarray):
                flat = np.array(env[name], dtype=dtype).reshape(-1)
                if flat.size != size:
                    raise InterpError(
                        f"array {name!r} env size {flat.size} != declared {size}"
                    )
                self.memory[name] = flat.copy()
            else:
                self.memory[name] = np.zeros(size, dtype=dtype)
        for name, value in env.items():
            if isinstance(value, np.ndarray):
                continue
            if name in module.scalar_slots:
                self.spill[module.scalar_slots[name]] = (
                    int(value)
                    if module.scalar_types.get(name) == "int"
                    else value
                )
                continue
            reg = module.scalar_regs.get(name)
            if reg is not None:
                self.regs[reg] = (
                    int(value)
                    if module.scalar_types.get(name) == "int"
                    else value
                )

        # Pre-decode: one closure per instruction, bound to the final
        # register file / arrays, grouped per block in fallthrough order.
        wants_instr = type(self.observer).on_instr is not Observer.on_instr
        wants_mem = type(self.observer).on_mem is not Observer.on_mem
        self._program: List[List[Callable[[], Optional[str]]]] = [
            self._compile_block(module.blocks[name], wants_instr, wants_mem)
            for name in module.order
        ]
        self._block_index: Dict[str, int] = {
            name: idx for idx, name in enumerate(module.order)
        }
        # Step budget charged per block entry (full static length — dead
        # instructions after an unconditional ``br`` still count, exactly
        # as the ``steps += len(ops)`` accounting always has).  Kept as a
        # separate list so subclasses that fuse a block into a single
        # callable (see :mod:`repro.sim.codegen_exec`) charge the same
        # budget as the closure path.
        self._block_steps: List[int] = [
            len(module.blocks[name].instrs) for name in module.order
        ]

    # ------------------------------------------------------------------
    def _get(self, reg: str) -> Any:
        # Uninitialized registers read as 0 (declared scalars default to
        # zero in the source semantics).
        return self.regs.get(reg, 0)

    def _set(self, reg: str, value: Any) -> None:
        self.regs[reg] = value

    # ------------------------------------------------------------------
    def _compile_block(
        self, block: Block, wants_instr: bool, wants_mem: bool
    ) -> List[Callable[[], Optional[str]]]:
        ops = [self._bind(instr, wants_mem) for instr in block.instrs]
        if wants_instr:
            on_instr = self.observer.on_instr

            def wrap(fn, instr):
                def stepped() -> Optional[str]:
                    on_instr(instr)
                    return fn()

                return stepped

            ops = [wrap(fn, instr) for fn, instr in zip(ops, block.instrs)]
        return ops

    def _bind(
        self, instr: Instr, wants_mem: bool
    ) -> Callable[[], Optional[str]]:
        """Pre-decode one instruction into a zero-argument closure.

        The closure returns the branch target label when control
        transfers, else ``None``.  All operand lookups are resolved here,
        once, rather than per executed instruction.
        """
        op = instr.op
        regs = self.regs
        dst = instr.dst
        srcs = instr.srcs

        if op == "movi":
            imm = instr.imm

            def movi() -> None:
                regs[dst] = imm

            return movi
        if op == "mov":
            src = srcs[0]

            def mov() -> None:
                regs[dst] = regs.get(src, 0)

            return mov
        if op == "trunc":
            src = srcs[0]

            # C float->int conversion truncates toward zero.
            def trunc() -> None:
                regs[dst] = int(regs.get(src, 0))

            return trunc
        if op == "ld":
            if instr.array == "__spill":
                spill = self.spill
                disp = instr.disp
                if wants_mem:
                    on_mem = self.observer.on_mem

                    def ld_spill_obs() -> None:
                        on_mem("__spill", disp, False)
                        regs[dst] = spill.get(disp, 0)

                    return ld_spill_obs

                def ld_spill() -> None:
                    regs[dst] = spill.get(disp, 0)

                return ld_spill
            return self._bind_ld(instr, wants_mem)
        if op == "st":
            if instr.array == "__spill":
                spill = self.spill
                disp = instr.disp
                val = srcs[0]
                if wants_mem:
                    on_mem = self.observer.on_mem

                    def st_spill_obs() -> None:
                        on_mem("__spill", disp, True)
                        spill[disp] = regs.get(val, 0)

                    return st_spill_obs

                def st_spill() -> None:
                    spill[disp] = regs.get(val, 0)

                return st_spill
            return self._bind_st(instr, wants_mem)
        if op == "fma":
            a, b, c = srcs

            # Matches the unfused pair bit-for-bit: Python rounds a*b to
            # double before adding (no single-rounding fusion).
            def fma() -> None:
                regs[dst] = float(regs.get(a, 0)) * float(
                    regs.get(b, 0)
                ) + float(regs.get(c, 0))

            return fma
        if op == "select":
            cond, a, b = srcs

            def select() -> None:
                regs[dst] = (
                    regs.get(a, 0) if regs.get(cond, 0) != 0 else regs.get(b, 0)
                )

            return select
        if op == "br":
            label = instr.label

            def br() -> Optional[str]:
                return label

            return br
        if op == "brf":
            label = instr.label
            src = srcs[0]

            def brf() -> Optional[str]:
                return label if regs.get(src, 0) == 0 else None

            return brf
        if op == "brt":
            label = instr.label
            src = srcs[0]

            def brt() -> Optional[str]:
                return label if regs.get(src, 0) != 0 else None

            return brt
        if op == "call":
            functions = self.functions
            fname = instr.name or ""

            def call() -> None:
                fn = functions.get(fname)
                if fn is None:
                    raise InterpError(f"call to unknown function {fname!r}")
                result = fn(*(regs.get(s, 0) for s in srcs))
                if dst is not None:
                    regs[dst] = result

            return call
        if op == "fdiv":
            a, b = srcs

            def fdiv() -> None:
                denom = float(regs.get(b, 0))
                if denom == 0.0:
                    raise InterpError("float division by zero")
                regs[dst] = float(regs.get(a, 0)) / denom

            return fdiv
        fn2 = _BINOPS.get(op)
        if fn2 is not None:
            a, b = srcs

            def binop() -> None:
                regs[dst] = fn2(regs.get(a, 0), regs.get(b, 0))

            return binop
        fn1 = _UNOPS.get(op)
        if fn1 is not None:
            src = srcs[0]

            def unop() -> None:
                regs[dst] = fn1(regs.get(src, 0))

            return unop

        # Unknown ops stay lazy: they only raise if actually executed,
        # matching the pre-decode-free interpreter's behavior.
        def unknown() -> None:
            raise InterpError(f"unknown LIR op {op!r}")

        return unknown

    def _bind_ld(
        self, instr: Instr, wants_mem: bool
    ) -> Callable[[], Optional[str]]:
        regs = self.regs
        dst = instr.dst
        array = self.memory[instr.array]  # type: ignore[index]
        array_name = instr.array
        disp = instr.disp
        size = array.size
        is_int = bool(np.issubdtype(array.dtype, np.integer))
        idx_reg = instr.srcs[0] if instr.srcs else None
        on_mem = self.observer.on_mem if wants_mem else None

        def ld() -> None:
            flat = (
                disp + int(regs.get(idx_reg, 0)) if idx_reg is not None else disp
            )
            if not 0 <= flat < size:
                raise InterpError(
                    f"ld out of bounds: {array_name}[{flat}] (size {size})"
                )
            if on_mem is not None:
                on_mem(array_name, flat, False)
            value = array[flat]
            regs[dst] = int(value) if is_int else float(value)

        return ld

    def _bind_st(
        self, instr: Instr, wants_mem: bool
    ) -> Callable[[], Optional[str]]:
        regs = self.regs
        array = self.memory[instr.array]  # type: ignore[index]
        array_name = instr.array
        disp = instr.disp
        size = array.size
        val_reg = instr.srcs[0]
        idx_reg = instr.srcs[1] if len(instr.srcs) > 1 else None
        on_mem = self.observer.on_mem if wants_mem else None

        def st() -> None:
            flat = (
                disp + int(regs.get(idx_reg, 0)) if idx_reg is not None else disp
            )
            if not 0 <= flat < size:
                raise InterpError(
                    f"st out of bounds: {array_name}[{flat}] (size {size})"
                )
            if on_mem is not None:
                on_mem(array_name, flat, True)
            array[flat] = regs.get(val_reg, 0)

        return st

    # ------------------------------------------------------------------
    def run(self) -> Dict[str, Any]:
        """Execute from the entry block; returns the final state."""
        program = self._program
        block_index = self._block_index
        block_steps = self._block_steps
        order = self.module.order
        module = self.module
        on_block = self.observer.on_block
        max_steps = self.max_steps
        steps = self.steps
        idx = 0
        n = len(program)
        try:
            while 0 <= idx < n:
                on_block(order[idx], module)
                ops = program[idx]
                steps += block_steps[idx]
                if steps > max_steps:
                    raise InterpError("LIR step budget exceeded")
                jump: Optional[str] = None
                for fn in ops:
                    jump = fn()
                    if jump is not None:
                        break
                if jump is None:
                    idx += 1
                else:
                    target = block_index.get(jump)
                    if target is None:
                        raise InterpError(f"branch to unknown block {jump!r}")
                    idx = target
        finally:
            self.steps = steps
        return self.state()

    # ------------------------------------------------------------------
    def state(self) -> Dict[str, Any]:
        """Final state in source-level terms (scalars + shaped arrays)."""
        out: Dict[str, Any] = {}
        for name, (dims, _typ) in self.module.arrays.items():
            out[name] = self.memory[name].reshape(dims).copy()
        for name, reg in self.module.scalar_regs.items():
            if name in self.module.scalar_slots:
                value = self.spill.get(self.module.scalar_slots[name], 0)
            else:
                value = self._get(reg)
            if self.module.scalar_types.get(name) == "int":
                out[name] = int(value)
            else:
                out[name] = float(value)
        return out


def run_module(
    module: Module,
    env: Optional[Mapping[str, Any]] = None,
    functions: Optional[Mapping[str, Callable[..., Any]]] = None,
    observer: Optional[Observer] = None,
    max_steps: int = 50_000_000,
) -> Dict[str, Any]:
    """One-shot: interpret ``module`` from ``env``, return final state."""
    return LIRInterpreter(
        module, env=env, functions=functions, observer=observer, max_steps=max_steps
    ).run()
