"""Functional LIR interpreter.

Executes a :class:`~repro.backend.lir.Module` with exact semantics
(C integer division, IEEE doubles, bounds-checked arrays) so backend
passes can be validated against the source-level interpreter: codegen,
register allocation and scheduling must all leave final memory
bit-identical.

An :class:`Observer` receives block-execution and memory-access events;
the cycle simulator (:mod:`repro.sim.executor`) plugs in there without
duplicating the semantics.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Dict, Mapping, Optional

import numpy as np

from repro.backend.lir import Instr, Module
from repro.sim.interp import InterpError, _c_div, _c_mod


class Observer:
    """Execution event hooks; default implementation ignores everything."""

    def on_block(self, block_name: str, module: Module) -> None:
        """A basic block is about to execute."""

    def on_mem(self, array: str, flat_index: int, is_store: bool) -> None:
        """A load/store touches ``array[flat_index]``."""

    def on_instr(self, instr: Instr) -> None:
        """An instruction executed (for op-mix accounting)."""


_BINOPS: Dict[str, Callable[[Any, Any], Any]] = {
    "add": lambda a, b: int(a) + int(b),
    "sub": lambda a, b: int(a) - int(b),
    "mul": lambda a, b: int(a) * int(b),
    "div": lambda a, b: _c_div(int(a), int(b)),
    "mod": lambda a, b: _c_mod(int(a), int(b)),
    "fadd": lambda a, b: float(a) + float(b),
    "fsub": lambda a, b: float(a) - float(b),
    "fmul": lambda a, b: float(a) * float(b),
    "lt": lambda a, b: 1 if a < b else 0,
    "le": lambda a, b: 1 if a <= b else 0,
    "gt": lambda a, b: 1 if a > b else 0,
    "ge": lambda a, b: 1 if a >= b else 0,
    "eq": lambda a, b: 1 if a == b else 0,
    "ne": lambda a, b: 1 if a != b else 0,
    "and": lambda a, b: 1 if (a != 0 and b != 0) else 0,
    "or": lambda a, b: 1 if (a != 0 or b != 0) else 0,
    "vmin": min,
    "vmax": max,
    "powr": lambda a, b: float(a) ** float(b),
}

_UNOPS: Dict[str, Callable[[Any], Any]] = {
    "neg": lambda a: -int(a),
    "fneg": lambda a: -float(a),
    "not": lambda a: 0 if a != 0 else 1,
    "vabs": abs,
    "sqrt": math.sqrt,
    "exp": math.exp,
    "log": math.log,
    "sin": math.sin,
    "cos": math.cos,
    "floorr": math.floor,
    "ceilr": math.ceil,
}


class LIRInterpreter:
    """Interprets a module; see :func:`run_module` for the one-shot API."""

    def __init__(
        self,
        module: Module,
        env: Optional[Mapping[str, Any]] = None,
        functions: Optional[Mapping[str, Callable[..., Any]]] = None,
        observer: Optional[Observer] = None,
        max_steps: int = 50_000_000,
    ):
        self.module = module
        self.regs: Dict[str, Any] = {}
        self.memory: Dict[str, np.ndarray] = {}
        self.functions = dict(functions or {})
        self.observer = observer or Observer()
        self.max_steps = max_steps
        self.steps = 0

        self.spill: Dict[int, Any] = {}

        env = env or {}
        for name, (dims, typ) in module.arrays.items():
            dtype = np.int64 if typ == "int" else np.float64
            size = int(np.prod(dims))
            if name in env and isinstance(env[name], np.ndarray):
                flat = np.array(env[name], dtype=dtype).reshape(-1)
                if flat.size != size:
                    raise InterpError(
                        f"array {name!r} env size {flat.size} != declared {size}"
                    )
                self.memory[name] = flat.copy()
            else:
                self.memory[name] = np.zeros(size, dtype=dtype)
        for name, value in env.items():
            if isinstance(value, np.ndarray):
                continue
            if name in module.scalar_slots:
                self.spill[module.scalar_slots[name]] = (
                    int(value)
                    if module.scalar_types.get(name) == "int"
                    else value
                )
                continue
            reg = module.scalar_regs.get(name)
            if reg is not None:
                self.regs[reg] = (
                    int(value)
                    if module.scalar_types.get(name) == "int"
                    else value
                )

    # ------------------------------------------------------------------
    def _get(self, reg: str) -> Any:
        try:
            return self.regs[reg]
        except KeyError:
            # Uninitialized registers read as 0 (declared scalars default
            # to zero in the source semantics).
            return 0

    def _set(self, reg: str, value: Any) -> None:
        self.regs[reg] = value

    def _address(self, instr: Instr, idx_value: Optional[Any]) -> int:
        flat = instr.disp + (int(idx_value) if idx_value is not None else 0)
        array = self.memory[instr.array]  # type: ignore[index]
        if not 0 <= flat < array.size:
            raise InterpError(
                f"{instr.op} out of bounds: {instr.array}[{flat}] "
                f"(size {array.size})"
            )
        return flat

    # ------------------------------------------------------------------
    def run(self) -> Dict[str, Any]:
        """Execute from the entry block; returns the final state."""
        order = self.module.order
        block_idx = 0
        while 0 <= block_idx < len(order):
            name = order[block_idx]
            block = self.module.blocks[name]
            self.observer.on_block(name, self.module)
            jump: Optional[str] = None
            for instr in block.instrs:
                self.steps += 1
                if self.steps > self.max_steps:
                    raise InterpError("LIR step budget exceeded")
                jump = self._exec(instr)
                if jump is not None:
                    break
            if jump is not None:
                block_idx = order.index(jump)
            else:
                block_idx += 1
        return self.state()

    def _exec(self, instr: Instr) -> Optional[str]:
        op = instr.op
        self.observer.on_instr(instr)
        if op == "movi":
            self._set(instr.dst, instr.imm)  # type: ignore[arg-type]
            return None
        if op == "mov":
            self._set(instr.dst, self._get(instr.srcs[0]))  # type: ignore[arg-type]
            return None
        if op == "trunc":
            # C float->int conversion truncates toward zero.
            self._set(instr.dst, int(self._get(instr.srcs[0])))  # type: ignore[arg-type]
            return None
        if op == "ld":
            if instr.array == "__spill":
                self.observer.on_mem("__spill", instr.disp, False)
                self._set(instr.dst, self.spill.get(instr.disp, 0))  # type: ignore[arg-type]
                return None
            idx = self._get(instr.srcs[0]) if instr.srcs else None
            flat = self._address(instr, idx)
            self.observer.on_mem(instr.array, flat, False)  # type: ignore[arg-type]
            value = self.memory[instr.array][flat]  # type: ignore[index]
            array = self.memory[instr.array]  # type: ignore[index]
            self._set(
                instr.dst,  # type: ignore[arg-type]
                int(value) if np.issubdtype(array.dtype, np.integer) else float(value),
            )
            return None
        if op == "st":
            value = self._get(instr.srcs[0])
            if instr.array == "__spill":
                self.observer.on_mem("__spill", instr.disp, True)
                self.spill[instr.disp] = value
                return None
            idx = self._get(instr.srcs[1]) if len(instr.srcs) > 1 else None
            flat = self._address(instr, idx)
            self.observer.on_mem(instr.array, flat, True)  # type: ignore[arg-type]
            self.memory[instr.array][flat] = value  # type: ignore[index]
            return None
        if op == "fma":
            a, b, c = (self._get(x) for x in instr.srcs)
            # Matches the unfused pair bit-for-bit: Python rounds a*b to
            # double before adding (no single-rounding fusion).
            self._set(instr.dst, float(a) * float(b) + float(c))  # type: ignore[arg-type]
            return None
        if op == "select":
            cond, a, b = (self._get(s) for s in instr.srcs)
            self._set(instr.dst, a if cond != 0 else b)  # type: ignore[arg-type]
            return None
        if op == "br":
            return instr.label
        if op == "brf":
            return instr.label if self._get(instr.srcs[0]) == 0 else None
        if op == "brt":
            return instr.label if self._get(instr.srcs[0]) != 0 else None
        if op == "call":
            fn = self.functions.get(instr.name or "")
            if fn is None:
                raise InterpError(f"call to unknown function {instr.name!r}")
            result = fn(*(self._get(s) for s in instr.srcs))
            if instr.dst is not None:
                self._set(instr.dst, result)
            return None
        if op == "fdiv":
            a, b = (self._get(s) for s in instr.srcs)
            if float(b) == 0.0:
                raise InterpError("float division by zero")
            self._set(instr.dst, float(a) / float(b))  # type: ignore[arg-type]
            return None
        fn2 = _BINOPS.get(op)
        if fn2 is not None:
            a, b = (self._get(s) for s in instr.srcs)
            self._set(instr.dst, fn2(a, b))  # type: ignore[arg-type]
            return None
        fn1 = _UNOPS.get(op)
        if fn1 is not None:
            self._set(instr.dst, fn1(self._get(instr.srcs[0])))  # type: ignore[arg-type]
            return None
        raise InterpError(f"unknown LIR op {op!r}")

    # ------------------------------------------------------------------
    def state(self) -> Dict[str, Any]:
        """Final state in source-level terms (scalars + shaped arrays)."""
        out: Dict[str, Any] = {}
        for name, (dims, _typ) in self.module.arrays.items():
            out[name] = self.memory[name].reshape(dims).copy()
        for name, reg in self.module.scalar_regs.items():
            if name in self.module.scalar_slots:
                value = self.spill.get(self.module.scalar_slots[name], 0)
            else:
                value = self._get(reg)
            if self.module.scalar_types.get(name) == "int":
                out[name] = int(value)
            else:
                out[name] = float(value)
        return out


def run_module(
    module: Module,
    env: Optional[Mapping[str, Any]] = None,
    functions: Optional[Mapping[str, Callable[..., Any]]] = None,
    observer: Optional[Observer] = None,
    max_steps: int = 50_000_000,
) -> Dict[str, Any]:
    """One-shot: interpret ``module`` from ``env``, return final state."""
    return LIRInterpreter(
        module, env=env, functions=functions, observer=observer, max_steps=max_steps
    ).run()
