"""Direct interpreter for the C subset — the project's semantics oracle.

Every SLMS/loop transformation in this repository is verified by running
the original and the transformed program through this interpreter on
identical initial state and requiring *bit-identical* final memory (see
:func:`state_equal`).  The interpreter therefore implements a precise,
deterministic semantics:

* ``int`` variables hold Python ints; ``/`` and ``%`` between ints use
  C semantics (truncation toward zero, remainder with the dividend's
  sign).
* ``float`` variables hold IEEE-754 doubles (Python floats), matching
  the LIR interpreter so cross-checks are exact.
* Arrays are bounds-checked numpy arrays (``int64``/``float64``).
* ``&&``/``||`` short-circuit; comparisons yield ``0``/``1``.
* Opaque calls dispatch to a caller-supplied function table; a small set
  of pure math builtins (``min``/``max``/``abs``/``sqrt``/…) is always
  available.
* A step budget guards against non-terminating loops in generated tests.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Dict, List, Mapping, Optional, Union

import numpy as np

from repro.lang.ast_nodes import (
    ArrayRef,
    Assign,
    BinOp,
    Break,
    Call,
    Continue,
    Decl,
    Expr,
    ExprStmt,
    FloatLit,
    For,
    If,
    IntLit,
    ParGroup,
    Program,
    Stmt,
    Ternary,
    UnaryOp,
    Var,
    While,
)


class InterpError(Exception):
    """Raised on runtime errors: OOB access, div-by-zero, budget exhausted."""


class _BreakSignal(Exception):
    pass


class _ContinueSignal(Exception):
    pass


def _c_div(a: int, b: int) -> int:
    """C integer division: truncation toward zero."""
    if b == 0:
        raise InterpError("integer division by zero")
    quotient = abs(a) // abs(b)
    return quotient if (a >= 0) == (b >= 0) else -quotient


def _c_mod(a: int, b: int) -> int:
    """C remainder: sign follows the dividend, ``a == (a/b)*b + a%b``."""
    if b == 0:
        raise InterpError("integer modulo by zero")
    return a - _c_div(a, b) * b


_BUILTINS: Dict[str, Callable[..., Any]] = {
    "abs": abs,
    "min": min,
    "max": max,
    "sqrt": math.sqrt,
    "exp": math.exp,
    "log": math.log,
    "sin": math.sin,
    "cos": math.cos,
    "floor": math.floor,
    "ceil": math.ceil,
    "pow": pow,
}


class Interpreter:
    """Executes a :class:`~repro.lang.ast_nodes.Program`.

    Parameters
    ----------
    env:
        Initial variable bindings.  Scalars are ints/floats; arrays are
        numpy arrays (copied, so the caller's arrays are never mutated).
    functions:
        Extra call targets, merged over the math builtins.
    max_steps:
        Statement-execution budget; :class:`InterpError` when exhausted.
    """

    def __init__(
        self,
        env: Optional[Mapping[str, Any]] = None,
        functions: Optional[Mapping[str, Callable[..., Any]]] = None,
        max_steps: int = 2_000_000,
    ):
        self.scalars: Dict[str, Any] = {}
        self.arrays: Dict[str, np.ndarray] = {}
        self.types: Dict[str, str] = {}
        self.functions: Dict[str, Callable[..., Any]] = dict(_BUILTINS)
        if functions:
            self.functions.update(functions)
        self.max_steps = max_steps
        self.steps = 0
        if env:
            for name, value in env.items():
                if isinstance(value, np.ndarray):
                    array = np.array(value)  # defensive copy
                    self.arrays[name] = array
                    self.types[name] = (
                        "int" if np.issubdtype(array.dtype, np.integer) else "float"
                    )
                elif isinstance(value, (bool, int, np.integer)):
                    self.scalars[name] = int(value)
                    self.types[name] = "int"
                else:
                    self.scalars[name] = float(value)
                    self.types[name] = "float"

    # -- state access -----------------------------------------------------
    def state(self) -> Dict[str, Any]:
        """A snapshot of all scalars and arrays (arrays are copies)."""
        out: Dict[str, Any] = dict(self.scalars)
        for name, array in self.arrays.items():
            out[name] = array.copy()
        return out

    def _tick(self) -> None:
        self.steps += 1
        if self.steps > self.max_steps:
            raise InterpError(f"step budget exceeded ({self.max_steps})")

    # -- declarations -------------------------------------------------------
    def _declare(self, decl: Decl) -> None:
        if decl.dims:
            dtype = np.int64 if decl.type == "int" else np.float64
            if decl.name not in self.arrays:
                self.arrays[decl.name] = np.zeros(decl.dims, dtype=dtype)
            self.types[decl.name] = decl.type
        else:
            self.types[decl.name] = decl.type
            if decl.init is not None:
                self._assign_scalar(decl.name, self.eval(decl.init))
            elif decl.name not in self.scalars:
                self.scalars[decl.name] = 0 if decl.type == "int" else 0.0

    def _assign_scalar(self, name: str, value: Any) -> None:
        typ = self.types.get(name)
        if typ == "int":
            self.scalars[name] = int(value)
        elif typ == "float":
            self.scalars[name] = float(value)
        else:
            # Undeclared: dynamic typing, int stays int, float stays float.
            self.scalars[name] = (
                int(value) if isinstance(value, (bool, int, np.integer)) else float(value)
            )

    # -- expressions -----------------------------------------------------------
    def eval(self, expr: Expr) -> Any:
        if isinstance(expr, IntLit):
            return expr.value
        if isinstance(expr, FloatLit):
            return expr.value
        if isinstance(expr, Var):
            try:
                return self.scalars[expr.name]
            except KeyError:
                raise InterpError(f"read of unbound variable {expr.name!r}") from None
        if isinstance(expr, ArrayRef):
            return self._load(expr)
        if isinstance(expr, BinOp):
            return self._binop(expr)
        if isinstance(expr, UnaryOp):
            if expr.op == "!":
                return 0 if self._truthy(expr.operand) else 1
            value = self.eval(expr.operand)
            return -value if expr.op == "-" else value
        if isinstance(expr, Ternary):
            return self.eval(expr.then) if self._truthy(expr.cond) else self.eval(expr.els)
        if isinstance(expr, Call):
            fn = self.functions.get(expr.name)
            if fn is None:
                raise InterpError(f"call to unknown function {expr.name!r}")
            return fn(*(self.eval(a) for a in expr.args))
        raise InterpError(f"cannot evaluate {type(expr).__name__}")

    def _truthy(self, expr: Expr) -> bool:
        return self.eval(expr) != 0

    def _binop(self, expr: BinOp) -> Any:
        op = expr.op
        if op == "&&":
            return 1 if (self._truthy(expr.left) and self._truthy(expr.right)) else 0
        if op == "||":
            return 1 if (self._truthy(expr.left) or self._truthy(expr.right)) else 0
        left = self.eval(expr.left)
        right = self.eval(expr.right)
        if op == "<":
            return 1 if left < right else 0
        if op == "<=":
            return 1 if left <= right else 0
        if op == ">":
            return 1 if left > right else 0
        if op == ">=":
            return 1 if left >= right else 0
        if op == "==":
            return 1 if left == right else 0
        if op == "!=":
            return 1 if left != right else 0
        both_int = isinstance(left, (bool, int, np.integer)) and isinstance(
            right, (bool, int, np.integer)
        )
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if op == "/":
            if both_int:
                return _c_div(int(left), int(right))
            if float(right) == 0.0:
                raise InterpError("float division by zero")
            return left / right
        if op == "%":
            if both_int:
                return _c_mod(int(left), int(right))
            raise InterpError("% requires integer operands")
        raise InterpError(f"unknown operator {op!r}")

    # -- array access -------------------------------------------------------------
    def _resolve(self, ref: ArrayRef) -> tuple[np.ndarray, tuple[int, ...]]:
        array = self.arrays.get(ref.name)
        if array is None:
            raise InterpError(f"reference to undeclared array {ref.name!r}")
        if len(ref.indices) != array.ndim:
            raise InterpError(
                f"array {ref.name!r} has {array.ndim} dims, indexed with "
                f"{len(ref.indices)}"
            )
        idx = tuple(int(self.eval(e)) for e in ref.indices)
        for axis, (i, size) in enumerate(zip(idx, array.shape)):
            if not 0 <= i < size:
                raise InterpError(
                    f"index {i} out of bounds for axis {axis} of {ref.name!r} "
                    f"(size {size})"
                )
        return array, idx

    def _load(self, ref: ArrayRef) -> Any:
        array, idx = self._resolve(ref)
        value = array[idx]
        return int(value) if np.issubdtype(array.dtype, np.integer) else float(value)

    def _store(self, ref: ArrayRef, value: Any) -> None:
        array, idx = self._resolve(ref)
        array[idx] = value

    # -- statements ----------------------------------------------------------------
    def exec_stmt(self, stmt: Stmt) -> None:
        self._tick()
        if isinstance(stmt, Decl):
            self._declare(stmt)
        elif isinstance(stmt, Assign):
            value = self.eval(stmt.expanded_value())
            if isinstance(stmt.target, Var):
                self._assign_scalar(stmt.target.name, value)
            else:
                self._store(stmt.target, value)
        elif isinstance(stmt, ExprStmt):
            self.eval(stmt.expr)
        elif isinstance(stmt, If):
            branch = stmt.then if self._truthy(stmt.cond) else stmt.els
            self.exec_block(branch)
        elif isinstance(stmt, While):
            while self._truthy(stmt.cond):
                self._tick()
                try:
                    self.exec_block(stmt.body)
                except _BreakSignal:
                    break
                except _ContinueSignal:
                    continue
        elif isinstance(stmt, For):
            if stmt.init is not None:
                self.exec_stmt(stmt.init)
            while stmt.cond is None or self._truthy(stmt.cond):
                self._tick()
                try:
                    self.exec_block(stmt.body)
                except _BreakSignal:
                    break
                except _ContinueSignal:
                    pass
                if stmt.step is not None:
                    self.exec_stmt(stmt.step)
        elif isinstance(stmt, ParGroup):
            # SLMS guarantees the listed order is a legal serialization.
            self.exec_block(stmt.stmts)
        elif isinstance(stmt, Break):
            raise _BreakSignal()
        elif isinstance(stmt, Continue):
            raise _ContinueSignal()
        else:
            raise InterpError(f"cannot execute {type(stmt).__name__}")

    def exec_block(self, stmts) -> None:
        for stmt in stmts:
            self.exec_stmt(stmt)

    def run(self, program: Program) -> Dict[str, Any]:
        """Execute the program and return the final state snapshot."""
        self.exec_block(program.body)
        return self.state()


def run_program(
    program: Program,
    env: Optional[Mapping[str, Any]] = None,
    functions: Optional[Mapping[str, Callable[..., Any]]] = None,
    max_steps: int = 2_000_000,
) -> Dict[str, Any]:
    """One-shot: interpret ``program`` from ``env``, return final state."""
    return Interpreter(env=env, functions=functions, max_steps=max_steps).run(program)


# ---------------------------------------------------------------------------
# batched multi-environment interpretation


class _LockstepDivergence(Exception):
    """The environments stopped agreeing on control flow (or an env
    raised) — the batched pass aborts and the caller replays per-env."""


class _BudgetExceeded(Exception):
    """All lockstepped environments exhausted the (shared) step budget."""

    def __init__(self, message: str):
        super().__init__(message)
        self.message = message


class _BatchedInterpreter:
    """Lockstep interpreter over a vector of environments.

    One AST walk serves every environment: each expression evaluates to
    a list of per-env values, so node dispatch / traversal — the bulk of
    the tree-walker's cost — is paid once instead of once per env.  The
    batch is only valid while all envs take the same control path;
    at the first data-dependent divergence (a mixed ``if``/loop/ternary
    condition, a mixed short-circuit operand) or any per-env runtime
    error the walk raises :class:`_LockstepDivergence` and the caller
    falls back to classic per-env interpretation, which reproduces the
    exact per-env states and error messages.  Only the step budget is
    handled in-batch: ticks are shared under lockstep, so exhaustion is
    uniform and the classic error text is emitted for every env.
    """

    def __init__(
        self,
        envs: List[Mapping[str, Any]],
        functions: Optional[Mapping[str, Callable[..., Any]]],
        max_steps: int,
    ):
        self.slots = [
            Interpreter(env=env, functions=functions, max_steps=max_steps)
            for env in envs
        ]
        self.n = len(envs)
        self.max_steps = max_steps
        self.steps = 0

    # -- helpers -----------------------------------------------------------
    def _tick(self) -> None:
        self.steps += 1
        if self.steps > self.max_steps:
            raise _BudgetExceeded(
                f"step budget exceeded ({self.max_steps})"
            )

    def _uniform_truthy(self, expr: Expr) -> bool:
        values = self.eval(expr)
        first = values[0] != 0
        for v in values[1:]:
            if (v != 0) != first:
                raise _LockstepDivergence()
        return first

    # -- expressions -------------------------------------------------------
    def eval(self, expr: Expr) -> List[Any]:
        if isinstance(expr, IntLit):
            return [expr.value] * self.n
        if isinstance(expr, FloatLit):
            return [expr.value] * self.n
        if isinstance(expr, Var):
            name = expr.name
            try:
                return [slot.scalars[name] for slot in self.slots]
            except KeyError:
                raise _LockstepDivergence() from None
        if isinstance(expr, ArrayRef):
            return self._load(expr)
        if isinstance(expr, BinOp):
            return self._binop(expr)
        if isinstance(expr, UnaryOp):
            if expr.op == "!":
                return [
                    0 if v != 0 else 1 for v in self.eval(expr.operand)
                ]
            values = self.eval(expr.operand)
            return [-v for v in values] if expr.op == "-" else values
        if isinstance(expr, Ternary):
            # Only the chosen arm may be evaluated (the other arm can
            # legally trap), so the pick must be uniform.
            if self._uniform_truthy(expr.cond):
                return self.eval(expr.then)
            return self.eval(expr.els)
        if isinstance(expr, Call):
            fn = self.slots[0].functions.get(expr.name)
            if fn is None:
                raise _LockstepDivergence()
            arg_vecs = [self.eval(a) for a in expr.args]
            try:
                return [
                    fn(*(vec[j] for vec in arg_vecs))
                    for j in range(self.n)
                ]
            except Exception:
                raise _LockstepDivergence() from None
        raise _LockstepDivergence()

    def _binop(self, expr: BinOp) -> List[Any]:
        op = expr.op
        if op in ("&&", "||"):
            # Short-circuit: the right operand is only evaluated for
            # envs the left doesn't decide, so it must be all-or-none.
            want_right = op == "&&"
            if self._uniform_truthy(expr.left) == want_right:
                return [
                    1 if v != 0 else 0 for v in self.eval(expr.right)
                ]
            return [0 if want_right else 1] * self.n
        lefts = self.eval(expr.left)
        rights = self.eval(expr.right)
        if op == "<":
            return [1 if a < b else 0 for a, b in zip(lefts, rights)]
        if op == "<=":
            return [1 if a <= b else 0 for a, b in zip(lefts, rights)]
        if op == ">":
            return [1 if a > b else 0 for a, b in zip(lefts, rights)]
        if op == ">=":
            return [1 if a >= b else 0 for a, b in zip(lefts, rights)]
        if op == "==":
            return [1 if a == b else 0 for a, b in zip(lefts, rights)]
        if op == "!=":
            return [1 if a != b else 0 for a, b in zip(lefts, rights)]
        if op == "+":
            return [a + b for a, b in zip(lefts, rights)]
        if op == "-":
            return [a - b for a, b in zip(lefts, rights)]
        if op == "*":
            return [a * b for a, b in zip(lefts, rights)]
        if op in ("/", "%"):
            out = []
            for a, b in zip(lefts, rights):
                both_int = isinstance(a, (bool, int, np.integer)) and (
                    isinstance(b, (bool, int, np.integer))
                )
                try:
                    if op == "/":
                        if both_int:
                            out.append(_c_div(int(a), int(b)))
                        elif float(b) == 0.0:
                            raise InterpError("float division by zero")
                        else:
                            out.append(a / b)
                    else:
                        if not both_int:
                            raise InterpError("% requires integer operands")
                        out.append(_c_mod(int(a), int(b)))
                except InterpError:
                    raise _LockstepDivergence() from None
            return out
        raise _LockstepDivergence()

    def _resolve(self, ref: ArrayRef) -> List[tuple]:
        idx_vecs = [self.eval(e) for e in ref.indices]
        resolved = []
        for j, slot in enumerate(self.slots):
            array = slot.arrays.get(ref.name)
            if array is None or len(ref.indices) != array.ndim:
                raise _LockstepDivergence()
            idx = tuple(int(vec[j]) for vec in idx_vecs)
            for i, size in zip(idx, array.shape):
                if not 0 <= i < size:
                    raise _LockstepDivergence()
            resolved.append((array, idx))
        return resolved

    def _load(self, ref: ArrayRef) -> List[Any]:
        out = []
        for array, idx in self._resolve(ref):
            value = array[idx]
            out.append(
                int(value)
                if np.issubdtype(array.dtype, np.integer)
                else float(value)
            )
        return out

    # -- statements --------------------------------------------------------
    def exec_stmt(self, stmt: Stmt) -> None:
        self._tick()
        if isinstance(stmt, Decl):
            self._declare(stmt)
        elif isinstance(stmt, Assign):
            values = self.eval(stmt.expanded_value())
            if isinstance(stmt.target, Var):
                name = stmt.target.name
                for slot, value in zip(self.slots, values):
                    slot._assign_scalar(name, value)
            else:
                for (array, idx), value in zip(
                    self._resolve(stmt.target), values
                ):
                    array[idx] = value
        elif isinstance(stmt, ExprStmt):
            self.eval(stmt.expr)
        elif isinstance(stmt, If):
            branch = (
                stmt.then if self._uniform_truthy(stmt.cond) else stmt.els
            )
            self.exec_block(branch)
        elif isinstance(stmt, While):
            while self._uniform_truthy(stmt.cond):
                self._tick()
                try:
                    self.exec_block(stmt.body)
                except _BreakSignal:
                    break
                except _ContinueSignal:
                    continue
        elif isinstance(stmt, For):
            if stmt.init is not None:
                self.exec_stmt(stmt.init)
            while stmt.cond is None or self._uniform_truthy(stmt.cond):
                self._tick()
                try:
                    self.exec_block(stmt.body)
                except _BreakSignal:
                    break
                except _ContinueSignal:
                    pass
                if stmt.step is not None:
                    self.exec_stmt(stmt.step)
        elif isinstance(stmt, ParGroup):
            self.exec_block(stmt.stmts)
        elif isinstance(stmt, Break):
            raise _BreakSignal()
        elif isinstance(stmt, Continue):
            raise _ContinueSignal()
        else:
            raise _LockstepDivergence()

    def _declare(self, decl: Decl) -> None:
        if decl.dims:
            dtype = np.int64 if decl.type == "int" else np.float64
            for slot in self.slots:
                if decl.name not in slot.arrays:
                    slot.arrays[decl.name] = np.zeros(decl.dims, dtype=dtype)
                slot.types[decl.name] = decl.type
            return
        for slot in self.slots:
            slot.types[decl.name] = decl.type
        if decl.init is not None:
            values = self.eval(decl.init)
            for slot, value in zip(self.slots, values):
                slot._assign_scalar(decl.name, value)
        else:
            for slot in self.slots:
                if decl.name not in slot.scalars:
                    slot.scalars[decl.name] = 0 if decl.type == "int" else 0.0

    def exec_block(self, stmts) -> None:
        for stmt in stmts:
            self.exec_stmt(stmt)

    def run(self, program: Program) -> List[Dict[str, Any]]:
        self.exec_block(program.body)
        return [slot.state() for slot in self.slots]


def run_program_batched(
    program: Program,
    envs: List[Mapping[str, Any]],
    functions: Optional[Mapping[str, Callable[..., Any]]] = None,
    max_steps: int = 2_000_000,
) -> List[Union[Dict[str, Any], InterpError]]:
    """Interpret ``program`` once over a vector of initial stores.

    Returns one outcome per env, in order: the final state dict, or the
    :class:`InterpError` that env's run raises.  Outcomes are exactly
    what per-env :func:`run_program` produces — the batched lockstep
    pass is an optimization only, and any divergence (mixed control
    flow, any runtime error) silently falls back to classic per-env
    replay.  Non-:class:`InterpError` exceptions propagate from the
    replay just as they would from :func:`run_program`.
    """
    if not envs:
        return []
    if len(envs) > 1:
        batched = _BatchedInterpreter(envs, functions, max_steps)
        try:
            return list(batched.run(program.clone()))
        except _BudgetExceeded as exc:
            return [InterpError(exc.message) for _ in envs]
        except (_LockstepDivergence, _BreakSignal, _ContinueSignal):
            pass
    outcomes: List[Union[Dict[str, Any], InterpError]] = []
    for env in envs:
        try:
            outcomes.append(
                run_program(
                    program.clone(),
                    env,
                    functions=functions,
                    max_steps=max_steps,
                )
            )
        except InterpError as exc:
            outcomes.append(exc)
    return outcomes


def state_equal(
    a: Mapping[str, Any],
    b: Mapping[str, Any],
    ignore: Optional[set] = None,
    arrays_only: bool = False,
) -> bool:
    """Compare two interpreter states bit-exactly.

    ``ignore`` names variables excluded from the comparison (SLMS
    introduces fresh temporaries — ``reg1`` etc. — that exist on only one
    side).  With ``arrays_only`` set, scalar bindings are skipped, which
    is the right contract for transformations that are allowed to leave
    different values in dead temporaries but must agree on memory.
    """
    ignore = ignore or set()
    keys_a = {k for k in a if k not in ignore}
    keys_b = {k for k in b if k not in ignore}
    if arrays_only:
        keys_a = {k for k in keys_a if isinstance(a[k], np.ndarray)}
        keys_b = {k for k in keys_b if isinstance(b[k], np.ndarray)}
    if keys_a != keys_b:
        return False
    for key in keys_a:
        va, vb = a[key], b[key]
        if isinstance(va, np.ndarray) != isinstance(vb, np.ndarray):
            return False
        if isinstance(va, np.ndarray):
            if va.shape != vb.shape or va.dtype != vb.dtype:
                return False
            # Bit-exact comparison; NaN == NaN counts as equal.
            if not np.array_equal(va, vb, equal_nan=True):
                return False
        else:
            if isinstance(va, float) and isinstance(vb, float):
                if math.isnan(va) and math.isnan(vb):
                    continue
            if va != vb:
                return False
    return True
