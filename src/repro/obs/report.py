"""``slms report``: terminal + self-contained HTML dashboard.

The report aggregates what the rest of the obs layer records —

* the **ledger trajectory** (``slms-ledger/1`` entries: wall clock,
  result digests, cache hit rates, fault counts over time),
* a **profiler table** (an ``slms-profile/1`` fold of the latest run's
  phase work),
* **cache-tier stats** (per-tier hit/miss from the phase cache),
* a **fault-journal summary** (ok/failed record counts from an
  ``slms-journal/1`` checkpoint file)

— into one document.  The HTML renderer is deliberately primitive:
pure stdlib string assembly, one ``<style>`` block, no scripts, no
external URLs of any kind, so the file can be attached to a CI run or
mailed around and will render identically forever.  ``slms serve``
(ROADMAP) will stream the same :func:`build_report` payload as JSON.
"""

from __future__ import annotations

import html
import json
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Union

REPORT_SCHEMA = "slms-report/1"


# ---------------------------------------------------------------------------
# Fault-journal summary
# ---------------------------------------------------------------------------

def summarize_journal(path: Union[str, Path]) -> Dict[str, Any]:
    """Torn-tail-tolerant summary of an ``slms-journal/1`` file.

    Counts records by status; a missing or unreadable file is an empty
    summary, not an error, because the journal is optional telemetry.
    """
    statuses: Dict[str, int] = {}
    records = 0
    try:
        with open(path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except ValueError:
                    continue  # torn tail from a killed run
                if not isinstance(record, dict):
                    continue
                records += 1
                status = str(record.get("status", "unknown"))
                statuses[status] = statuses.get(status, 0) + 1
    except OSError:
        pass
    return {
        "path": str(path),
        "records": records,
        "ok": statuses.get("ok", 0),
        "failed": sum(
            count for status, count in statuses.items() if status != "ok"
        ),
        "statuses": dict(sorted(statuses.items())),
    }


# ---------------------------------------------------------------------------
# Report assembly
# ---------------------------------------------------------------------------

def build_report(
    entries: Sequence[Mapping[str, Any]],
    *,
    profile: Optional[Mapping[str, Any]] = None,
    journal: Optional[Mapping[str, Any]] = None,
) -> Dict[str, Any]:
    """Assemble the dashboard payload.

    ``entries`` is a ledger trajectory, oldest first (the shape
    :meth:`RunLedger.entries` returns); the most recent entry is the
    "current run" whose cache/fault detail gets the spotlight.
    ``profile`` is an optional ``slms-profile/1`` dict; ``journal`` an
    optional :func:`summarize_journal` result.
    """
    entries = [dict(e) for e in entries]
    head = entries[-1] if entries else None
    digests = {
        str(e.get("result_digest")) for e in entries if e.get("result_digest")
    }
    report: Dict[str, Any] = {
        "schema": REPORT_SCHEMA,
        "runs": len(entries),
        "kinds": sorted({str(e.get("kind", "?")) for e in entries}),
        "distinct_result_digests": len(digests),
        "head": head,
        "trajectory": [
            {
                "id": str(e.get("id", ""))[:12],
                "ts": e.get("ts"),
                "kind": e.get("kind"),
                "label": e.get("label"),
                "experiments": e.get("experiments"),
                "workers": e.get("workers"),
                "wall_s": e.get("wall_s"),
                "result_digest": str(e.get("result_digest") or "")[:12],
                "cache_hit_rate": (e.get("cache") or {}).get("hit_rate"),
                "failures": (e.get("faults") or {}).get("failures", 0),
            }
            for e in entries
        ],
    }
    if profile:
        report["profile"] = dict(profile)
    if journal:
        report["journal"] = dict(journal)
    return report


# ---------------------------------------------------------------------------
# Terminal renderer
# ---------------------------------------------------------------------------

def _fmt_s(value: Any) -> str:
    try:
        return f"{float(value):.3f}"
    except (TypeError, ValueError):
        return "-"


def render_report_text(report: Mapping[str, Any]) -> str:
    lines: List[str] = []
    lines.append(
        f"slms report — {report.get('runs', 0)} run(s), "
        f"kinds: {', '.join(report.get('kinds') or []) or 'none'}, "
        f"{report.get('distinct_result_digests', 0)} distinct result "
        "digest(s)"
    )
    trajectory = report.get("trajectory") or []
    if trajectory:
        lines.append("")
        lines.append(
            f"{'id':<13} {'kind':<6} {'label':<22} {'exps':>5} "
            f"{'wall s':>9} {'hit rate':>9} {'digest':<13}"
        )
        for row in trajectory:
            rate = row.get("cache_hit_rate")
            rate_s = f"{rate:.1%}" if isinstance(rate, (int, float)) else "-"
            lines.append(
                f"{row.get('id', ''):<13} {str(row.get('kind', '')):<6} "
                f"{str(row.get('label', ''))[:22]:<22} "
                f"{row.get('experiments') or 0:>5} "
                f"{_fmt_s(row.get('wall_s')):>9} {rate_s:>9} "
                f"{row.get('result_digest', ''):<13}"
            )
    head = report.get("head") or {}
    phase_times = head.get("phase_times") or {}
    if phase_times:
        lines.append("")
        lines.append("latest run phase work (s):")
        for phase, seconds in phase_times.items():
            lines.append(f"  {phase:<12} {_fmt_s(seconds)}")
    cached = head.get("cached_phase_times") or {}
    if cached:
        lines.append("latest run seconds served from cache:")
        for phase, seconds in cached.items():
            lines.append(f"  {phase:<12} {_fmt_s(seconds)}")
    tiers = head.get("tiers") or {}
    if tiers:
        lines.append("")
        lines.append("phase-cache tiers (latest run):")
        for tier, stats in tiers.items():
            hits = (stats or {}).get("hits", 0)
            misses = (stats or {}).get("misses", 0)
            total = hits + misses
            rate = f"{hits / total:.1%}" if total else "-"
            lines.append(
                f"  {tier:<12} hits={hits:<6} misses={misses:<6} rate={rate}"
            )
    latency = head.get("latency") or {}
    if latency:
        lines.append("")
        lines.append(
            "latency: "
            + "  ".join(f"{k}={latency[k]}" for k in sorted(latency))
        )
    profile = report.get("profile") or {}
    rows = profile.get("rows") or []
    if rows:
        lines.append("")
        lines.append("profiler (top spans by total time):")
        lines.append(
            f"  {'span':<24} {'count':>7} {'total ms':>12} {'self ms':>12}"
        )
        for row in rows[:15]:
            lines.append(
                f"  {str(row.get('name', '')):<24} {row.get('count', 0):>7} "
                f"{row.get('total_ms', 0.0):>12.3f} "
                f"{row.get('self_ms', 0.0):>12.3f}"
            )
    journal = report.get("journal") or {}
    if journal.get("records"):
        lines.append("")
        lines.append(
            f"fault journal {journal.get('path')}: "
            f"{journal['records']} record(s), {journal.get('ok', 0)} ok, "
            f"{journal.get('failed', 0)} failed"
        )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# HTML renderer (self-contained: inline CSS, no scripts, no URLs)
# ---------------------------------------------------------------------------

_CSS = """
body { font-family: ui-monospace, Menlo, Consolas, monospace;
       margin: 2rem auto; max-width: 72rem; color: #1a1a2e;
       background: #fafafa; }
h1 { font-size: 1.4rem; border-bottom: 2px solid #1a1a2e; }
h2 { font-size: 1.1rem; margin-top: 2rem; }
table { border-collapse: collapse; width: 100%; font-size: 0.85rem; }
th, td { border: 1px solid #ccc; padding: 0.3rem 0.5rem;
         text-align: right; }
th { background: #e8e8f0; }
td.l, th.l { text-align: left; }
tr.head-run { background: #eef6ee; }
.digest { color: #555; }
.fail { color: #a00; font-weight: bold; }
.summary { color: #333; }
"""


def _cell(value: Any, left: bool = False) -> str:
    cls = ' class="l"' if left else ""
    return f"<td{cls}>{html.escape(str(value))}</td>"


def render_report_html(report: Mapping[str, Any]) -> str:
    """Single-file dashboard: one ``<style>`` block, zero external refs."""
    parts: List[str] = []
    parts.append("<!DOCTYPE html>")
    parts.append('<html lang="en"><head><meta charset="utf-8">')
    parts.append("<title>slms report</title>")
    parts.append(f"<style>{_CSS}</style></head><body>")
    parts.append("<h1>slms report</h1>")
    parts.append(
        '<p class="summary">'
        f"{report.get('runs', 0)} run(s) &middot; kinds: "
        f"{html.escape(', '.join(report.get('kinds') or []) or 'none')} "
        f"&middot; {report.get('distinct_result_digests', 0)} distinct "
        "result digest(s)</p>"
    )

    trajectory = report.get("trajectory") or []
    if trajectory:
        parts.append("<h2>Run trajectory</h2><table>")
        parts.append(
            '<tr><th class="l">id</th><th class="l">kind</th>'
            '<th class="l">label</th><th>experiments</th><th>workers</th>'
            '<th>wall s</th><th>cache hit rate</th><th>failures</th>'
            '<th class="l">result digest</th></tr>'
        )
        for index, row in enumerate(trajectory):
            rate = row.get("cache_hit_rate")
            rate_s = f"{rate:.1%}" if isinstance(rate, (int, float)) else "-"
            failures = row.get("failures", 0)
            fail_cell = (
                f'<td class="fail">{failures}</td>'
                if failures
                else _cell(failures)
            )
            klass = ' class="head-run"' if index == len(trajectory) - 1 else ""
            parts.append(
                f"<tr{klass}>"
                + _cell(row.get("id", ""), left=True)
                + _cell(row.get("kind", ""), left=True)
                + _cell(row.get("label", ""), left=True)
                + _cell(row.get("experiments") or 0)
                + _cell(row.get("workers") or "-")
                + _cell(_fmt_s(row.get("wall_s")))
                + _cell(rate_s)
                + fail_cell
                + f'<td class="l digest">'
                f"{html.escape(str(row.get('result_digest', '')))}</td>"
                + "</tr>"
            )
        parts.append("</table>")

    head = report.get("head") or {}
    phase_times = head.get("phase_times") or {}
    cached = head.get("cached_phase_times") or {}
    if phase_times or cached:
        parts.append("<h2>Latest run phases</h2><table>")
        parts.append(
            '<tr><th class="l">phase</th><th>work s</th>'
            "<th>served from cache s</th></tr>"
        )
        for phase in sorted(set(phase_times) | set(cached)):
            parts.append(
                "<tr>"
                + _cell(phase, left=True)
                + _cell(_fmt_s(phase_times.get(phase, 0.0)))
                + _cell(_fmt_s(cached.get(phase, 0.0)))
                + "</tr>"
            )
        parts.append("</table>")

    tiers = head.get("tiers") or {}
    if tiers:
        parts.append("<h2>Phase-cache tiers (latest run)</h2><table>")
        parts.append(
            '<tr><th class="l">tier</th><th>hits</th><th>misses</th>'
            "<th>hit rate</th></tr>"
        )
        for tier, stats in tiers.items():
            hits = (stats or {}).get("hits", 0)
            misses = (stats or {}).get("misses", 0)
            total = hits + misses
            rate = f"{hits / total:.1%}" if total else "-"
            parts.append(
                "<tr>"
                + _cell(tier, left=True)
                + _cell(hits)
                + _cell(misses)
                + _cell(rate)
                + "</tr>"
            )
        parts.append("</table>")

    latency = head.get("latency") or {}
    if latency:
        parts.append("<h2>Latency percentiles (latest run)</h2><table><tr>")
        for key in sorted(latency):
            parts.append(f"<th>{html.escape(key)}</th>")
        parts.append("</tr><tr>")
        for key in sorted(latency):
            parts.append(_cell(latency[key]))
        parts.append("</tr></table>")

    profile = report.get("profile") or {}
    rows = profile.get("rows") or []
    if rows:
        parts.append("<h2>Profiler</h2><table>")
        parts.append(
            '<tr><th class="l">span</th><th>count</th><th>total ms</th>'
            "<th>self ms</th><th>min ms</th><th>max ms</th></tr>"
        )
        for row in rows:
            parts.append(
                "<tr>"
                + _cell(row.get("name", ""), left=True)
                + _cell(row.get("count", 0))
                + _cell(f"{row.get('total_ms', 0.0):.3f}")
                + _cell(f"{row.get('self_ms', 0.0):.3f}")
                + _cell(f"{row.get('min_ms', 0.0):.3f}")
                + _cell(f"{row.get('max_ms', 0.0):.3f}")
                + "</tr>"
            )
        parts.append("</table>")

    journal = report.get("journal") or {}
    if journal.get("records"):
        parts.append("<h2>Fault journal</h2>")
        parts.append(
            '<p class="summary">'
            f"{html.escape(str(journal.get('path', '')))}: "
            f"{journal['records']} record(s), {journal.get('ok', 0)} ok, "
            f'<span class="{"fail" if journal.get("failed") else "summary"}">'
            f"{journal.get('failed', 0)} failed</span></p>"
        )

    env = head.get("env") or {}
    if env:
        parts.append("<h2>Environment</h2>")
        parts.append(
            '<p class="summary">'
            + html.escape(
                "  ".join(f"{k}={env[k]}" for k in sorted(env))
            )
            + "</p>"
        )
    parts.append("</body></html>")
    return "\n".join(parts)
