"""Regression sentinel: compare two ledger entries (or HEAD vs. BENCH).

``slms obs diff`` is the machine gate the BENCH_sweep.json trajectory
has so far been by hand: given two ``slms-ledger/1`` records it
distinguishes

* **correctness changes** — a differing ``result_digest`` is a *hard
  fail*, no tolerance: the engine's contract is that simulated results
  never drift;
* **comparability problems** — differing ``config_digest`` or
  experiment counts mean the two runs measured different things, which
  is a fail unless explicitly allowed;
* **performance drift** — wall clock and per-phase *work* seconds are
  tolerance-gated: ``new > old × (1 + tol)`` fails, faster is reported
  as an improvement, and phases below a noise floor are ignored (a
  0.01 s parse phase tripling is measurement noise, not a regression);
* **reliability drift** — failures/timeouts/quarantines appearing
  where the baseline had none.

:func:`diff_entries` returns structured :class:`DiffFinding`\\ s;
``fail`` severity is what makes the CLI exit nonzero.
:func:`diff_against_bench` runs the same comparison against the
hand-maintained ``BENCH_sweep.json`` trajectory (digest against the
frozen ``result_digest_sha256``, wall against the latest comparable
history entry), closing the loop until ``slms obs bench-export``
replaces the hand-written appends entirely.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional

DIFF_SCHEMA = "slms-diff/1"

#: Phases whose baseline is below this many seconds are not
#: tolerance-checked (pure measurement noise at that scale).
PHASE_NOISE_FLOOR_S = 0.05

#: Default relative tolerances: wall may double before the sentinel
#: trips (shared CI runners jitter ±25% routinely; a genuine 3× hang
#: or algorithmic regression still fails), phases get the same slack.
DEFAULT_WALL_TOL = 1.0
DEFAULT_PHASE_TOL = 1.0

SEVERITIES = ("fail", "warn", "info")


@dataclass
class DiffFinding:
    """One comparison outcome; ``fail`` drives the nonzero exit."""

    severity: str  # fail | warn | info
    kind: str      # result-digest | config | wall | phase.<name> | faults | …
    message: str

    def to_dict(self) -> Dict[str, str]:
        return {
            "severity": self.severity,
            "kind": self.kind,
            "message": self.message,
        }


def _ratio_finding(
    kind: str,
    what: str,
    old: float,
    new: float,
    tol: float,
) -> Optional[DiffFinding]:
    if old <= 0.0:
        return None
    ratio = new / old
    if new > old * (1.0 + tol):
        return DiffFinding(
            "fail",
            kind,
            f"{what} regressed: {old:.3f}s → {new:.3f}s "
            f"({ratio:.2f}×, tolerance {1.0 + tol:.2f}×)",
        )
    if new < old / (1.0 + tol):
        return DiffFinding(
            "info",
            kind,
            f"{what} improved: {old:.3f}s → {new:.3f}s ({ratio:.2f}×)",
        )
    return None


def diff_entries(
    old: Mapping[str, Any],
    new: Mapping[str, Any],
    *,
    wall_tol: float = DEFAULT_WALL_TOL,
    phase_tol: float = DEFAULT_PHASE_TOL,
    allow_config_drift: bool = False,
) -> List[DiffFinding]:
    """Compare ``new`` against the ``old`` baseline entry."""
    findings: List[DiffFinding] = []

    # -- comparability -------------------------------------------------
    if old.get("kind") != new.get("kind"):
        findings.append(
            DiffFinding(
                "fail",
                "config",
                f"run kinds differ: {old.get('kind')!r} vs "
                f"{new.get('kind')!r} — not comparable",
            )
        )
        return findings
    if old.get("config_digest") != new.get("config_digest"):
        severity = "warn" if allow_config_drift else "fail"
        findings.append(
            DiffFinding(
                severity,
                "config",
                "config digests differ "
                f"({str(old.get('config_digest'))[:12]}… vs "
                f"{str(new.get('config_digest'))[:12]}…); the runs "
                "measured different inputs"
                + ("" if allow_config_drift
                   else " (pass --allow-config-drift to compare anyway)"),
            )
        )
        if not allow_config_drift:
            return findings
    if old.get("experiments") != new.get("experiments"):
        findings.append(
            DiffFinding(
                "fail",
                "experiments",
                f"experiment counts differ: {old.get('experiments')} vs "
                f"{new.get('experiments')}",
            )
        )

    # -- correctness: the hard gate ------------------------------------
    old_digest, new_digest = old.get("result_digest"), new.get("result_digest")
    if old_digest and new_digest:
        if old_digest != new_digest:
            findings.append(
                DiffFinding(
                    "fail",
                    "result-digest",
                    f"result digests differ: {old_digest[:12]}… → "
                    f"{new_digest[:12]}… — simulated results changed "
                    "(hard fail, no tolerance)",
                )
            )
        else:
            findings.append(
                DiffFinding(
                    "info",
                    "result-digest",
                    f"result digest unchanged ({new_digest[:12]}…)",
                )
            )
    elif old_digest or new_digest:
        findings.append(
            DiffFinding(
                "warn",
                "result-digest",
                "only one entry carries a result digest; correctness "
                "not compared",
            )
        )

    # -- performance: tolerance-gated ----------------------------------
    finding = _ratio_finding(
        "wall",
        "wall clock",
        float(old.get("wall_s", 0.0)),
        float(new.get("wall_s", 0.0)),
        wall_tol,
    )
    if finding:
        findings.append(finding)
    old_phases = old.get("phase_times") or {}
    new_phases = new.get("phase_times") or {}
    for phase in sorted(set(old_phases) & set(new_phases)):
        old_s = float(old_phases[phase])
        if old_s < PHASE_NOISE_FLOOR_S:
            continue
        finding = _ratio_finding(
            f"phase.{phase}",
            f"phase {phase!r}",
            old_s,
            float(new_phases[phase]),
            phase_tol,
        )
        if finding:
            findings.append(finding)

    # -- reliability ---------------------------------------------------
    old_faults = old.get("faults") or {}
    new_faults = new.get("faults") or {}
    for name in ("failures", "timeouts", "quarantined"):
        before, after = old_faults.get(name, 0), new_faults.get(name, 0)
        if after > before:
            findings.append(
                DiffFinding(
                    "fail",
                    "faults",
                    f"{name} went {before} → {after}",
                )
            )
    return findings


def diff_against_bench(
    entry: Mapping[str, Any],
    bench: Mapping[str, Any],
    *,
    wall_tol: float = DEFAULT_WALL_TOL,
    phase_tol: float = DEFAULT_PHASE_TOL,
) -> List[DiffFinding]:
    """Compare a sweep ledger entry against ``BENCH_sweep.json``.

    The frozen ``result_digest_sha256`` is the hard gate; wall/phase
    drift is checked against the most recent history entry with the
    same experiment count (earlier engines are trajectory context, not
    a baseline).  An entry whose experiment count matches nothing in
    the history gets an ``info`` — a 2-workload smoke sweep is not
    comparable to the 235-experiment corpus record.
    """
    findings: List[DiffFinding] = []
    frozen = bench.get("result_digest_sha256")
    history = [h for h in (bench.get("history") or []) if isinstance(h, dict)]
    comparable = [
        h for h in history
        if h.get("experiments") == entry.get("experiments")
    ]
    if not comparable:
        findings.append(
            DiffFinding(
                "info",
                "config",
                f"no BENCH history entry runs {entry.get('experiments')} "
                "experiment(s); digest and wall not compared",
            )
        )
        return findings
    if frozen and entry.get("result_digest"):
        if entry["result_digest"] != frozen:
            findings.append(
                DiffFinding(
                    "fail",
                    "result-digest",
                    f"result digest {str(entry['result_digest'])[:12]}… does "
                    f"not match the frozen BENCH digest {frozen[:12]}… "
                    "(hard fail)",
                )
            )
        else:
            findings.append(
                DiffFinding(
                    "info",
                    "result-digest",
                    f"result digest matches the frozen BENCH digest "
                    f"({frozen[:12]}…)",
                )
            )
    baseline = comparable[-1]
    # Cold baselines compare against cold runs; a warm (all-hits) run
    # against a cold baseline would only ever "improve".
    synthetic = {
        "kind": entry.get("kind"),
        "config_digest": entry.get("config_digest"),
        "experiments": baseline.get("experiments"),
        "wall_s": baseline.get("wall_s", 0.0),
        "phase_times": baseline.get("phase_totals_s") or {},
        "faults": {},
    }
    findings.extend(
        diff_entries(
            synthetic,
            {**entry, "config_digest": entry.get("config_digest")},
            wall_tol=wall_tol,
            phase_tol=phase_tol,
            allow_config_drift=True,
        )
    )
    # The synthetic baseline has no digest of its own; drop the
    # resulting "only one entry carries a digest" warning — the frozen
    # digest check above is the real gate.
    return [
        f for f in findings
        if not (f.severity == "warn" and f.kind == "result-digest")
    ]


def has_failures(findings: List[DiffFinding]) -> bool:
    return any(f.severity == "fail" for f in findings)


def render_diff(
    findings: List[DiffFinding],
    old_label: str = "old",
    new_label: str = "new",
) -> str:
    lines = [f"comparing {old_label} → {new_label}"]
    if not findings:
        lines.append("  ok: no differences beyond tolerance")
    for finding in findings:
        lines.append(
            f"  [{finding.severity.upper():<4}] {finding.kind}: "
            f"{finding.message}"
        )
    verdict = "REGRESSION" if has_failures(findings) else "PASS"
    lines.append(f"verdict: {verdict}")
    return "\n".join(lines)


def diff_payload(
    findings: List[DiffFinding],
    old: Mapping[str, Any],
    new: Mapping[str, Any],
) -> Dict[str, Any]:
    """Machine-readable diff (``slms-diff/1``)."""
    return {
        "schema": DIFF_SCHEMA,
        "old": str(old.get("id", ""))[:16],
        "new": str(new.get("id", ""))[:16],
        "regression": has_failures(findings),
        "findings": [f.to_dict() for f in findings],
    }
