"""Trace/metrics exporters and the trace schema validator.

Three consumers, three formats:

* **JSON trace** (:func:`write_json_trace`) — the ``slms-trace/1``
  schema exactly as :meth:`repro.obs.tracer.Tracer.to_dict` produces
  it; the stable machine-readable form tests and CI validate.
* **Chrome trace_event** (:func:`to_chrome_trace`,
  :func:`write_chrome_trace`) — loadable in ``chrome://tracing`` /
  Perfetto: spans become ``"X"`` complete events (one row per track,
  i.e. per absorbed worker batch), instant events become ``"i"``.
* **Decision log** (:func:`render_trace`) — the human-readable view
  ``slms trace`` prints: spans indented by nesting with wall-clock
  durations, decision events with their key/value payloads.

:func:`validate_trace` is the schema check (hand-rolled — no jsonschema
dependency): it returns a list of problems, empty meaning valid, and is
what the CI trace-smoke job runs against a fresh export.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Mapping

from repro.obs.tracer import TRACE_SCHEMA

_SCALAR = (str, int, float, bool, type(None))


def write_json_trace(trace: Mapping[str, Any], path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(trace, handle, indent=1)
        handle.write("\n")


def to_chrome_trace(trace: Mapping[str, Any]) -> Dict[str, Any]:
    """Convert an ``slms-trace/1`` payload to Chrome trace_event JSON."""
    out: List[Dict[str, Any]] = []
    for span in trace.get("spans", []):
        start_us = span["start_ns"] / 1000.0
        dur_us = max(span["end_ns"] - span["start_ns"], 0) / 1000.0
        out.append(
            {
                "ph": "X",
                "name": span["name"],
                "cat": span["name"].split(".", 1)[0],
                "ts": start_us,
                "dur": dur_us,
                "pid": 1,
                "tid": span.get("track", 0),
                "args": dict(span.get("attrs") or {}),
            }
        )
    for event in trace.get("events", []):
        out.append(
            {
                "ph": "i",
                "name": event["name"],
                "cat": event["name"].split(".", 1)[0],
                "ts": event["ts_ns"] / 1000.0,
                "pid": 1,
                "tid": event.get("track", 0),
                "s": "t",
                "args": dict(event.get("attrs") or {}),
            }
        )
    return {"traceEvents": out, "displayTimeUnit": "ms"}


def write_chrome_trace(trace: Mapping[str, Any], path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(to_chrome_trace(trace), handle, indent=1)
        handle.write("\n")


# ---------------------------------------------------------------------------
# Schema validation
# ---------------------------------------------------------------------------


def _check_attrs(attrs: Any, where: str, problems: List[str]) -> None:
    if not isinstance(attrs, dict):
        problems.append(f"{where}: attrs is not an object")
        return
    for key, value in attrs.items():
        if not isinstance(key, str):
            problems.append(f"{where}: non-string attr key {key!r}")
        ok = isinstance(value, _SCALAR) or (
            isinstance(value, list)
            and all(isinstance(item, _SCALAR) for item in value)
        )
        if not ok:
            problems.append(
                f"{where}: attr {key!r} is not a scalar or scalar list"
            )


def validate_trace(trace: Mapping[str, Any]) -> List[str]:
    """Validate an ``slms-trace/1`` payload; returns problems (empty=ok)."""
    problems: List[str] = []
    if trace.get("schema") != TRACE_SCHEMA:
        problems.append(
            f"schema is {trace.get('schema')!r}, expected {TRACE_SCHEMA!r}"
        )
    spans = trace.get("spans")
    events = trace.get("events")
    if not isinstance(spans, list) or not isinstance(events, list):
        problems.append("spans/events must be lists")
        return problems
    span_ids = set()
    for pos, span in enumerate(spans):
        where = f"span[{pos}]"
        if not isinstance(span, dict):
            problems.append(f"{where}: not an object")
            continue
        if span.get("id") != pos:
            problems.append(f"{where}: id {span.get('id')!r} != index {pos}")
        if not isinstance(span.get("name"), str) or not span.get("name"):
            problems.append(f"{where}: missing name")
        parent = span.get("parent")
        if not isinstance(parent, int) or (
            parent != -1 and parent not in span_ids
        ):
            problems.append(f"{where}: bad parent {parent!r}")
        for key in ("start_ns", "end_ns"):
            if not isinstance(span.get(key), int) or span[key] < 0:
                problems.append(f"{where}: bad {key} {span.get(key)!r}")
        if (
            isinstance(span.get("start_ns"), int)
            and isinstance(span.get("end_ns"), int)
            and span["end_ns"] < span["start_ns"]
        ):
            problems.append(f"{where}: end_ns before start_ns")
        if not isinstance(span.get("track"), int) or span["track"] < 0:
            problems.append(f"{where}: bad track {span.get('track')!r}")
        _check_attrs(span.get("attrs"), where, problems)
        span_ids.add(pos)
    for pos, event in enumerate(events):
        where = f"event[{pos}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        if not isinstance(event.get("name"), str) or not event.get("name"):
            problems.append(f"{where}: missing name")
        if not isinstance(event.get("ts_ns"), int) or event["ts_ns"] < 0:
            problems.append(f"{where}: bad ts_ns {event.get('ts_ns')!r}")
        span = event.get("span")
        if not isinstance(span, int) or (span != -1 and span not in span_ids):
            problems.append(f"{where}: bad span reference {span!r}")
        if not isinstance(event.get("track"), int) or event["track"] < 0:
            problems.append(f"{where}: bad track {event.get('track')!r}")
        _check_attrs(event.get("attrs"), where, problems)
    return problems


# ---------------------------------------------------------------------------
# Human-readable views
# ---------------------------------------------------------------------------


def _fmt_attr(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    if isinstance(value, list):
        return "[" + ",".join(_fmt_attr(item) for item in value) + "]"
    return str(value)


def _fmt_attrs(attrs: Mapping[str, Any]) -> str:
    return " ".join(f"{key}={_fmt_attr(val)}" for key, val in attrs.items())


def render_trace(trace: Mapping[str, Any], events_only: bool = False) -> str:
    """The decision log: entries in time order, indented by span depth."""
    spans = trace.get("spans", [])
    events = trace.get("events", [])
    depth: Dict[int, int] = {-1: -1}
    for span in spans:
        depth[span["id"]] = depth.get(span["parent"], -1) + 1

    entries: List[tuple] = []
    for order, span in enumerate(spans):
        if events_only:
            continue
        dur_ms = max(span["end_ns"] - span["start_ns"], 0) / 1e6
        text = span["name"]
        if span.get("attrs"):
            text += "  " + _fmt_attrs(span["attrs"])
        entries.append(
            (span["start_ns"], 0, order,
             depth[span["id"]], f"{text}  [{dur_ms:.2f} ms]")
        )
    for order, event in enumerate(events):
        text = "• " + event["name"]
        if event.get("attrs"):
            text += "  " + _fmt_attrs(event["attrs"])
        entries.append(
            (event["ts_ns"], 1, order, depth.get(event["span"], -1) + 1, text)
        )
    entries.sort(key=lambda item: (item[0], item[1], item[2]))
    return "\n".join("  " * max(d, 0) + text for _, _, _, d, text in entries)


def result_payload(result: Any) -> Dict[str, Any]:
    """Symmetric timing payload for one experiment result.

    Cache-hit experiments report ``phase_times={"cache": lookup_s}``
    while the work the entry originally did lives in schema-2's
    ``cached_phase_times`` — exports that include one without the other
    read as "the run did no work" or "the cache served nothing".  This
    helper always emits **both** keys (empty dicts when absent) so every
    consumer — ``slms trace --json``, Chrome exports, the ledger — sees
    the same shape for hits and misses alike.
    """
    if isinstance(result, Mapping):
        times = result.get("phase_times") or {}
        cached = result.get("cached_phase_times") or {}
    else:
        times = getattr(result, "phase_times", None) or {}
        cached = getattr(result, "cached_phase_times", None) or {}
    return {
        "phase_times": {k: float(v) for k, v in times.items()},
        "cached_phase_times": {k: float(v) for k, v in cached.items()},
    }


def format_metrics(metrics: Mapping[str, Any]) -> str:
    """Flat text dump of ``MetricsRegistry.to_dict()``."""
    lines: List[str] = []
    for name, value in (metrics.get("counters") or {}).items():
        lines.append(f"counter   {name:<32} {_fmt_attr(value)}")
    for name, value in (metrics.get("gauges") or {}).items():
        lines.append(f"gauge     {name:<32} {_fmt_attr(value)}")
    for name, hist in (metrics.get("histograms") or {}).items():
        lines.append(
            f"histogram {name:<32} count={hist['count']} "
            f"sum={_fmt_attr(hist['sum'])} min={_fmt_attr(hist['min'])} "
            f"max={_fmt_attr(hist['max'])}"
        )
    return "\n".join(lines)
