"""Counters, gauges and histograms for the pipeline and the harness.

A :class:`MetricsRegistry` is a named bag of three instrument kinds:

* :class:`Counter` — monotonically increasing totals (simulated cycles,
  cache hits, experiments run);
* :class:`Gauge` — last-written values (worker count, corpus size);
* :class:`Histogram` — distribution summaries (per-phase wall seconds,
  per-experiment simulated cycles) with fixed log-spaced buckets plus
  exact count/sum/min/max.

Registries **merge deterministically and associatively** so per-worker
registries collected from a ``ProcessPoolExecutor`` can be folded in
spec order with a result independent of how the fold is grouped:
counters add, histograms add their buckets and combine min/max, and
gauges take the value from the *later* operand of each merge (merge
order is spec order, so "later" is well defined).

Like the tracer, metrics have an ambient instance
(:func:`get_metrics`); unlike the tracer there is no disabled variant —
instruments are only touched at coarse points (once per simulated run,
once per engine call), never inside interpreter loops, so the always-on
cost is a handful of dict operations per experiment.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Mapping, Optional, Tuple

METRICS_SCHEMA = "slms-metrics/1"

# Log-spaced upper bounds covering microseconds→minutes for wall-clock
# histograms and small→huge totals for cycle counts.  ``le`` semantics
# (cumulative at export would be redundant; stored counts are per-bin,
# the last bin is the overflow).
DEFAULT_BUCKETS: Tuple[float, ...] = tuple(
    10.0 ** e for e in range(-6, 7)
)


@dataclass
class Counter:
    value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount


@dataclass
class Gauge:
    value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value


@dataclass
class Histogram:
    buckets: Tuple[float, ...] = DEFAULT_BUCKETS
    counts: List[int] = field(default_factory=list)  # len(buckets) + 1
    count: int = 0
    sum: float = 0.0
    min: Optional[float] = None
    max: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.counts:
            self.counts = [0] * (len(self.buckets) + 1)

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        for pos, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[pos] += 1
                return
        self.counts[-1] += 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0


class MetricsRegistry:
    """Create-on-first-use registry of named instruments."""

    def __init__(self) -> None:
        self.counters: Dict[str, Counter] = {}
        self.gauges: Dict[str, Gauge] = {}
        self.histograms: Dict[str, Histogram] = {}

    # -- instrument access ---------------------------------------------
    def counter(self, name: str) -> Counter:
        instrument = self.counters.get(name)
        if instrument is None:
            instrument = self.counters[name] = Counter()
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self.gauges.get(name)
        if instrument is None:
            instrument = self.gauges[name] = Gauge()
        return instrument

    def histogram(
        self, name: str, buckets: Optional[Tuple[float, ...]] = None
    ) -> Histogram:
        instrument = self.histograms.get(name)
        if instrument is None:
            instrument = self.histograms[name] = Histogram(
                buckets=buckets or DEFAULT_BUCKETS
            )
        return instrument

    # -- merge ---------------------------------------------------------
    def merge(self, other: "MetricsRegistry | Mapping[str, Any]") -> None:
        """Fold ``other`` (a registry or its ``to_dict`` form) into self."""
        data = other.to_dict() if isinstance(other, MetricsRegistry) else other
        for name, value in (data.get("counters") or {}).items():
            self.counter(name).inc(float(value))
        for name, value in (data.get("gauges") or {}).items():
            self.gauge(name).set(float(value))
        for name, hist in (data.get("histograms") or {}).items():
            buckets = tuple(hist["buckets"])
            mine = self.histogram(name, buckets=buckets)
            if mine.buckets != buckets:
                raise ValueError(
                    f"histogram {name!r}: incompatible bucket boundaries"
                )
            mine.count += int(hist["count"])
            mine.sum += float(hist["sum"])
            for pos, n in enumerate(hist["counts"]):
                mine.counts[pos] += int(n)
            for bound_name, pick in (("min", min), ("max", max)):
                theirs = hist.get(bound_name)
                if theirs is None:
                    continue
                ours = getattr(mine, bound_name)
                setattr(
                    mine,
                    bound_name,
                    theirs if ours is None else pick(ours, theirs),
                )

    # -- export --------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": METRICS_SCHEMA,
            "counters": {
                name: c.value for name, c in sorted(self.counters.items())
            },
            "gauges": {
                name: g.value for name, g in sorted(self.gauges.items())
            },
            "histograms": {
                name: {
                    "buckets": list(h.buckets),
                    "counts": list(h.counts),
                    "count": h.count,
                    "sum": h.sum,
                    "min": h.min,
                    "max": h.max,
                }
                for name, h in sorted(self.histograms.items())
            },
        }


def merged(parts: List["MetricsRegistry | Mapping[str, Any]"]) -> MetricsRegistry:
    """Fold ``parts`` left-to-right into a fresh registry."""
    registry = MetricsRegistry()
    for part in parts:
        registry.merge(part)
    return registry


# ---------------------------------------------------------------------------
# Ambient registry
# ---------------------------------------------------------------------------

_registry = MetricsRegistry()


def get_metrics() -> MetricsRegistry:
    """The process-wide ambient registry."""
    return _registry


def set_metrics(registry: MetricsRegistry) -> MetricsRegistry:
    """Install ``registry`` as ambient; returns the previous one."""
    global _registry
    previous = _registry
    _registry = registry
    return previous


@contextmanager
def metrics_scope(
    registry: Optional[MetricsRegistry] = None,
) -> Iterator[MetricsRegistry]:
    """Collect metrics into a (fresh) registry for a scope."""
    active = registry if registry is not None else MetricsRegistry()
    previous = set_metrics(active)
    try:
        yield active
    finally:
        set_metrics(previous)
