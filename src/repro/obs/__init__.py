"""Observability: tracing, metrics, ledger and exporters for SLMS.

Zero-dependency.  The ambient tracer defaults to a no-op singleton so
an untraced pipeline pays one attribute check per instrumentation site;
enable collection for a scope with::

    from repro.obs import tracing

    with tracing() as tr:
        run_experiment(...)
    print(render_trace(tr.to_dict()))

Beyond the per-process tracer/metrics pair, the package carries the
durable half of the stack: the append-only run ledger
(:mod:`repro.obs.ledger`), the deterministic profiler
(:mod:`repro.obs.profile`), the regression sentinel
(:mod:`repro.obs.diff`) and the ``slms report`` dashboard renderers
(:mod:`repro.obs.report`).  See ``docs/OBSERVABILITY.md`` for the
schemas and a regression-triage walkthrough.
"""

from repro.obs.diff import (
    DiffFinding,
    diff_against_bench,
    diff_entries,
    diff_payload,
    has_failures,
    render_diff,
)
from repro.obs.export import (
    format_metrics,
    render_trace,
    result_payload,
    to_chrome_trace,
    validate_trace,
    write_chrome_trace,
    write_json_trace,
)
from repro.obs.ledger import (
    LEDGER_SCHEMA,
    RunLedger,
    default_ledger_dir,
    digest_of,
    entry_from_stats,
    environment_fingerprint,
    ledger_enabled,
    make_entry,
    render_entries,
)
from repro.obs.metrics import (
    METRICS_SCHEMA,
    MetricsRegistry,
    get_metrics,
    merged,
    metrics_scope,
    set_metrics,
)
from repro.obs.profile import (
    PROFILE_SCHEMA,
    Profile,
    ProfileRow,
    fold_trace,
    latency_percentiles,
    profile_results,
    render_profile,
)
from repro.obs.report import (
    REPORT_SCHEMA,
    build_report,
    render_report_html,
    render_report_text,
    summarize_journal,
)
from repro.obs.tracer import (
    NULL_TRACER,
    TRACE_SCHEMA,
    NullTracer,
    Tracer,
    get_tracer,
    set_tracer,
    tracing,
)

__all__ = [
    "LEDGER_SCHEMA",
    "METRICS_SCHEMA",
    "NULL_TRACER",
    "PROFILE_SCHEMA",
    "REPORT_SCHEMA",
    "TRACE_SCHEMA",
    "DiffFinding",
    "MetricsRegistry",
    "NullTracer",
    "Profile",
    "ProfileRow",
    "RunLedger",
    "Tracer",
    "build_report",
    "default_ledger_dir",
    "diff_against_bench",
    "diff_entries",
    "diff_payload",
    "digest_of",
    "entry_from_stats",
    "environment_fingerprint",
    "fold_trace",
    "format_metrics",
    "get_metrics",
    "get_tracer",
    "has_failures",
    "latency_percentiles",
    "ledger_enabled",
    "make_entry",
    "merged",
    "metrics_scope",
    "profile_results",
    "render_diff",
    "render_entries",
    "render_profile",
    "render_report_html",
    "render_report_text",
    "render_trace",
    "result_payload",
    "set_metrics",
    "set_tracer",
    "summarize_journal",
    "to_chrome_trace",
    "tracing",
    "validate_trace",
    "write_chrome_trace",
    "write_json_trace",
]
