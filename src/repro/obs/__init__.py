"""Observability: tracing, metrics and exporters for the SLMS pipeline.

Zero-dependency.  The ambient tracer defaults to a no-op singleton so
an untraced pipeline pays one attribute check per instrumentation site;
enable collection for a scope with::

    from repro.obs import tracing

    with tracing() as tr:
        run_experiment(...)
    print(render_trace(tr.to_dict()))

See ``docs/OBSERVABILITY.md`` for the span/event schema, the exporter
formats, and how to read a decline trace.
"""

from repro.obs.export import (
    format_metrics,
    render_trace,
    to_chrome_trace,
    validate_trace,
    write_chrome_trace,
    write_json_trace,
)
from repro.obs.metrics import (
    METRICS_SCHEMA,
    MetricsRegistry,
    get_metrics,
    merged,
    metrics_scope,
    set_metrics,
)
from repro.obs.tracer import (
    NULL_TRACER,
    TRACE_SCHEMA,
    NullTracer,
    Tracer,
    get_tracer,
    set_tracer,
    tracing,
)

__all__ = [
    "METRICS_SCHEMA",
    "NULL_TRACER",
    "TRACE_SCHEMA",
    "MetricsRegistry",
    "NullTracer",
    "Tracer",
    "format_metrics",
    "get_metrics",
    "get_tracer",
    "merged",
    "metrics_scope",
    "render_trace",
    "set_metrics",
    "set_tracer",
    "to_chrome_trace",
    "tracing",
    "validate_trace",
    "write_chrome_trace",
    "write_json_trace",
]
