"""The run ledger: a durable, append-only history of engine runs.

The tracer and metrics registry (PR 3) and the cache tiers (PR 7) emit
rich telemetry — spans, counters, per-tier hit rates, fault journal
records — but all of it dies with the process.  The ledger is the
durable complement: every CLI engine run (``sweep`` / ``bench`` /
``fuzz`` / ``trace``) appends **one** self-contained JSON line
(schema ``slms-ledger/1``) capturing

* what ran — ``kind``, ``label``, a ``config`` summary and its
  canonical-JSON ``config_digest``;
* what came out — ``result_digest`` (for sweeps: the SHA-256 of
  ``SweepResult.to_json()``, directly comparable with the frozen
  digest pinned in ``BENCH_sweep.json``);
* what it cost — wall clock, per-phase *work* seconds
  (``phase_times``) vs. seconds *served from the phase cache*
  (``cached_phase_times``), full-cache traffic, per-tier hit rates,
  per-experiment latency percentiles;
* what went wrong — fault-layer counts (failures / retries /
  quarantined / timeouts);
* where it ran — an environment fingerprint (python, platform, CPU
  count, engine version).

Entries are *content addressed*: ``id`` is the SHA-256 of the
canonical JSON of everything else in the record, so a ledger line can
be verified, deduplicated and referenced by unambiguous prefix.  The
store is one JSONL file under ``SLMS_LEDGER_DIR`` (default
``~/.cache/slms/ledger``), appended with line-grained flushes and read
with the same torn-tail tolerance as the fault journal
(:class:`repro.harness.faults.RunJournal`): a half-written final line
from a killed process is skipped, never fatal.  Set ``SLMS_LEDGER=0``
to disable recording entirely.

The ledger is observability, never correctness: every I/O failure
degrades to a no-op, and recording cannot change results (the frozen
sweep digest is unchanged with the ledger enabled — that is a CI
gate).  Consumers: ``slms report`` (dashboard), ``slms obs diff``
(regression sentinel), ``slms obs bench-export`` (BENCH-schema
records), and the upcoming ``slms serve`` (per-request history).
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import sys
import time
from pathlib import Path
from typing import Any, Dict, Iterable, List, Mapping, Optional

LEDGER_SCHEMA = "slms-ledger/1"

#: The run kinds a ledger entry may carry.
LEDGER_KINDS = ("sweep", "bench", "fuzz", "trace", "serve")


def default_ledger_dir() -> Path:
    env = os.environ.get("SLMS_LEDGER_DIR")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "slms" / "ledger"


def ledger_enabled() -> bool:
    """Recording is on unless ``SLMS_LEDGER`` says otherwise."""
    return os.environ.get("SLMS_LEDGER", "1").lower() not in (
        "0", "false", "no", "off",
    )


def digest_of(payload: Any) -> str:
    """SHA-256 of the canonical JSON form of ``payload``."""
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def environment_fingerprint() -> Dict[str, Any]:
    """Where a run happened, as far as perf comparability goes."""
    # Local import: obs stays import-light and cycle-free (expcache
    # pulls in the backend/core layers).
    from repro.harness.expcache import ENGINE_VERSION

    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": sys.platform,
        "machine": platform.machine(),
        "cpus": os.cpu_count() or 1,
        "engine_version": ENGINE_VERSION,
    }


def make_entry(
    kind: str,
    label: str,
    *,
    config: Optional[Mapping[str, Any]] = None,
    result_digest: Optional[str] = None,
    experiments: int = 0,
    workers: int = 1,
    wall_s: float = 0.0,
    phase_times: Optional[Mapping[str, float]] = None,
    cached_phase_times: Optional[Mapping[str, float]] = None,
    cache: Optional[Mapping[str, Any]] = None,
    tiers: Optional[Mapping[str, Mapping[str, Any]]] = None,
    faults: Optional[Mapping[str, int]] = None,
    latency: Optional[Mapping[str, float]] = None,
    extra: Optional[Mapping[str, Any]] = None,
) -> Dict[str, Any]:
    """Assemble one ledger record (without its content-addressed id).

    Every argument is plain JSON-able data — the CLI composes entries
    from :class:`~repro.harness.engine.EngineStats` / sweep / fuzz
    reports so this module never imports the harness.  ``config`` is a
    small summary of the run's inputs; its canonical digest
    (``config_digest``) is what the regression sentinel uses to decide
    two entries are comparable.
    """
    if kind not in LEDGER_KINDS:
        raise ValueError(
            f"unknown ledger kind {kind!r}; expected one of {LEDGER_KINDS}"
        )
    config = dict(config or {})
    entry: Dict[str, Any] = {
        "schema": LEDGER_SCHEMA,
        "ts": round(time.time(), 3),
        "kind": kind,
        "label": label,
        "config": config,
        "config_digest": digest_of(config),
        "result_digest": result_digest,
        "experiments": int(experiments),
        "workers": int(workers),
        "wall_s": round(float(wall_s), 6),
        "phase_times": {
            k: round(float(v), 6) for k, v in (phase_times or {}).items()
        },
        "cached_phase_times": {
            k: round(float(v), 6)
            for k, v in (cached_phase_times or {}).items()
        },
        "cache": dict(cache or {}),
        "tiers": {t: dict(rec) for t, rec in (tiers or {}).items()},
        "faults": dict(faults or {}),
        "latency": {
            k: round(float(v), 6) for k, v in (latency or {}).items()
        },
        "env": environment_fingerprint(),
    }
    if extra:
        entry["extra"] = dict(extra)
    return entry


def entry_from_stats(
    kind: str,
    label: str,
    stats: Mapping[str, Any],
    *,
    config: Optional[Mapping[str, Any]] = None,
    result_digest: Optional[str] = None,
    latency: Optional[Mapping[str, float]] = None,
    cached_phase_times: Optional[Mapping[str, float]] = None,
) -> Dict[str, Any]:
    """Ledger record from an ``EngineStats.to_dict()`` payload."""
    tiers = {
        tier: {
            "hits": rec.get("hits", 0),
            "misses": rec.get("misses", 0),
            "hit_rate": rec.get("hit_rate", 0.0),
        }
        for tier, rec in (stats.get("phase_cache") or {}).items()
    }
    faults = {
        name: int(stats.get(name, 0))
        for name in ("failures", "retries", "quarantined", "timeouts",
                     "journal_hits")
        if stats.get(name)
    }
    return make_entry(
        kind,
        label,
        config=config,
        result_digest=result_digest,
        experiments=int(stats.get("experiments", 0)),
        workers=int(stats.get("workers", 1)),
        wall_s=float(stats.get("wall_s", 0.0)),
        phase_times=stats.get("phase_totals_s") or {},
        cached_phase_times=(
            cached_phase_times
            if cached_phase_times is not None
            else stats.get("cached_phase_totals_s") or {}
        ),
        cache={
            "hits": int(stats.get("cache_hits", 0)),
            "misses": int(stats.get("cache_misses", 0)),
            "hit_rate": float(stats.get("cache_hit_rate", 0.0)),
            "evictions": int(stats.get("cache_evictions", 0)),
        },
        tiers=tiers,
        faults=faults,
        latency=latency,
        extra={"worker_utilization": stats.get("worker_utilization", 0.0)},
    )


class RunLedger:
    """Append-only JSONL store of ledger entries.

    One file (``ledger.jsonl``) per directory; writes are appended and
    flushed per line so a SIGKILL loses at most the in-flight entry,
    and the reader skips undecodable lines (torn tails) exactly like
    :class:`~repro.harness.faults.RunJournal`.  All I/O errors degrade
    to no-ops/empty reads — the ledger must never take a run down.
    """

    FILENAME = "ledger.jsonl"

    def __init__(self, directory: Optional[str | Path] = None):
        self.dir = Path(directory) if directory else default_ledger_dir()
        self.path = self.dir / self.FILENAME

    # -- writing -------------------------------------------------------
    def append(self, entry: Mapping[str, Any]) -> Optional[Dict[str, Any]]:
        """Seal ``entry`` with its content-addressed id and persist it.

        Returns the sealed record, or ``None`` when the write failed
        (read-only filesystem and the like — silently tolerated).
        """
        record = dict(entry)
        record.pop("id", None)
        record["id"] = digest_of(record)
        line = json.dumps(record, sort_keys=True, separators=(",", ":"))
        try:
            self.dir.mkdir(parents=True, exist_ok=True)
            with open(self.path, "a", encoding="utf-8") as handle:
                handle.write(line + "\n")
                handle.flush()
        except OSError:
            return None
        return record

    # -- reading -------------------------------------------------------
    def entries(
        self, kind: Optional[str] = None, limit: Optional[int] = None
    ) -> List[Dict[str, Any]]:
        """All decodable records, oldest first (torn tails skipped)."""
        records: List[Dict[str, Any]] = []
        try:
            with open(self.path, "r", encoding="utf-8") as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        record = json.loads(line)
                    except ValueError:
                        continue  # torn tail from a killed run
                    if not isinstance(record, dict):
                        continue
                    if record.get("schema") != LEDGER_SCHEMA:
                        continue
                    if kind is not None and record.get("kind") != kind:
                        continue
                    records.append(record)
        except OSError:
            return []
        if limit is not None and limit >= 0:
            records = records[-limit:]
        return records

    def latest(self, kind: Optional[str] = None) -> Optional[Dict[str, Any]]:
        records = self.entries(kind=kind)
        return records[-1] if records else None

    def resolve(self, ref: str, kind: Optional[str] = None) -> Dict[str, Any]:
        """Find one entry by reference.

        ``HEAD`` is the newest entry, ``HEAD~N`` the N-th before it
        (git-style), anything else an unambiguous ``id`` prefix.
        Raises :class:`ValueError` with the valid options when the
        reference is unknown or ambiguous.
        """
        records = self.entries(kind=kind)
        if not records:
            raise ValueError(
                f"ledger at {self.path} has no entries"
                + (f" of kind {kind!r}" if kind else "")
            )
        ref = ref.strip()
        if ref.upper() == "HEAD":
            return records[-1]
        if ref.upper().startswith("HEAD~"):
            try:
                back = int(ref[5:])
            except ValueError:
                raise ValueError(f"bad ledger reference {ref!r}") from None
            if back < 0 or back >= len(records):
                raise ValueError(
                    f"{ref} is out of range: ledger has "
                    f"{len(records)} entr(ies)"
                )
            return records[-1 - back]
        matches = [
            record for record in records
            if str(record.get("id", "")).startswith(ref)
        ]
        if not matches:
            raise ValueError(
                f"no ledger entry matches {ref!r}; "
                "use HEAD, HEAD~N or an id prefix (see 'slms obs ledger')"
            )
        distinct = {record["id"] for record in matches}
        if len(distinct) > 1:
            raise ValueError(
                f"ambiguous ledger reference {ref!r} "
                f"({len(distinct)} matches); use a longer prefix"
            )
        return matches[-1]

    def verify(self) -> List[str]:
        """Re-derive every entry's content address; returns problems."""
        problems: List[str] = []
        for pos, record in enumerate(self.entries()):
            body = {k: v for k, v in record.items() if k != "id"}
            expect = digest_of(body)
            if record.get("id") != expect:
                problems.append(
                    f"entry[{pos}] id {str(record.get('id'))[:12]}… does not "
                    f"match its content (expected {expect[:12]}…)"
                )
        return problems


def render_entries(entries: Iterable[Mapping[str, Any]]) -> str:
    """One-line-per-entry listing for ``slms obs ledger``."""
    lines: List[str] = []
    for record in entries:
        ts = time.strftime(
            "%Y-%m-%d %H:%M:%S", time.localtime(record.get("ts", 0))
        )
        digest = record.get("result_digest") or ""
        faults = record.get("faults") or {}
        flag = " FAULTS" if faults.get("failures") else ""
        lines.append(
            f"{str(record.get('id', ''))[:12]}  {ts}  "
            f"{record.get('kind', '?'):<5} "
            f"{record.get('experiments', 0):>4} exp "
            f"{record.get('wall_s', 0.0):>8.3f}s  "
            f"{digest[:12]}{'…' if digest else '':<1}  "
            f"{record.get('label', '')}{flag}"
        )
    return "\n".join(lines)
