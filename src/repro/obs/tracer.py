"""Nested-span tracing for the SLMS pipeline.

The pipeline makes many invisible decisions — §4 filter verdicts, the
per-candidate-II difMin search, §3.2 decomposition rounds, the MVE vs.
scalar-expansion choice — and the evaluation engine adds its own (cache
hit or recompute, worker fan-out).  A :class:`Tracer` records those as a
flat, deterministic list of :class:`SpanRecord`/:class:`EventRecord`
entries that exporters (:mod:`repro.obs.export`) turn into JSON, Chrome
``trace_event`` files, or a human-readable decision log.

Design constraints, in priority order:

1. **Zero cost when disabled.**  The ambient tracer defaults to the
   :data:`NULL_TRACER` singleton whose ``enabled`` attribute is
   ``False``; hot paths guard event emission with one attribute check
   (``if tr.enabled:``) and span entry/exit reuses one preallocated
   no-op context manager — no per-call allocation anywhere.
2. **Determinism.**  Span ids are assigned sequentially, events record
   their enclosing span by id, and worker traces are absorbed in spec
   order, so the merged event *sequence* (names, attributes, span
   references — everything except timestamps) is identical regardless
   of worker count.
3. **Picklability of the wire form.**  Workers return
   ``Tracer.to_dict()`` payloads (plain JSON types) which the parent
   re-absorbs; the Tracer object itself never crosses a process
   boundary.

Timestamps are ``time.perf_counter_ns`` relative to tracer creation;
absorbed sub-traces are shifted to the absorb instant so a merged trace
stays monotone enough for chrome://tracing, and each absorbed batch
gets its own ``track`` (rendered as a Chrome thread row).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Mapping, Optional

TRACE_SCHEMA = "slms-trace/1"


@dataclass
class SpanRecord:
    """One completed (or still-open) span."""

    id: int
    parent: int  # parent span id; -1 = top level
    name: str
    start_ns: int
    end_ns: int = 0
    track: int = 0
    attrs: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "id": self.id,
            "parent": self.parent,
            "name": self.name,
            "start_ns": self.start_ns,
            "end_ns": self.end_ns,
            "track": self.track,
            "attrs": dict(self.attrs),
        }


@dataclass
class EventRecord:
    """One instant event, attributed to its enclosing span."""

    name: str
    ts_ns: int
    span: int  # enclosing span id; -1 = top level
    track: int = 0
    attrs: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "ts_ns": self.ts_ns,
            "span": self.span,
            "track": self.track,
            "attrs": dict(self.attrs),
        }


class _NullSpan:
    """Shared no-op context manager returned by the null tracer."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False

    def set(self, **attrs: Any) -> "_NullSpan":
        return self


_NULL_SPAN = _NullSpan()


class NullTracer:
    """Disabled tracer: every operation is a no-op.

    A process-wide singleton (:data:`NULL_TRACER`) so the disabled path
    allocates nothing; ``enabled`` is a plain class attribute, making
    the hot-path guard a single attribute load.
    """

    enabled = False

    def span(self, name: str, **attrs: Any) -> _NullSpan:
        return _NULL_SPAN

    def event(self, name: str, **attrs: Any) -> None:
        return None

    def absorb(self, data: Mapping[str, Any]) -> None:
        return None

    def to_dict(self) -> Dict[str, Any]:
        return {"schema": TRACE_SCHEMA, "spans": [], "events": []}


NULL_TRACER = NullTracer()


class _SpanContext:
    """Context manager handed out by :meth:`Tracer.span`."""

    __slots__ = ("_tracer", "record")

    def __init__(self, tracer: "Tracer", record: SpanRecord):
        self._tracer = tracer
        self.record = record

    def set(self, **attrs: Any) -> "_SpanContext":
        self.record.attrs.update(attrs)
        return self

    def __enter__(self) -> "_SpanContext":
        return self

    def __exit__(self, *exc: object) -> bool:
        self._tracer._close_span(self.record)
        return False


class Tracer:
    """Collects spans and events; see the module docstring for contract."""

    enabled = True

    def __init__(self) -> None:
        self.spans: List[SpanRecord] = []
        self.events: List[EventRecord] = []
        self._stack: List[int] = []
        self._t0 = time.perf_counter_ns()
        self._next_track = 1  # 0 is this tracer's own track

    # -- time ----------------------------------------------------------
    def _now(self) -> int:
        return time.perf_counter_ns() - self._t0

    # -- recording -----------------------------------------------------
    def span(self, name: str, **attrs: Any) -> _SpanContext:
        record = SpanRecord(
            id=len(self.spans),
            parent=self._stack[-1] if self._stack else -1,
            name=name,
            start_ns=self._now(),
            attrs=attrs,
        )
        self.spans.append(record)
        self._stack.append(record.id)
        return _SpanContext(self, record)

    def _close_span(self, record: SpanRecord) -> None:
        record.end_ns = self._now()
        if self._stack and self._stack[-1] == record.id:
            self._stack.pop()

    def event(self, name: str, **attrs: Any) -> None:
        self.events.append(
            EventRecord(
                name=name,
                ts_ns=self._now(),
                span=self._stack[-1] if self._stack else -1,
                attrs=attrs,
            )
        )

    # -- merge ---------------------------------------------------------
    def absorb(self, data: Mapping[str, Any]) -> None:
        """Merge a worker's ``to_dict()`` payload under the current span.

        Span ids are offset past this tracer's, top-level entries are
        re-parented to the currently open span, timestamps shift to the
        absorb instant, and the whole batch lands on a fresh track.
        Call order defines the merged sequence — callers must absorb in
        spec order for determinism.
        """
        base = len(self.spans)
        parent = self._stack[-1] if self._stack else -1
        shift = self._now()
        track = self._next_track
        self._next_track += 1
        for span in data.get("spans", []):
            self.spans.append(
                SpanRecord(
                    id=base + span["id"],
                    parent=(
                        parent if span["parent"] < 0 else base + span["parent"]
                    ),
                    name=span["name"],
                    start_ns=span["start_ns"] + shift,
                    end_ns=span["end_ns"] + shift,
                    track=track,
                    attrs=dict(span.get("attrs") or {}),
                )
            )
        for event in data.get("events", []):
            self.events.append(
                EventRecord(
                    name=event["name"],
                    ts_ns=event["ts_ns"] + shift,
                    span=(
                        parent if event["span"] < 0 else base + event["span"]
                    ),
                    track=track,
                    attrs=dict(event.get("attrs") or {}),
                )
            )

    # -- export --------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": TRACE_SCHEMA,
            "spans": [span.to_dict() for span in self.spans],
            "events": [event.to_dict() for event in self.events],
        }


# ---------------------------------------------------------------------------
# Ambient tracer
# ---------------------------------------------------------------------------

_tracer: NullTracer | Tracer = NULL_TRACER


def get_tracer() -> NullTracer | Tracer:
    """The process-wide ambient tracer (the null singleton by default)."""
    return _tracer


def set_tracer(tracer: Optional[NullTracer | Tracer]) -> NullTracer | Tracer:
    """Install ``tracer`` (``None`` = disable); returns the previous one."""
    global _tracer
    previous = _tracer
    _tracer = tracer if tracer is not None else NULL_TRACER
    return previous


@contextmanager
def tracing(tracer: Optional[Tracer] = None) -> Iterator[Tracer]:
    """Enable tracing for a scope; yields the (fresh) tracer."""
    active = tracer if tracer is not None else Tracer()
    previous = set_tracer(active)
    try:
        yield active
    finally:
        set_tracer(previous)
