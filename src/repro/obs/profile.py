"""Deterministic profiler: fold span trees into per-name tables.

A raw ``slms-trace/1`` payload is an event soup; what a human (and the
``slms report`` dashboard) wants is the classic profiler view:

* **per-span-name rows** — call count, *total* (inclusive) time and
  *self* time (total minus the direct children's totals), min/max —
  produced by :func:`fold_trace`;
* **latency percentiles** — p50/p90/p99 over the per-experiment wall
  clocks of a harness run, produced by :func:`latency_percentiles` /
  :func:`profile_results`.

Determinism contract, matching the rest of the obs layer: the folded
*structure* — row names, call counts, parent/child attribution — is a
pure function of the merged event sequence, which the engine makes
worker-count-invariant by absorbing worker payloads in spec order.  So
``workers=1`` and ``workers=4`` fold to the same rows with the same
counts (wall-clock magnitudes differ; nothing else does), and the
percentile fold uses the deterministic nearest-rank definition (no
interpolation) so equal inputs give bit-equal outputs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

PROFILE_SCHEMA = "slms-profile/1"

#: The percentile levels every profile reports.
PERCENTILES = (50, 90, 99)


@dataclass
class ProfileRow:
    """Aggregate of every span sharing one name."""

    name: str
    count: int = 0
    total_ns: int = 0
    self_ns: int = 0
    min_ns: Optional[int] = None
    max_ns: Optional[int] = None

    def observe(self, dur_ns: int, self_ns: int) -> None:
        self.count += 1
        self.total_ns += dur_ns
        self.self_ns += self_ns
        if self.min_ns is None or dur_ns < self.min_ns:
            self.min_ns = dur_ns
        if self.max_ns is None or dur_ns > self.max_ns:
            self.max_ns = dur_ns

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "count": self.count,
            "total_ms": round(self.total_ns / 1e6, 6),
            "self_ms": round(self.self_ns / 1e6, 6),
            "min_ms": round((self.min_ns or 0) / 1e6, 6),
            "max_ms": round((self.max_ns or 0) / 1e6, 6),
        }


@dataclass
class Profile:
    """The folded view of one trace (or one result list)."""

    rows: List[ProfileRow] = field(default_factory=list)
    event_counts: Dict[str, int] = field(default_factory=dict)
    latency: Dict[str, float] = field(default_factory=dict)

    def row(self, name: str) -> Optional[ProfileRow]:
        for row in self.rows:
            if row.name == name:
                return row
        return None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": PROFILE_SCHEMA,
            "rows": [row.to_dict() for row in self.rows],
            "event_counts": dict(sorted(self.event_counts.items())),
            "latency": dict(self.latency),
        }


def fold_trace(trace: Mapping[str, Any]) -> Profile:
    """Fold an ``slms-trace/1`` payload into a :class:`Profile`.

    Self time is inclusive duration minus the inclusive durations of
    *direct* children (clamped at zero: absorbed worker batches are
    time-shifted to the absorb instant, so a child can nominally
    outlast its parent).  Rows are ordered by descending total time
    with name as the deterministic tie-break.
    """
    spans = list(trace.get("spans") or [])
    events = list(trace.get("events") or [])
    child_ns: Dict[int, int] = {}
    durations: List[Tuple[str, int]] = []
    for span in spans:
        dur = max(int(span["end_ns"]) - int(span["start_ns"]), 0)
        durations.append((span["name"], dur))
        parent = span.get("parent", -1)
        if parent is not None and parent >= 0:
            child_ns[parent] = child_ns.get(parent, 0) + dur

    table: Dict[str, ProfileRow] = {}
    for span, (name, dur) in zip(spans, durations):
        row = table.get(name)
        if row is None:
            row = table[name] = ProfileRow(name)
        row.observe(dur, max(dur - child_ns.get(span["id"], 0), 0))

    profile = Profile(
        rows=sorted(
            table.values(), key=lambda row: (-row.total_ns, row.name)
        )
    )
    for event in events:
        name = event["name"]
        profile.event_counts[name] = profile.event_counts.get(name, 0) + 1

    # Per-experiment latency: every `experiment` span is one harness
    # comparison, so its inclusive duration is the run's latency.
    exp_ns = [dur for name, dur in durations if name == "experiment"]
    if exp_ns:
        profile.latency = latency_percentiles(
            [ns / 1e9 for ns in exp_ns]
        )
    return profile


def latency_percentiles(
    values: Sequence[float], levels: Sequence[int] = PERCENTILES
) -> Dict[str, float]:
    """Nearest-rank percentiles (deterministic, no interpolation).

    The nearest-rank definition — the smallest value with at least
    ``p%`` of the sample at or below it — always returns a member of
    the sample, so two identical runs can be compared bit-for-bit.
    """
    if not values:
        return {}
    ordered = sorted(values)
    out: Dict[str, float] = {"n": len(ordered)}
    for level in levels:
        rank = max(
            1, -(-level * len(ordered) // 100)  # ceil without floats
        )
        out[f"p{level}"] = round(ordered[rank - 1], 6)
    out["mean"] = round(sum(ordered) / len(ordered), 6)
    out["max"] = round(ordered[-1], 6)
    return out


def profile_results(results: Sequence[Any]) -> Dict[str, Any]:
    """Phase totals + latency percentiles over experiment results.

    Accepts anything carrying ``phase_times`` / ``cached_phase_times``
    mappings (``ExperimentResult`` or its dict form).  A cache hit's
    latency is its lookup time — ``phase_times["cache"]`` — because
    that *is* what the run cost; the work the entry originally did is
    aggregated separately under ``cached_phase_totals``.
    """
    phase_totals: Dict[str, float] = {}
    cached_totals: Dict[str, float] = {}
    latencies: List[float] = []
    for result in results:
        times = _mapping_field(result, "phase_times")
        cached = _mapping_field(result, "cached_phase_times")
        for phase, seconds in times.items():
            phase_totals[phase] = phase_totals.get(phase, 0.0) + seconds
        for phase, seconds in cached.items():
            cached_totals[phase] = cached_totals.get(phase, 0.0) + seconds
        latency = times.get("total", times.get("cache"))
        if latency is not None:
            latencies.append(latency)
    return {
        "phase_totals": {
            k: round(v, 6) for k, v in sorted(phase_totals.items())
        },
        "cached_phase_totals": {
            k: round(v, 6) for k, v in sorted(cached_totals.items())
        },
        "latency": latency_percentiles(latencies),
    }


def _mapping_field(result: Any, name: str) -> Dict[str, float]:
    if isinstance(result, Mapping):
        value = result.get(name)
    else:
        value = getattr(result, name, None)
    return dict(value or {})


def render_profile(profile: Profile, top: int = 20) -> str:
    """Terminal table: the classic count/total/self profiler view."""
    lines = [
        f"{'span':<24} {'count':>7} {'total ms':>12} {'self ms':>12} "
        f"{'mean ms':>10}"
    ]
    for row in profile.rows[:top]:
        mean_ms = row.total_ns / row.count / 1e6 if row.count else 0.0
        lines.append(
            f"{row.name:<24} {row.count:>7} {row.total_ns / 1e6:>12.3f} "
            f"{row.self_ns / 1e6:>12.3f} {mean_ms:>10.3f}"
        )
    if len(profile.rows) > top:
        lines.append(f"… {len(profile.rows) - top} more row(s)")
    if profile.latency:
        lines.append("")
        lines.append(
            "experiment latency: "
            + "  ".join(
                f"{key}={profile.latency[key] * 1000:.2f} ms"
                if key.startswith("p") or key in ("mean", "max")
                else f"{key}={profile.latency[key]}"
                for key in ("n", "p50", "p90", "p99", "mean", "max")
                if key in profile.latency
            )
        )
    return "\n".join(lines)
