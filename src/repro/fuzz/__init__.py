"""Differential fuzzing: random loop generator, SLMS oracle, reducer."""

from repro.fuzz.generator import (
    PROFILES,
    FuzzCase,
    FuzzProfile,
    case_seeds,
    generate_case,
    get_profile,
)
from repro.fuzz.oracle import (
    FAILURE_CLASSES,
    CaseOutcome,
    OracleConfig,
    check_source,
    make_env,
    run_case,
)

__all__ = [
    "PROFILES",
    "FuzzCase",
    "FuzzProfile",
    "case_seeds",
    "generate_case",
    "get_profile",
    "FAILURE_CLASSES",
    "CaseOutcome",
    "OracleConfig",
    "check_source",
    "make_env",
    "run_case",
]
