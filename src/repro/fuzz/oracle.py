"""Differential oracle: does SLMS preserve the semantics of a case?

Each fuzz case runs through four layers of checking, every one against
the same untransformed *reference interpreter* run:

1. **differential** — transform with :func:`repro.core.pipeline.slms`
   (``verify=True``) and re-interpret the transformed source over
   randomized initial stores; final memory and live scalar state must
   be bit-identical (:func:`repro.sim.interp.state_equal`).
2. **backend** — compile both the original and the transformed program
   through :class:`repro.backend.compiler.FinalCompiler` and execute
   the LIR on :func:`repro.sim.executor.execute`; both functional
   states must again match the reference.
3. **validator cross-check** — every loop SLMS *applied* must also
   satisfy the V2xx schedule validator; a validator error on a case
   the oracle accepts (or vice versa) is its own failure class
   (``validator-disagreement``), never silently dropped.
4. **metamorphic** — composing SLMS with the classical transforms must
   not change meaning: reversing a loop twice then pipelining behaves
   like pipelining alone, and unrolling before SLMS behaves like SLMS
   alone.
5. **scheduler** (opt-in, ``--oracle-scheduler``) — the exact
   branch-and-bound backend must agree with the heuristic on every
   apply/decline verdict, never produce a larger II (its refine search
   falls back to the heuristic's placement), pass the V2xx validator on
   everything it applies, and preserve semantics bit-exactly.  Any
   violation is a ``scheduler-divergence``.

Verdicts are deterministic functions of ``(case, OracleConfig)``: the
randomized stores derive from the case seed via ``numpy``'s counter
based generator, never from global state.
"""

from __future__ import annotations

import re
from dataclasses import asdict, dataclass, field, replace
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

import numpy as np

from repro.core.pipeline import ProgramSLMSResult, slms
from repro.core.slms import SLMSOptions
from repro.fuzz.generator import FuzzCase
from repro.lang.ast_nodes import For, Program, Stmt, While
from repro.lang.parser import parse_program
from repro.lang.printer import to_source
from repro.obs import get_tracer
from repro.sim.interp import (
    InterpError,
    run_program,
    run_program_batched,
    state_equal,
)
from repro.transforms.errors import TransformError
from repro.transforms.reversal import reverse
from repro.transforms.unroll import unroll


# Failure classes, most severe first.  ``invalid-case`` means the
# *generator* produced a program the reference interpreter rejects —
# a fuzzer bug, reported loudly rather than masked.
FAILURE_CLASSES: Tuple[str, ...] = (
    "crash",                   # pipeline raised on a legal program
    "invalid-case",            # reference interpreter rejected the input
    "lint-false-negative",     # reference trapped OOB but lint saw nothing
    "differential",            # transformed source diverges from reference
    "backend-differential",    # compiled LIR diverges from reference
    "ir-invariant",            # V21x cross-phase IR invariant violated
    "validator-disagreement",  # V2xx validator and oracle disagree
    "scheduler-divergence",    # exact backend loses to / disagrees with
                               # the heuristic, or breaks validation
    "metamorphic-reversal",    # reversal o reversal then SLMS diverges
    "metamorphic-unroll",      # unroll then SLMS diverges
)

# The V21x band is the cross-phase IR checker; its findings get their
# own failure class so an IR bug is never misfiled as a scheduler bug.
_IR_CODES = frozenset(
    {"V210", "V211", "V212", "V213", "V214", "V215", "V216"}
)

_OOB_TRAP = re.compile(r"index -?\d+ out of bounds .* of '(\w+)'")


@dataclass(frozen=True)
class OracleConfig:
    """Knobs for one oracle evaluation (part of the determinism key)."""

    machine: str = "itanium2"
    compiler: str = "gcc_O3"
    n_envs: int = 2
    max_steps: int = 2_000_000
    backend: bool = True
    metamorphic: bool = True
    unroll_factor: int = 2
    # One lockstep interpreter pass over all n_envs stores instead of
    # n_envs separate passes; verdict-neutral (divergent control flow
    # falls back to per-env replay automatically).
    batch_envs: bool = True
    # Differential scheduler oracle (layer 5): re-run SLMS with the
    # exact branch-and-bound backend and compare against the heuristic.
    scheduler_oracle: bool = False
    sched_budget: int = 50_000

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)


@dataclass
class CaseOutcome:
    """Oracle verdict for one case.

    ``status`` is ``"ok"`` (every check passed — possibly with zero
    loops transformed), ``"declined"`` (SLMS applied to no loop; the
    decline reasons are recorded), or ``"fail"`` with a
    ``failure_class`` from :data:`FAILURE_CLASSES` and a human-readable
    ``detail``.
    """

    seed: int
    profile: str
    status: str
    failure_class: Optional[str] = None
    detail: str = ""
    applied_loops: int = 0
    declined_loops: int = 0
    decline_reasons: List[str] = field(default_factory=list)
    validator_codes: List[str] = field(default_factory=list)
    checks_run: List[str] = field(default_factory=list)
    source: str = ""

    @property
    def failed(self) -> bool:
        return self.status == "fail"

    def to_dict(self, include_source: bool = False) -> Dict[str, Any]:
        payload = {
            "seed": self.seed,
            "profile": self.profile,
            "status": self.status,
            "failure_class": self.failure_class,
            "detail": self.detail,
            "applied_loops": self.applied_loops,
            "declined_loops": self.declined_loops,
            "decline_reasons": self.decline_reasons,
            "validator_codes": self.validator_codes,
            "checks_run": self.checks_run,
        }
        if include_source:
            payload["source"] = self.source
        return payload


# ---------------------------------------------------------------------------
# randomized initial stores


def make_env(case: FuzzCase, env_index: int = 0) -> Dict[str, Any]:
    """Deterministic randomized initial store for ``case``.

    Int arrays get small magnitudes (recurrences stay far from
    overflow even before the generator's value wrapping); float arrays
    get dyadic rationals so every arithmetic result is exact in both
    the source interpreter and the LIR executor.
    """
    rng = np.random.default_rng(
        (int(case.seed) * 1_000_003 + env_index) % (2**63)
    )
    env: Dict[str, Any] = {}
    for name in sorted(case.arrays):
        shape = case.arrays[name]
        if case.types.get(name) == "int":
            env[name] = rng.integers(-9, 10, size=shape).astype(np.int64)
        else:
            env[name] = (
                rng.integers(-64, 65, size=shape) / 8.0
            ).astype(np.float64)
    return env


def _copy_env(env: Dict[str, Any]) -> Dict[str, Any]:
    return {
        k: v.copy() if isinstance(v, np.ndarray) else v
        for k, v in env.items()
    }


# ---------------------------------------------------------------------------
# loop rewriting helpers (metamorphic variants)


def _map_innermost(
    program: Program,
    fn: Callable[[For], Union[For, List[Stmt]]],
) -> Program:
    """Clone ``program`` with ``fn`` applied to every innermost for loop.

    ``fn`` may return a replacement loop or a statement list (unroll).
    Raises whatever ``fn`` raises — callers treat
    :class:`TransformError` as "variant not applicable".
    """

    def is_innermost(loop: For) -> bool:
        return not any(
            isinstance(node, (For, While))
            for stmt in loop.body
            for node in _walk_stmt(stmt)
        )

    def rewrite(stmts: List[Stmt]) -> List[Stmt]:
        out: List[Stmt] = []
        for stmt in stmts:
            if isinstance(stmt, For):
                if is_innermost(stmt):
                    replaced = fn(stmt.clone())
                    if isinstance(replaced, list):
                        out.extend(replaced)
                    else:
                        out.append(replaced)
                else:
                    loop = stmt.clone()
                    loop.body = rewrite(loop.body)
                    out.append(loop)
            elif isinstance(stmt, While):
                loop = stmt.clone()
                loop.body = rewrite(loop.body)
                out.append(loop)
            else:
                out.append(stmt.clone())
        return out

    return Program(rewrite(list(program.body)), program.loc)


def _walk_stmt(stmt: Stmt):
    from repro.lang.visitors import walk

    return walk(stmt)


# ---------------------------------------------------------------------------
# the oracle


def _program_outcomes(
    program: Program,
    envs: List[Dict[str, Any]],
    max_steps: int,
    batch: bool,
) -> List[Any]:
    """Final state per env, or the :class:`InterpError` that env raises.

    ``batch`` routes through :func:`run_program_batched` (one lockstep
    pass over every env); either way the per-env outcomes are identical
    to sequential :func:`run_program` runs.
    """
    if batch and len(envs) > 1:
        return run_program_batched(
            program.clone(),
            [_copy_env(env) for env in envs],
            max_steps=max_steps,
        )
    outcomes: List[Any] = []
    for env in envs:
        try:
            outcomes.append(
                run_program(
                    program.clone(), _copy_env(env), max_steps=max_steps
                )
            )
        except InterpError as exc:
            outcomes.append(exc)
    return outcomes


def _reference_states(
    program: Program,
    envs: List[Dict[str, Any]],
    max_steps: int,
    batch: bool = False,
) -> List[Dict[str, Any]]:
    outcomes = _program_outcomes(program, envs, max_steps, batch)
    for out in outcomes:
        if isinstance(out, InterpError):
            raise out
    return outcomes


def _divergence(
    ref: Dict[str, Any], out: Dict[str, Any], label: str
) -> Optional[str]:
    """None when states agree; a short description otherwise.

    Names present only in ``out`` are SLMS/compiler temporaries and are
    ignored; every name the reference knows must match bit-exactly.
    """
    if state_equal(ref, out, ignore=set(out) - set(ref)):
        return None
    bad = []
    for name in sorted(ref):
        if name not in out:
            bad.append(f"{name} missing")
            continue
        va, vb = ref[name], out[name]
        if isinstance(va, np.ndarray) and isinstance(vb, np.ndarray):
            if va.shape != vb.shape or not np.array_equal(
                va, vb, equal_nan=True
            ):
                bad.append(name)
        elif va != vb and not (va != va and vb != vb):  # NaN-tolerant
            bad.append(f"{name} ({va!r} != {vb!r})")
    return f"{label}: state mismatch on {', '.join(bad) or '<unknown>'}"


def run_case(
    case: FuzzCase, config: Optional[OracleConfig] = None
) -> CaseOutcome:
    """Run every oracle layer over ``case`` and classify the outcome."""
    config = config or OracleConfig()
    tracer = get_tracer()
    outcome = _run_case_inner(case, config)
    if tracer.enabled:
        tracer.event(
            "fuzz.case",
            seed=case.seed,
            profile=case.profile,
            status=outcome.status,
            applied=outcome.applied_loops,
            declined=outcome.declined_loops,
        )
        if outcome.failed:
            tracer.event(
                "fuzz.divergence",
                seed=case.seed,
                profile=case.profile,
                failure_class=outcome.failure_class,
                detail=outcome.detail,
            )
    return outcome


def _run_case_inner(case: FuzzCase, config: OracleConfig) -> CaseOutcome:
    outcome = CaseOutcome(
        seed=case.seed, profile=case.profile, status="ok", source=case.source
    )

    def fail(cls: str, detail: str) -> CaseOutcome:
        outcome.status = "fail"
        outcome.failure_class = cls
        outcome.detail = detail
        return outcome

    try:
        program = parse_program(case.source)
    except Exception as exc:
        return fail("invalid-case", f"parse failed: {exc}")

    envs = [make_env(case, j) for j in range(max(1, config.n_envs))]

    # ---- reference runs ---------------------------------------------------
    outcome.checks_run.append("reference")
    try:
        refs = _reference_states(
            program, envs, config.max_steps, batch=config.batch_envs
        )
    except InterpError as exc:
        trap = _OOB_TRAP.search(str(exc))
        if trap is not None:
            # An out-of-bounds trap is the expected outcome for ``oob``
            # cases; the contract is that ``slms lint`` statically flags
            # the trapping array — a trap lint missed is a hole in the
            # bounds prover (a false negative), reported loudly.
            outcome.checks_run.append("lint-oob")
            problem = _lint_covers_trap(program, trap.group(1))
            if problem:
                return fail("lint-false-negative", f"{exc}; {problem}")
            outcome.detail = (
                f"reference trapped ({exc}); lint flagged the subscript"
            )
            return outcome
        return fail("invalid-case", f"reference interpreter rejected: {exc}")

    # ---- SLMS + source-level differential --------------------------------
    outcome.checks_run.append("differential")
    try:
        result: ProgramSLMSResult = slms(
            program.clone(), SLMSOptions(verify=True)
        )
    except Exception as exc:
        return fail("crash", f"slms raised {type(exc).__name__}: {exc}")

    outcome.applied_loops = result.applied_count
    outcome.declined_loops = len(result.loops) - result.applied_count
    outcome.decline_reasons = [
        r.reason for r in result.loops if not r.applied
    ]
    outcome.validator_codes = sorted(
        {
            d.code
            for r in result.loops
            for d in r.diagnostics
            if d.severity == "error"
        }
    )

    diffs: List[str] = []
    outs = _program_outcomes(
        result.program, envs, config.max_steps, config.batch_envs
    )
    for j, out in enumerate(outs):
        if isinstance(out, InterpError):
            diffs.append(f"env{j}: transformed program raised: {out}")
            continue
        problem = _divergence(refs[j], out, f"env{j}")
        if problem:
            diffs.append(problem)
    if diffs:
        return fail("differential", "; ".join(diffs))

    # ---- validator cross-check -------------------------------------------
    # The differential oracle accepted the transform; a V2xx error now
    # means the static validator disagrees with the dynamic truth.
    # V21x errors are the cross-phase IR checker's and carry their own
    # class so IR bugs are never misfiled as scheduler bugs.
    outcome.checks_run.append("validator")
    ir_codes = [c for c in outcome.validator_codes if c in _IR_CODES]
    if ir_codes:
        return fail(
            "ir-invariant",
            "IR invariant violated on an applied result: "
            + ", ".join(ir_codes),
        )
    if outcome.validator_codes:
        return fail(
            "validator-disagreement",
            "oracle accepts but validator errors: "
            + ", ".join(outcome.validator_codes),
        )

    # ---- differential scheduler oracle -----------------------------------
    if config.scheduler_oracle:
        outcome.checks_run.append("scheduler")
        problem = _scheduler_check(program, result, envs, refs, config)
        if problem:
            return fail("scheduler-divergence", problem)

    # ---- backend differential --------------------------------------------
    if config.backend:
        outcome.checks_run.append("backend")
        failure = _backend_check(
            program, result.program, envs, refs, config
        )
        if failure:
            return fail(*failure)

    # ---- metamorphic variants --------------------------------------------
    if config.metamorphic:
        problem = _metamorphic_reversal(program, envs, refs, config)
        if problem is not None:
            outcome.checks_run.append("metamorphic-reversal")
            if problem:
                return fail("metamorphic-reversal", problem)
        problem = _metamorphic_unroll(program, envs, refs, config)
        if problem is not None:
            outcome.checks_run.append("metamorphic-unroll")
            if problem:
                return fail("metamorphic-unroll", problem)

    if outcome.applied_loops == 0 and outcome.declined_loops > 0:
        outcome.status = "declined"
    return outcome


def _lint_covers_trap(program: Program, array: str) -> str:
    """Empty string when ``slms lint`` flags a subscript of ``array``
    (A301/A302); otherwise a description of the false negative."""
    from repro.verify.lint import lint_program

    diags = lint_program(program)
    hits = [
        d
        for d in diags
        if d.code in ("A301", "A302") and f"{array!r}" in d.message
    ]
    if hits:
        return ""
    flagged = sorted(
        {d.code for d in diags if d.code in ("A301", "A302")}
    )
    return (
        f"lint did not flag any subscript of {array!r} "
        f"(bounds findings present: {flagged or 'none'})"
    )


def _scheduler_check(
    program: Program,
    heuristic: ProgramSLMSResult,
    envs: List[Dict[str, Any]],
    refs: List[Dict[str, Any]],
    config: OracleConfig,
) -> str:
    """Empty string when the exact backend agrees with the heuristic.

    The refine architecture makes four properties structural; each one
    is re-checked dynamically here so a regression in the scheduler
    surfaces as its own failure class:

    * both backends attempt the same loops and reach the same
      apply/decline verdicts (exact refines placement only, it never
      changes the decomposition or the filter path);
    * on every applied loop ``exact II ≤ heuristic II`` (identity at
      the heuristic's II is the refine fallback);
    * the exact placement passes the V2xx schedule validator;
    * the exact-scheduled program is bit-identical to the reference.
    """
    try:
        exact = slms(
            program.clone(),
            SLMSOptions(
                verify=True,
                scheduler="exact",
                sched_budget=config.sched_budget,
            ),
        )
    except Exception as exc:
        return f"exact slms raised {type(exc).__name__}: {exc}"

    if len(exact.loops) != len(heuristic.loops):
        return (
            f"backends attempted different loop counts: heuristic "
            f"{len(heuristic.loops)}, exact {len(exact.loops)}"
        )
    for idx, (h, e) in enumerate(zip(heuristic.loops, exact.loops)):
        if h.applied != e.applied:
            return (
                f"loop {idx}: verdict mismatch — heuristic "
                f"{'applied' if h.applied else f'declined ({h.reason})'}, "
                f"exact "
                f"{'applied' if e.applied else f'declined ({e.reason})'}"
            )
        if not h.applied:
            continue
        if e.ii > h.ii:
            return (
                f"loop {idx}: exact II {e.ii} exceeds heuristic II {h.ii}"
            )
    exact_codes = sorted(
        {
            d.code
            for r in exact.loops
            for d in r.diagnostics
            if d.severity == "error"
        }
    )
    if exact_codes:
        return (
            "exact placement fails validation: " + ", ".join(exact_codes)
        )

    outs = _program_outcomes(
        exact.program, envs, config.max_steps, config.batch_envs
    )
    for j, out in enumerate(outs):
        if isinstance(out, InterpError):
            return f"exact/env{j}: transformed program raised: {out}"
        problem = _divergence(refs[j], out, f"exact/env{j}")
        if problem:
            return problem
    return ""


def _backend_check(
    base: Program,
    transformed: Program,
    envs: List[Dict[str, Any]],
    refs: List[Dict[str, Any]],
    config: OracleConfig,
) -> Optional[Tuple[str, str]]:
    """``None`` on success, else ``(failure_class, detail)``."""
    from repro.backend.compiler import FinalCompiler
    from repro.machines.presets import machine_by_name
    from repro.sim.executor import execute
    from repro.verify.ir_check import check_module

    machine = machine_by_name(config.machine)
    compiler = FinalCompiler(machine, config.compiler)
    for label, prog in (("base", base), ("slms", transformed)):
        try:
            compiled = compiler.compile(prog.clone())
        except Exception as exc:
            return (
                "backend-differential",
                f"{label}: compile raised {type(exc).__name__}: {exc}",
            )
        # Static LIR soundness before dynamic execution: opcodes,
        # register files, arrays, constant addresses (V212-V216).
        ir_errors = [
            d
            for d in check_module(
                compiled.module,
                machine if compiled.alloc is not None else None,
            )
            if d.severity == "error"
        ]
        if ir_errors:
            return (
                "ir-invariant",
                f"{label}: LIR invariant violated: "
                + "; ".join(d.format() for d in ir_errors[:4]),
            )
        for j, env in enumerate(envs):
            try:
                run = execute(
                    compiled.module,
                    machine,
                    env=_copy_env(env),
                    max_steps=config.max_steps,
                )
            except Exception as exc:
                return (
                    "backend-differential",
                    f"{label}/env{j}: execute raised "
                    f"{type(exc).__name__}: {exc}",
                )
            problem = _divergence(refs[j], run.state, f"{label}/env{j}")
            if problem:
                return ("backend-differential", problem)
    return None


def _run_variant(
    variant: Program,
    envs: List[Dict[str, Any]],
    refs: List[Dict[str, Any]],
    config: OracleConfig,
    label: str,
) -> str:
    """Empty string when the SLMS'd variant matches the reference."""
    try:
        result = slms(variant, SLMSOptions())
    except Exception as exc:
        return f"{label}: slms raised {type(exc).__name__}: {exc}"
    outs = _program_outcomes(
        result.program, envs, config.max_steps, config.batch_envs
    )
    for j, out in enumerate(outs):
        if isinstance(out, InterpError):
            return f"{label}/env{j}: variant raised: {out}"
        problem = _divergence(refs[j], out, f"{label}/env{j}")
        if problem:
            return problem
    return ""


def _metamorphic_reversal(
    program: Program,
    envs: List[Dict[str, Any]],
    refs: List[Dict[str, Any]],
    config: OracleConfig,
) -> Optional[str]:
    """Reverse every innermost loop twice, re-pipeline, compare.

    Returns ``None`` when no loop is reversible (check not applicable),
    ``""`` on success, or a failure description.  Reversal must be an
    involution at the source level before semantics are even consulted.
    """
    reversed_any = False

    def rev2(loop: For) -> For:
        nonlocal reversed_any
        once = reverse(loop)
        twice = reverse(once)
        if to_source(Program([twice])) != to_source(Program([loop])):
            raise _InvolutionBroken(
                to_source(Program([loop])), to_source(Program([twice]))
            )
        reversed_any = True
        return twice

    try:
        variant = _map_innermost(program, rev2)
    except _InvolutionBroken as exc:
        return f"reverse(reverse(loop)) != loop:\n{exc}"
    except TransformError:
        return None
    except Exception as exc:  # reversal crashed on a legal loop
        return f"reversal raised {type(exc).__name__}: {exc}"
    if not reversed_any:
        return None
    return _run_variant(variant, envs, refs, config, "reverse2")


class _InvolutionBroken(Exception):
    def __init__(self, before: str, after: str):
        super().__init__(f"--- before ---\n{before}\n--- after ---\n{after}")


def _metamorphic_unroll(
    program: Program,
    envs: List[Dict[str, Any]],
    refs: List[Dict[str, Any]],
    config: OracleConfig,
) -> Optional[str]:
    """Unroll every innermost loop, then SLMS the result, compare."""
    unrolled_any = False

    def unroll_one(loop: For) -> List[Stmt]:
        nonlocal unrolled_any
        stmts = unroll(loop, config.unroll_factor)
        unrolled_any = True
        return stmts

    try:
        variant = _map_innermost(program, unroll_one)
    except TransformError:
        return None
    except Exception as exc:
        return f"unroll raised {type(exc).__name__}: {exc}"
    if not unrolled_any:
        return None
    return _run_variant(variant, envs, refs, config, "unroll")


def check_source(
    source: str,
    seed: Optional[int] = None,
    config: Optional[OracleConfig] = None,
) -> CaseOutcome:
    """Oracle entry point for bare source text (corpus replay)."""
    case = FuzzCase.from_source(source, seed=seed)
    return run_case(case, config)


def default_config(**overrides: Any) -> OracleConfig:
    return replace(OracleConfig(), **overrides)
