"""Delta-debugging reducer: shrink a failing case to a minimal loop.

Given a program the oracle rejects, the reducer searches for the
smallest variant that still fails *with the same failure class*:

* drop whole statements (and the declarations they orphan),
* drop loops other than the one that matters,
* simplify expressions (replace a subtree by one of its operands or by
  a literal),
* shrink the trip count and array extents.

The search is the classic ddmin fixpoint — keep applying the cheapest
rewrite that preserves the failure until nothing applies — and is
deterministic: candidate order is structural, never randomized.

Reduced counterexamples are written into ``tests/fuzz/corpus/`` where
``tests/fuzz/test_corpus_replay.py`` replays them on every pytest run,
so every divergence the fuzzer ever finds becomes a permanent
regression test.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Tuple

from repro.fuzz.generator import FuzzCase
from repro.fuzz.oracle import CaseOutcome, OracleConfig, run_case
from repro.lang.ast_nodes import (
    BinOp,
    Decl,
    Expr,
    FloatLit,
    For,
    If,
    IntLit,
    Program,
    Stmt,
    Ternary,
    UnaryOp,
    Var,
    While,
)
from repro.lang.parser import parse_program
from repro.lang.printer import to_source
from repro.lang.visitors import walk
from repro.obs import get_tracer


@dataclass
class ReductionResult:
    """Outcome of one reduction run."""

    original: str
    reduced: str
    failure_class: str
    outcome: CaseOutcome
    steps: int = 0
    tests: int = 0

    @property
    def shrank(self) -> bool:
        return len(self.reduced) < len(self.original)


@dataclass
class _Reducer:
    oracle_seed: int
    failure_class: str
    config: OracleConfig
    max_tests: int = 2000
    tests: int = 0
    steps: int = 0
    last_outcome: Optional[CaseOutcome] = None

    def still_fails(self, program: Program) -> bool:
        """True when the candidate fails with the original class."""
        if self.tests >= self.max_tests:
            return False
        self.tests += 1
        try:
            source = to_source(program)
            case = FuzzCase.from_source(source, seed=self.oracle_seed)
            outcome = run_case(case, self.config)
        except Exception:
            return False  # a candidate the frontend rejects is useless
        if outcome.failed and outcome.failure_class == self.failure_class:
            self.last_outcome = outcome
            return True
        return False


def reduce_case(
    case: FuzzCase,
    outcome: CaseOutcome,
    config: Optional[OracleConfig] = None,
    max_tests: int = 2000,
) -> ReductionResult:
    """Shrink ``case`` while preserving ``outcome.failure_class``."""
    if not outcome.failed:
        raise ValueError("reduce_case needs a failing outcome")
    config = config or OracleConfig()
    red = _Reducer(
        oracle_seed=case.seed,
        failure_class=outcome.failure_class or "",
        config=config,
        max_tests=max_tests,
    )
    program = parse_program(case.source)
    assert red.still_fails(program), "failure did not reproduce"
    best = program

    changed = True
    while changed and red.tests < red.max_tests:
        changed = False
        for rewrite in (_drop_statements, _simplify_exprs, _shrink_ints):
            candidate = rewrite(best, red)
            if candidate is not None:
                best = candidate
                red.steps += 1
                changed = True

    reduced_src = to_source(best)
    final = red.last_outcome or outcome
    tracer = get_tracer()
    if tracer.enabled:
        tracer.event(
            "fuzz.reduced",
            seed=case.seed,
            profile=case.profile,
            failure_class=red.failure_class,
            from_bytes=len(case.source),
            to_bytes=len(reduced_src),
            steps=red.steps,
            tests=red.tests,
        )
    return ReductionResult(
        original=case.source,
        reduced=reduced_src,
        failure_class=red.failure_class,
        outcome=final,
        steps=red.steps,
        tests=red.tests,
    )


# ---------------------------------------------------------------------------
# rewrites — each returns a smaller failing program or None


def _body_paths(program: Program) -> List[Tuple[List[Stmt], int]]:
    """Every (statement-list, index) pair, outermost first."""
    paths: List[Tuple[List[Stmt], int]] = []

    def visit(stmts: List[Stmt]) -> None:
        for i, stmt in enumerate(stmts):
            paths.append((stmts, i))
            if isinstance(stmt, (For, While)):
                visit(stmt.body)
            elif isinstance(stmt, If):
                visit(stmt.then)
                visit(stmt.els)

    visit(program.body)
    return paths


def _drop_statements(program: Program, red: _Reducer) -> Optional[Program]:
    """Try deleting one statement anywhere (deepest lists last)."""
    n_paths = len(_body_paths(program))
    for k in range(n_paths):
        trial = program.clone()
        paths = _body_paths(trial)
        if k >= len(paths):
            break
        stmts, i = paths[k]
        del stmts[i]
        trial = _prune_unused_decls(trial)
        if red.still_fails(trial):
            return trial
    return None


def _prune_unused_decls(program: Program) -> Program:
    used = set()
    for node in walk(program):
        if isinstance(node, Var):
            used.add(node.name)
        elif hasattr(node, "name") and not isinstance(node, Decl):
            used.add(getattr(node, "name"))

    def keep(stmt: Stmt) -> bool:
        return not (isinstance(stmt, Decl) and stmt.name not in used)

    return Program(
        [s for s in program.body if keep(s)], program.loc
    )


def _expr_slots(
    program: Program,
) -> List[Tuple[object, str, Expr]]:
    """(owner, attribute, expr) for every replaceable expression slot."""
    slots: List[Tuple[object, str, Expr]] = []
    for node in walk(program):
        for attr in ("value", "cond", "then", "els", "left", "right",
                     "operand"):
            child = getattr(node, attr, None)
            if isinstance(child, Expr) and not isinstance(
                child, (IntLit, FloatLit, Var)
            ):
                slots.append((node, attr, child))
    return slots


def _replacements(expr: Expr) -> List[Expr]:
    if isinstance(expr, BinOp):
        return [expr.left, expr.right]
    if isinstance(expr, UnaryOp):
        return [expr.operand]
    if isinstance(expr, Ternary):
        return [expr.then, expr.els]
    return []


def _simplify_exprs(program: Program, red: _Reducer) -> Optional[Program]:
    """Replace one expression subtree by one of its operands."""
    n_slots = len(_expr_slots(program))
    for k in range(n_slots):
        base_slots = _expr_slots(program)
        if k >= len(base_slots):
            break
        for choice in range(len(_replacements(base_slots[k][2]))):
            trial = program.clone()
            slots = _expr_slots(trial)
            if k >= len(slots):
                break
            owner, attr, expr = slots[k]
            options = _replacements(expr)
            if choice >= len(options):
                continue
            setattr(owner, attr, options[choice].clone())
            if red.still_fails(trial):
                return trial
    return None


def _int_literals(program: Program) -> List[IntLit]:
    return [n for n in walk(program) if isinstance(n, IntLit)]


def _shrink_ints(program: Program, red: _Reducer) -> Optional[Program]:
    """Halve one integer literal (trip counts, extents, offsets)."""
    n = len(_int_literals(program))
    for k in range(n):
        current = _int_literals(program)[k].value
        for smaller in {current // 2, current - 1, 0, 1, 2}:
            if smaller == current or smaller < 0:
                continue
            trial = program.clone()
            lits = _int_literals(trial)
            if k >= len(lits):
                break
            lits[k].value = smaller
            if red.still_fails(trial):
                return trial
    return None


# ---------------------------------------------------------------------------
# corpus persistence


CORPUS_DIR = Path(__file__).resolve().parents[3] / "tests" / "fuzz" / "corpus"


def corpus_filename(
    failure_class: str, seed: int, profile: str
) -> str:
    slug = re.sub(r"[^a-z0-9]+", "_", failure_class.lower()).strip("_")
    return f"{slug}_{profile}_{seed}.c"


def write_corpus_entry(
    result: ReductionResult,
    case: FuzzCase,
    directory: Optional[Path] = None,
    note: str = "",
) -> Path:
    """Write a reduced counterexample as a replayable corpus file.

    The header comment records provenance; the replay harness strips it
    and feeds the body back through the oracle.
    """
    directory = Path(directory) if directory else CORPUS_DIR
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / corpus_filename(
        result.failure_class, case.seed, case.profile
    )
    header = [
        f"/* fuzz counterexample: {result.failure_class}",
        f" * generator seed {case.seed}, profile {case.profile}",
        f" * detail: {result.outcome.detail[:200]}",
    ]
    if note:
        header.append(f" * {note}")
    header.append(" */")
    path.write_text("\n".join(header) + "\n" + result.reduced)
    return path


@dataclass
class CorpusEntry:
    path: Path
    source: str
    header: str = ""
    expect_seed: Optional[int] = None


def load_corpus(directory: Optional[Path] = None) -> List[CorpusEntry]:
    """Read every ``.c`` file in the corpus, splitting off the header."""
    directory = Path(directory) if directory else CORPUS_DIR
    entries: List[CorpusEntry] = []
    if not directory.is_dir():
        return entries
    for path in sorted(directory.glob("*.c")):
        text = path.read_text()
        header = ""
        if text.startswith("/*"):
            end = text.find("*/")
            if end != -1:
                header = text[: end + 2]
                text = text[end + 2 :].lstrip("\n")
        match = re.search(r"generator seed (\d+)", header)
        entries.append(
            CorpusEntry(
                path=path,
                source=text,
                header=header,
                expect_seed=int(match.group(1)) if match else None,
            )
        )
    return entries
