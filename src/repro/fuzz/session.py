"""Fuzz sessions: seed-schedule, fan-out, report, failure persistence.

A session is a deterministic function of ``(master seed, iterations,
profile, oracle config)``: the per-case seeds come from
:func:`repro.fuzz.generator.case_seeds` before any work is scheduled,
each case is evaluated by a pure module-level worker function, and
results are collected in schedule order through
:func:`repro.harness.engine.run_tasks`.  Consequences:

* ``--workers 4`` produces byte-identical reports to ``--workers 1``;
* re-running with the same seed reproduces the same report;
* the JSON report contains no wall-clock or host-specific fields — the
  determinism test diffs two runs byte-for-byte.

Failing cases are reduced in-worker (delta debugging is deterministic
too) and the parent optionally writes them under ``--save-failures``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.fuzz.generator import (
    PROFILES,
    case_seeds,
    generate_case,
)
from repro.fuzz.oracle import OracleConfig, run_case
from repro.fuzz.reduce import reduce_case, write_corpus_entry
from repro.harness.engine import run_tasks
from repro.harness.faults import RunJournal, is_failed, task_key
from repro.obs import get_metrics, get_tracer

REPORT_SCHEMA = "slms-fuzz/1"


@dataclass(frozen=True)
class FuzzSessionConfig:
    """Inputs of one session (everything the report is a function of)."""

    master_seed: int = 0
    iterations: int = 100
    profile: str = "all"  # a PROFILES key, or "all" to rotate
    workers: Optional[int] = 1
    oracle: OracleConfig = field(default_factory=OracleConfig)
    reduce_failures: bool = True
    max_reduce_tests: int = 400

    def profiles_schedule(self) -> List[str]:
        """Profile of case *i* is ``schedule[i % len(schedule)]``."""
        if self.profile == "all":
            return sorted(PROFILES)
        if self.profile not in PROFILES:
            raise ValueError(
                f"unknown profile {self.profile!r}; choose from "
                f"{sorted(PROFILES)} or 'all'"
            )
        return [self.profile]


@dataclass
class FuzzFailure:
    """One failing case, ready to persist and replay."""

    seed: int
    profile: str
    failure_class: str
    detail: str
    source: str
    reduced: str = ""
    # Side observations that must not be lost but are not the failure
    # itself — e.g. "reducer-error: ..." when delta debugging crashed
    # and the unreduced source was kept.
    notes: str = ""

    def to_dict(self) -> Dict[str, Any]:
        return {
            "seed": self.seed,
            "profile": self.profile,
            "failure_class": self.failure_class,
            "detail": self.detail,
            "source": self.source,
            "reduced": self.reduced,
            "notes": self.notes,
        }


@dataclass
class FuzzReport:
    """Aggregated session outcome; ``to_json`` is byte-deterministic."""

    master_seed: int
    iterations: int
    profile: str
    oracle: Dict[str, Any]
    status_counts: Dict[str, int] = field(default_factory=dict)
    failure_counts: Dict[str, int] = field(default_factory=dict)
    decline_reasons: Dict[str, int] = field(default_factory=dict)
    applied_loops: int = 0
    declined_loops: int = 0
    failures: List[FuzzFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": REPORT_SCHEMA,
            "master_seed": self.master_seed,
            "iterations": self.iterations,
            "profile": self.profile,
            "oracle": dict(sorted(self.oracle.items())),
            "status_counts": dict(sorted(self.status_counts.items())),
            "failure_counts": dict(sorted(self.failure_counts.items())),
            "decline_reasons": dict(sorted(self.decline_reasons.items())),
            "applied_loops": self.applied_loops,
            "declined_loops": self.declined_loops,
            "failures": [f.to_dict() for f in self.failures],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=False) + "\n"

    def summary_line(self) -> str:
        parts = [
            f"{self.iterations} cases",
            f"seed {self.master_seed}",
            f"profile {self.profile}",
            f"{self.status_counts.get('ok', 0)} ok",
            f"{self.status_counts.get('declined', 0)} declined",
            f"{len(self.failures)} failures",
        ]
        return ", ".join(parts)


def _eval_case(task: Dict[str, Any]) -> Dict[str, Any]:
    """Worker entry point: generate, judge, and maybe reduce one case.

    Must stay a picklable module-level function of one picklable
    argument (see :func:`repro.harness.engine.run_tasks`); returns
    plain dicts so the parent never unpickles custom types.
    """
    config = OracleConfig(**task["oracle"])
    case = generate_case(task["seed"], task["profile"])
    outcome = run_case(case, config)
    payload = outcome.to_dict()
    payload["source"] = case.source
    payload["reduced"] = ""
    payload["notes"] = ""
    if outcome.failed and task["reduce"]:
        try:
            reduction = reduce_case(
                case, outcome, config, max_tests=task["max_reduce_tests"]
            )
            payload["reduced"] = reduction.reduced
        except Exception as exc:
            # The reducer must never mask the finding — keep the
            # unreduced source, but record that reduction crashed so
            # the reducer bug is triaged too instead of vanishing.
            payload["reduced"] = case.source
            payload["notes"] = (
                f"reducer-error: {type(exc).__name__}: {exc}"
            )
    return payload


def _harness_error_payload(failure, task: Dict[str, Any]) -> Dict[str, Any]:
    """Case payload for a task the harness failed (crash/hang/timeout).

    A worker that dies or hangs yields a
    :class:`~repro.harness.faults.FailedResult` instead of an oracle
    payload; surface it as its own ``harness-error`` failure class so a
    chaotic environment never silently shrinks the session.
    """
    return {
        "status": "error",
        "failure_class": "harness-error",
        "detail": f"{failure.kind} in {failure.phase}: {failure.message}",
        "seed": task["seed"],
        "profile": task["profile"],
        "source": "",
        "reduced": "",
        "notes": "",
        "applied_loops": 0,
        "declined_loops": 0,
        "decline_reasons": [],
    }


def run_fuzz_session(
    config: FuzzSessionConfig,
    journal_path: Optional[str] = None,
    resume: bool = False,
) -> FuzzReport:
    """Run one session; deterministic in ``config``.

    ``journal_path`` checkpoints each completed case to a
    :class:`~repro.harness.faults.RunJournal` keyed by the case's
    content hash; ``resume=True`` replays its ``ok`` records, so an
    interrupted session picks up where it was killed and produces the
    same report an uninterrupted run would.
    """
    tracer = get_tracer()
    schedule = config.profiles_schedule()
    seeds = case_seeds(config.master_seed, config.iterations)
    tasks = [
        {
            "seed": seed,
            "profile": schedule[i % len(schedule)],
            "oracle": config.oracle.to_dict(),
            "reduce": config.reduce_failures,
            "max_reduce_tests": config.max_reduce_tests,
        }
        for i, seed in enumerate(seeds)
    ]
    journal = (
        RunJournal(journal_path, resume=resume) if journal_path else None
    )

    with tracer.span(
        "fuzz.session",
        master_seed=config.master_seed,
        iterations=config.iterations,
        profile=config.profile,
    ) as span:
        try:
            raw = run_tasks(
                _eval_case,
                tasks,
                workers=config.workers,
                journal=journal,
                keys=[task_key(task) for task in tasks] if journal else None,
            )
        finally:
            if journal is not None:
                journal.close()
        raw = [
            _harness_error_payload(item, tasks[i]) if is_failed(item) else item
            for i, item in enumerate(raw)
        ]
        report = FuzzReport(
            master_seed=config.master_seed,
            iterations=config.iterations,
            profile=config.profile,
            oracle=config.oracle.to_dict(),
        )
        for payload in raw:
            status = payload["status"]
            report.status_counts[status] = (
                report.status_counts.get(status, 0) + 1
            )
            report.applied_loops += payload["applied_loops"]
            report.declined_loops += payload["declined_loops"]
            for reason in payload["decline_reasons"]:
                report.decline_reasons[reason] = (
                    report.decline_reasons.get(reason, 0) + 1
                )
            if status in ("fail", "error"):
                cls = payload["failure_class"] or "unknown"
                report.failure_counts[cls] = (
                    report.failure_counts.get(cls, 0) + 1
                )
                report.failures.append(
                    FuzzFailure(
                        seed=payload["seed"],
                        profile=payload["profile"],
                        failure_class=cls,
                        detail=payload["detail"],
                        source=payload["source"],
                        reduced=payload["reduced"],
                        notes=payload.get("notes", ""),
                    )
                )
        registry = get_metrics()
        registry.counter("fuzz.cases").inc(config.iterations)
        registry.counter("fuzz.failures").inc(len(report.failures))
        registry.counter("fuzz.applied_loops").inc(report.applied_loops)
        if tracer.enabled:
            span.set(
                failures=len(report.failures),
                ok=report.status_counts.get("ok", 0),
                declined=report.status_counts.get("declined", 0),
            )
    return report


def save_failures(report: FuzzReport, directory: Path) -> List[Path]:
    """Persist each failure (reduced if available) for later triage."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    written: List[Path] = []
    for failure in report.failures:
        name = (
            f"{failure.failure_class}_{failure.profile}_"
            f"{failure.seed}.c"
        )
        body = failure.reduced or failure.source
        header = (
            f"/* fuzz counterexample: {failure.failure_class}\n"
            f" * generator seed {failure.seed}, "
            f"profile {failure.profile}\n"
            f" * detail: {failure.detail[:200]}\n */\n"
        )
        path = directory / name
        path.write_text(header + body)
        written.append(path)
    return written


__all__ = [
    "REPORT_SCHEMA",
    "FuzzSessionConfig",
    "FuzzFailure",
    "FuzzReport",
    "run_fuzz_session",
    "save_failures",
    "write_corpus_entry",
]
