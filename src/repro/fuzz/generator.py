"""Seeded, grammar-driven random loop-program generator.

The generator manufactures small C-subset programs whose innermost loop
spans the feature space SLMS claims to handle (and the space §4's filter
must decline gracefully): array loads/stores with affine subscripts,
loop-carried distances 0–:attr:`FuzzProfile.max_distance`, scalar
recurrences, if-convertible conditionals, multi-defined scalars,
symbolic (while-convertible) bounds and literal while loops.

Every program is valid **by construction**:

* all loops are counted with literal or runtime-constant bounds, so
  execution always terminates;
* every array subscript is of the form ``A[i + pad + c]`` with
  ``|c| <= max_distance < pad`` and array length ``trip + 2·pad``, so
  accesses are always in bounds — except under the ``oob`` profile,
  which deliberately plants provably out-of-bounds subscripts
  (:attr:`FuzzProfile.p_oob`) to exercise the lint bounds prover;
* ``/`` and ``%`` only ever see nonzero literal divisors;
* expressions are type-pure (int contexts only combine int atoms, float
  contexts float atoms — int-typed loads may feed float stores, where
  the int→float conversion is exact for the generated magnitudes), so
  both interpreters agree on every arithmetic step;
* literal magnitudes and trip counts are bounded, and every int-typed
  assignment wraps its right-hand side with a literal ``% 8191`` (C
  remainder semantics, identical in both interpreters), so no value fed
  back through a recurrence or through memory can ever overflow an
  ``int64`` array cell.  Float chains may reach ``inf``/``nan``; IEEE
  makes that deterministic, and the oracle compares NaN-aware.

Generation is a pure function of ``(seed, profile)`` — the same pair
always yields the same source text, which is what makes ``slms fuzz``
reports byte-reproducible and worker-count invariant.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass, field, fields, replace
from typing import Dict, List, Optional, Tuple

from repro.lang.ast_nodes import (
    ArrayRef,
    Assign,
    BinOp,
    Call,
    Decl,
    Expr,
    FloatLit,
    For,
    If,
    IntLit,
    Program,
    Stmt,
    Ternary,
    UnaryOp,
    Var,
    While,
)
from repro.lang.parser import parse_program
from repro.lang.printer import to_source


@dataclass(frozen=True)
class FuzzProfile:
    """Feature weights steering the generator.

    Probabilities are per-statement (or per-case for the structural
    knobs); they need not sum to anything.  Named presets live in
    :data:`PROFILES`.
    """

    name: str = "default"
    min_trip: int = 2
    max_trip: int = 24
    min_stmts: int = 1
    max_stmts: int = 5
    max_arrays: int = 3
    max_scalars: int = 2
    max_distance: int = 4
    max_expr_depth: int = 3
    p_float: float = 0.6
    p_2d: float = 0.10
    p_symbolic_bound: float = 0.20
    p_while: float = 0.10
    p_conditional: float = 0.20
    p_else: float = 0.5
    p_ternary: float = 0.15
    p_recurrence: float = 0.35
    p_multi_def: float = 0.25
    p_compound: float = 0.25
    p_call: float = 0.10
    p_int_div: float = 0.10
    p_second_loop: float = 0.15
    # Probability that a generated subscript is deliberately pushed out
    # of bounds (the ``oob`` profile).  Breaks the in-bounds-by-
    # construction guarantee on purpose: such cases exercise the lint
    # bounds prover, not the differential oracle.
    p_oob: float = 0.0

    def to_dict(self) -> Dict[str, object]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @staticmethod
    def from_dict(data: Dict[str, object]) -> "FuzzProfile":
        return FuzzProfile(**data)


PROFILES: Dict[str, FuzzProfile] = {
    "default": FuzzProfile(),
    # Straight-line float kernels: the §3 happy path the paper pipelines.
    "dataflow": FuzzProfile(
        name="dataflow", p_conditional=0.0, p_ternary=0.0, p_while=0.0,
        p_symbolic_bound=0.0, p_float=1.0, max_stmts=6, p_recurrence=0.2,
    ),
    # Control-heavy: if-conversion and predication stress.
    "control": FuzzProfile(
        name="control", p_conditional=0.55, p_ternary=0.3, p_else=0.7,
        p_recurrence=0.2, max_stmts=4,
    ),
    # Scalar recurrences and multi-defined scalars: decomposition +
    # expansion (MVE / scalar expansion) stress.
    "scalars": FuzzProfile(
        name="scalars", p_recurrence=0.7, p_multi_def=0.5, p_compound=0.4,
        max_arrays=2, max_scalars=3,
    ),
    # Symbolic bounds and while loops: the §10 envelope.
    "bounds": FuzzProfile(
        name="bounds", p_symbolic_bound=0.6, p_while=0.35, max_trip=16,
    ),
    # Short trips vs. stage counts: prologue/epilogue edge cases.
    "tiny": FuzzProfile(name="tiny", min_trip=1, max_trip=5, max_stmts=4),
    # Deliberately out-of-bounds subscripts: every planted reference is
    # statically provable OOB (or provably may escape), so ``slms lint``
    # must flag each one — the oracle asserts no false negatives
    # against the reference interpreter's traps.  No conditionals or
    # ternaries: a planted ref must execute unconditionally, both so
    # the reference is guaranteed to trap and so if-conversion cannot
    # introduce a trap the original program lacked.
    "oob": FuzzProfile(
        name="oob", p_oob=0.4, p_conditional=0.0, p_ternary=0.0,
        p_while=0.15, p_symbolic_bound=0.25, max_stmts=4,
    ),
}


@dataclass
class FuzzCase:
    """One generated program plus the metadata the oracle needs."""

    seed: int
    profile: str
    source: str
    # name -> dims for every array (drives randomized initial stores).
    arrays: Dict[str, Tuple[int, ...]] = field(default_factory=dict)
    # name -> "int"/"float" for arrays and scalars alike.
    types: Dict[str, str] = field(default_factory=dict)
    trip: int = 0
    # Number of deliberately out-of-bounds subscripts planted (only the
    # ``oob`` profile makes this nonzero).
    oob_refs: int = 0

    @staticmethod
    def from_source(
        source: str, seed: Optional[int] = None, profile: str = "corpus"
    ) -> "FuzzCase":
        """Rebuild a case from bare source text (corpus replay).

        Array shapes and element types are recovered from the program's
        declarations; the seed (which only drives the randomized initial
        stores) defaults to a CRC of the source so replays are stable.
        """
        program = parse_program(source)
        arrays: Dict[str, Tuple[int, ...]] = {}
        types: Dict[str, str] = {}
        from repro.lang.visitors import walk

        for node in walk(program):
            if isinstance(node, Decl):
                types[node.name] = node.type
                if node.dims:
                    arrays[node.name] = node.dims
        if seed is None:
            seed = zlib.crc32(source.encode("utf-8"))
        return FuzzCase(
            seed=seed, profile=profile, source=source,
            arrays=arrays, types=types,
        )


# ---------------------------------------------------------------------------
# The generator proper
# ---------------------------------------------------------------------------

_ARRAY_NAMES = ("A", "B", "C", "D")
_SCALAR_NAMES = ("s", "t", "u", "v")


class _Gen:
    def __init__(self, rng: random.Random, profile: FuzzProfile):
        self.rng = rng
        self.p = profile
        self.trip = rng.randint(profile.min_trip, profile.max_trip)
        self.pad = profile.max_distance + 1
        self.size = self.trip + 2 * self.pad
        self.arrays: Dict[str, Tuple[int, ...]] = {}
        self.types: Dict[str, str] = {}
        self.scalars: List[str] = []
        self.oob_refs = 0
        # Scalars already written earlier in the current loop body — a
        # later write to one of these is a multi-defined scalar, a later
        # read sees the same-iteration value (distance-0 flow edge).
        self.defined_in_body: List[str] = []

    # -- fresh structure ---------------------------------------------------
    def _pick_type(self) -> str:
        return "float" if self.rng.random() < self.p.p_float else "int"

    def build_symbols(self) -> None:
        n_arrays = self.rng.randint(1, self.p.max_arrays)
        for name in _ARRAY_NAMES[:n_arrays]:
            dims: Tuple[int, ...] = (self.size,)
            if self.rng.random() < self.p.p_2d:
                dims = (self.size, self.rng.randint(2, 4))
            self.arrays[name] = dims
            self.types[name] = self._pick_type()
        n_scalars = self.rng.randint(1, self.p.max_scalars)
        for name in _SCALAR_NAMES[:n_scalars]:
            self.scalars.append(name)
            self.types[name] = self._pick_type()
        self.types["i"] = "int"

    # -- expressions -------------------------------------------------------
    def _literal(self, typ: str) -> Expr:
        if typ == "int":
            return IntLit(self.rng.randint(0, 9))
        # Dyadic rationals: exactly representable, keeps arithmetic
        # noise-free without sacrificing float coverage.  Non-negative:
        # a negative literal printed after ``-`` would lex as ``--``.
        return FloatLit(self.rng.randint(0, 32) / 8.0)

    def _subscript(self, dims: Tuple[int, ...]) -> List[Expr]:
        if self.rng.random() < self.p.p_oob:
            first = self._oob_index(dims[0])
        else:
            c = self.rng.randint(-self.p.max_distance, self.p.max_distance)
            first = BinOp("+", Var("i"), IntLit(self.pad + c))
        idx: List[Expr] = [first]
        for extent in dims[1:]:
            idx.append(IntLit(self.rng.randrange(extent)))
        return idx

    def _oob_index(self, size: int) -> Expr:
        """A first-axis subscript that provably escapes ``[0, size-1]``.

        Three planted shapes: always-high (``i + k`` with ``k >= size``:
        out on every iteration), tail-high (escapes only on the last
        iteration(s)), and head-low (``i - k``: negative on the first
        ``k`` iterations).  With ``i`` ranging over ``[0, trip-1]`` each
        shape both (a) traps the reference interpreter whenever the
        statement executes on an offending iteration and (b) has an
        interval the lint bounds prover computes exactly — the basis of
        the no-false-negative oracle.
        """
        self.oob_refs += 1
        shape = self.rng.randrange(3)
        if shape == 0:
            return BinOp(
                "+", Var("i"), IntLit(size + self.rng.randint(0, self.pad))
            )
        if shape == 1:
            offset = 2 * self.pad + self.rng.randint(1, max(1, self.trip - 1))
            return BinOp("+", Var("i"), IntLit(offset))
        return BinOp("-", Var("i"), IntLit(self.rng.randint(1, self.pad)))

    def _load(self, typ: str) -> Optional[Expr]:
        candidates = [n for n, t in self.types.items()
                      if t == typ and n in self.arrays]
        if typ == "float":
            # Int loads may feed float expressions (exact conversion).
            candidates += [n for n, t in self.types.items()
                           if t == "int" and n in self.arrays]
        if not candidates:
            return None
        name = self.rng.choice(candidates)
        return ArrayRef(name, self._subscript(self.arrays[name]))

    def _atom(self, typ: str) -> Expr:
        roll = self.rng.random()
        if roll < 0.40:
            load = self._load(typ)
            if load is not None:
                return load
        if roll < 0.70:
            names = [n for n in self.scalars if self.types[n] == typ]
            if typ == "int":
                names = names + ["i"]
            if names:
                return Var(self.rng.choice(names))
        return self._literal(typ)

    def _expr(self, typ: str, depth: int) -> Expr:
        if typ == "int":
            # Int atoms are bounded by the % 8191 wrap on every int
            # assignment; depth <= 3 then keeps any intermediate product
            # far inside int64 (8190^4 ~ 4.5e15 < 2^63).
            depth = min(depth, 3)
        if depth <= 0 or self.rng.random() < 0.35:
            return self._atom(typ)
        roll = self.rng.random()
        if typ == "float" and roll < self.p.p_call:
            # Calls are float-typed in the compiled dialect (codegen
            # types opaque/intrinsic results as float), so they only
            # ever appear in float contexts.
            fn = self.rng.choice(("min", "max", "abs"))
            if fn == "abs":
                return Call("abs", [self._expr(typ, depth - 1)])
            return Call(
                fn, [self._expr(typ, depth - 1), self._expr(typ, depth - 1)]
            )
        if typ == "int" and roll < self.p.p_call + self.p.p_int_div:
            op = self.rng.choice(("/", "%"))
            return BinOp(
                op, self._expr("int", depth - 1),
                IntLit(self.rng.randint(2, 7)),
            )
        op = self.rng.choice(("+", "-", "*", "+", "-"))
        left = self._expr(typ, depth - 1)
        right = self._expr(typ, depth - 1)
        if self.rng.random() < 0.1 and not isinstance(
            left, (IntLit, FloatLit)
        ):
            left = UnaryOp("-", left)
        return BinOp(op, left, right)

    def _cond(self) -> Expr:
        typ = self._pick_type()
        op = self.rng.choice(("<", "<=", ">", ">=", "==", "!="))
        return BinOp(op, self._expr(typ, 1), self._expr(typ, 1))

    # -- statements --------------------------------------------------------
    def _store_target(self) -> Expr:
        name = self.rng.choice(sorted(self.arrays))
        return ArrayRef(name, self._subscript(self.arrays[name]))

    def _scalar_target(self, multi: bool) -> str:
        if multi and self.defined_in_body:
            return self.rng.choice(self.defined_in_body)
        return self.rng.choice(self.scalars)

    def _wrap_int(self, value: Expr) -> Expr:
        """Bound an int RHS with ``% 8191`` (unless already a literal)."""
        if isinstance(value, (IntLit, Var)):
            return value
        return BinOp("%", value, IntLit(8191))

    def _assign(self, target: Expr, typ: str) -> Stmt:
        depth = self.rng.randint(1, self.p.max_expr_depth)
        value = self._expr(typ, depth)
        if typ == "int":
            # Always plain form: compound int assigns (t *= e) would
            # bypass the overflow wrap on the expanded t = t * e.
            return Assign(target, self._wrap_int(value))
        if (
            self.rng.random() < self.p.p_compound
            and not isinstance(value, (IntLit, FloatLit))
        ):
            op = self.rng.choice(("+", "-", "*"))
            return Assign(target, value, op)
        return Assign(target, value)

    def _simple_stmt(self) -> Stmt:
        """One unconditional assignment (store or scalar def)."""
        roll = self.rng.random()
        if roll < self.p.p_recurrence and self.scalars:
            # s = s <op> expr — a loop-carried scalar recurrence.
            name = self.rng.choice(self.scalars)
            typ = self.types[name]
            op = self.rng.choice(("+", "-", "*", "+"))
            value: Expr = BinOp(op, Var(name), self._expr(typ, 1))
            if typ == "int":
                value = self._wrap_int(value)
            stmt = Assign(Var(name), value)
            self.defined_in_body.append(name)
            return stmt
        if roll < 0.55 or not self.scalars:
            target = self._store_target()
            typ = self.types[target.name]
            # Int cells must only see int expressions (float→int
            # truncation semantics are not part of the contract).
            return self._assign(target, typ)
        multi = self.rng.random() < self.p.p_multi_def
        name = self._scalar_target(multi)
        self.defined_in_body.append(name)
        return self._assign(Var(name), self.types[name])

    def _stmt(self) -> Stmt:
        roll = self.rng.random()
        if roll < self.p.p_conditional:
            then = [self._simple_stmt()]
            els: List[Stmt] = []
            if self.rng.random() < self.p.p_else:
                els = [self._simple_stmt()]
            return If(self._cond(), then, els)
        if roll < self.p.p_conditional + self.p.p_ternary:
            target = self._store_target()
            typ = self.types[target.name]
            value: Expr = Ternary(
                self._cond(), self._expr(typ, 1), self._expr(typ, 1)
            )
            if typ == "int":
                value = self._wrap_int(value)
            return Assign(target, value)
        return self._simple_stmt()

    def _loop_body(self) -> List[Stmt]:
        self.defined_in_body = []
        count = self.rng.randint(self.p.min_stmts, self.p.max_stmts)
        return [self._stmt() for _ in range(count)]

    def _counted_loop(self, bound: Expr) -> For:
        return For(
            init=Assign(Var("i"), IntLit(0)),
            cond=BinOp("<", Var("i"), bound),
            step=Assign(Var("i"), IntLit(1), "+"),
            body=self._loop_body(),
        )

    def build(self, seed: int, profile_name: str) -> FuzzCase:
        self.build_symbols()
        body: List[Stmt] = []
        for name in sorted(self.arrays):
            body.append(Decl(self.types[name], name, self.arrays[name]))
        for name in self.scalars:
            body.append(Decl(self.types[name], name,
                             init=self._literal(self.types[name])))
        body.append(Decl("int", "i"))

        symbolic = self.rng.random() < self.p.p_symbolic_bound
        if symbolic:
            body.append(Decl("int", "n", init=IntLit(self.trip)))
            bound: Expr = Var("n")
        else:
            bound = IntLit(self.trip)

        if self.rng.random() < self.p.p_while:
            # while-convertible counted idiom: i = 0; while (i < N) { …; i++ }
            loop_body = self._loop_body()
            loop_body.append(Assign(Var("i"), IntLit(1), "+"))
            body.append(Assign(Var("i"), IntLit(0)))
            body.append(While(BinOp("<", Var("i"), bound), loop_body))
        else:
            body.append(self._counted_loop(bound))

        if self.rng.random() < self.p.p_second_loop:
            body.append(self._counted_loop(bound.clone()))

        program = Program(body)
        source = to_source(program)
        # Round-trip guarantee: what we hand out must parse back.
        parse_program(source)
        return FuzzCase(
            seed=seed,
            profile=profile_name,
            source=source,
            arrays=dict(self.arrays),
            types=dict(self.types),
            trip=self.trip,
            oob_refs=self.oob_refs,
        )


def get_profile(name: str) -> FuzzProfile:
    try:
        return PROFILES[name]
    except KeyError:
        raise ValueError(
            f"unknown fuzz profile {name!r}; valid: {', '.join(sorted(PROFILES))}"
        ) from None


def generate_case(seed: int, profile: FuzzProfile | str = "default") -> FuzzCase:
    """Generate one program; pure function of ``(seed, profile)``."""
    if isinstance(profile, str):
        profile = get_profile(profile)
    rng = random.Random(seed)
    return _Gen(rng, profile).build(seed, profile.name)


def case_seeds(master_seed: int, iterations: int) -> List[int]:
    """The per-case seed schedule for one fuzz session.

    Derived from the master seed alone — independent of worker count
    and iteration batching, so ``--workers 4`` explores exactly the same
    cases as ``--workers 1``.
    """
    rng = random.Random(master_seed)
    return [rng.randrange(2**32) for _ in range(iterations)]


def mutate_profile(profile: FuzzProfile, **overrides) -> FuzzProfile:
    """A copy of ``profile`` with fields replaced (test/CLI helper)."""
    return replace(profile, **overrides)
