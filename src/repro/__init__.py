"""repro — Source Level Modulo Scheduling (SLMS).

A production-quality reproduction of *"Towards a Source Level Compiler:
Source Level Modulo Scheduling"* (Ben-Asher & Meisler, ICPP 2006): a
source-to-source software pipeliner for C loops, together with the full
substrate needed to evaluate it — a C-subset frontend, array dependence
analysis, classical loop transformations, a configurable "final
compiler" backend (codegen, register allocation, list scheduling,
machine-level iterative modulo scheduling), cycle-level machine
simulation with cache and power models, and Livermore/Linpack/NAS/STONE
loop corpora.

Typical use::

    from repro import slms, to_source

    result = slms('''
        float A[1000], B[1000];
        float s = 0.0, t;
        for (i = 0; i < 1000; i++) {
            t = A[i] * B[i];
            s = s + t;
        }
    ''')
    print(to_source(result.program, style="paper"))
"""

from repro.core.pipeline import ProgramSLMSResult, slms, slms_loop
from repro.core.slms import SLMSOptions, SLMSResult
from repro.lang import parse_expr, parse_program, parse_stmt, to_source

__version__ = "1.0.0"

__all__ = [
    "ProgramSLMSResult",
    "SLMSOptions",
    "SLMSResult",
    "parse_expr",
    "parse_program",
    "parse_stmt",
    "slms",
    "slms_loop",
    "to_source",
    "__version__",
]
