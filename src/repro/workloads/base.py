"""Workload dataclass shared by every corpus."""

from __future__ import annotations

from dataclasses import dataclass

from repro.lang.ast_nodes import Program
from repro.lang.parser import parse_program_cached


@dataclass(frozen=True)
class Workload:
    """One benchmark loop.

    ``setup`` declares and initializes all data; ``kernel`` is the timed
    region.  ``full_program()`` = setup + kernel; the harness subtracts
    ``setup_program()`` cycles from ``full_program()`` cycles to obtain
    the kernel's cost (the simulator is deterministic, so the
    subtraction is exact).
    """

    name: str
    suite: str
    setup: str
    kernel: str
    description: str = ""

    def full_source(self) -> str:
        return self.setup + "\n" + self.kernel

    def full_program(self) -> Program:
        return parse_program_cached(self.full_source())

    def setup_program(self) -> Program:
        return parse_program_cached(self.setup)

    def validate(self) -> None:
        """Parse + dry-run the full program (raises on any error)."""
        from repro.sim.interp import run_program

        run_program(self.full_program())
