"""NAS kernel benchmark loops (Bailey's seven kernels), simplified.

The original NAS kernel program exercises MXM (matrix multiply), CFFT2D
(2-D FFT), CHOLSKY (Cholesky factorization), BTRIX (block tridiagonal),
GMTRY (Gaussian elimination for geometry), EMIT (vortex emission) and
VPENTA (pentadiagonal inversion).  Each entry below keeps the innermost
loop's dependence/operation structure at a reduced size — the properties
SLMS keys on — with driver code reduced to initialization.
"""

from __future__ import annotations

from typing import List

from repro.workloads.base import Workload


def _wl(name: str, setup: str, kernel: str, description: str) -> Workload:
    return Workload(
        name=name, suite="nas", setup=setup, kernel=kernel, description=description
    )


NAS: List[Workload] = [
    _wl(
        "mxm",
        """
        float ma[32][32], mb[32][32], mc[32][32];
        for (i = 0; i < 32; i++) {
            for (j = 0; j < 32; j++) {
                ma[i][j] = 0.0;
                mb[i][j] = 0.01 * (i + j) + 1.0;
                mc[i][j] = 0.02 * (i - j) + 2.0;
            }
        }
        """,
        """
        for (i = 0; i < 32; i++) {
            for (k = 0; k < 32; k++) {
                for (j = 0; j < 32; j++) {
                    ma[i][j] = ma[i][j] + mb[i][k] * mc[k][j];
                }
            }
        }
        """,
        "MXM: matrix multiply, ikj order (parallel inner loop)",
    ),
    _wl(
        "cfft2d",
        """
        float re[256], im[256], wr[256], wi[256];
        for (i = 0; i < 256; i++) {
            re[i] = 0.01 * i + 1.0;
            im[i] = 0.5 - 0.003 * i;
            wr[i] = 0.8; wi[i] = 0.6;
        }
        float tr, ti;
        """,
        """
        for (k = 0; k < 120; k++) {
            tr = wr[k] * re[k+128] - wi[k] * im[k+128];
            ti = wr[k] * im[k+128] + wi[k] * re[k+128];
            re[k+128] = re[k] - tr;
            im[k+128] = im[k] - ti;
            re[k] = re[k] + tr;
            im[k] = im[k] + ti;
        }
        """,
        "CFFT2D: one radix-2 butterfly stage (big parallel body)",
    ),
    _wl(
        "cholsky",
        """
        float ch[64][64];
        for (i = 0; i < 64; i++) {
            for (j = 0; j < 64; j++) {
                ch[i][j] = 0.001 * (i * 64 + j) + 1.0;
            }
        }
        """,
        """
        for (j = 1; j < 60; j++) {
            for (i = 1; i < 60; i++) {
                ch[i][j] = ch[i][j] - ch[i][j-1] * ch[i-1][j];
            }
        }
        """,
        "CHOLSKY: factorization update (carried deps in both dims)",
    ),
    _wl(
        "btrix",
        """
        float bt1[200], bt2[200], bt3[200], bt4[200], bt5[200];
        for (i = 0; i < 200; i++) {
            bt1[i] = 0.01 * i + 1.0;
            bt2[i] = 0.5 + 0.002 * i;
            bt3[i] = 1.5 - 0.001 * i;
            bt4[i] = 0.25; bt5[i] = 0.0;
        }
        """,
        """
        for (j = 1; j < 180; j++) {
            bt5[j] = bt1[j] * bt2[j] + bt3[j] * bt4[j]
                   + bt1[j+1] * bt2[j-1] + bt3[j+1] * bt4[j-1];
        }
        """,
        "BTRIX: block-tridiagonal row combine (wide fma body)",
    ),
    _wl(
        "gmtry",
        """
        float gm[64][64], rhs[64];
        for (i = 0; i < 64; i++) {
            rhs[i] = 0.3 * i + 1.0;
            for (j = 0; j < 64; j++) {
                gm[i][j] = 0.002 * (i + 2 * j) + 1.0;
            }
        }
        """,
        """
        for (i = 1; i < 60; i++) {
            for (j = 0; j < 60; j++) {
                gm[i][j] = gm[i][j] - gm[i-1][j] * 0.37;
            }
        }
        """,
        "GMTRY: Gaussian elimination sweep (parallel inner loop)",
    ),
    _wl(
        "emit",
        """
        float ex[256], ey[256], gam[256];
        for (i = 0; i < 256; i++) {
            ex[i] = 0.01 * i; ey[i] = 0.5 - 0.001 * i;
            gam[i] = 0.002 * i + 0.1;
        }
        """,
        """
        for (i = 0; i < 200; i++) {
            ex[i] = ex[i] + gam[i] * (ey[i+1] - ey[i]) * 0.5;
            ey[i] = ey[i] + gam[i] * (ex[i+1] - ex[i]) * 0.5;
        }
        """,
        "EMIT: vortex update (cross-coupled streams)",
    ),
    _wl(
        "vpenta",
        """
        float va[256], vb[256], vc[256], vd[256], ve[256], vf[256];
        for (i = 0; i < 256; i++) {
            va[i] = 0.01 * i + 2.0; vb[i] = 0.5;
            vc[i] = 1.0 + 0.002 * i; vd[i] = 0.25;
            ve[i] = 0.1 * i; vf[i] = 0.0;
        }
        """,
        """
        for (i = 2; i < 250; i++) {
            vf[i] = (ve[i] - va[i] * vf[i-2] - vb[i] * vf[i-1]) / vc[i];
        }
        """,
        "VPENTA: pentadiagonal back-substitution (distance-1/2 recurrence)",
    ),
]
