"""Corpus registry: lookup and enumeration over all suites."""

from __future__ import annotations

from typing import Dict, List

from repro.workloads.base import Workload
from repro.workloads.linpack import LINPACK
from repro.workloads.livermore import LIVERMORE
from repro.workloads.nas import NAS
from repro.workloads.stone import STONE

_SUITES: Dict[str, List[Workload]] = {
    "livermore": LIVERMORE,
    "linpack": LINPACK,
    "nas": NAS,
    "stone": STONE,
}


def all_workloads() -> List[Workload]:
    """Every workload, livermore → linpack → nas → stone."""
    out: List[Workload] = []
    for suite in ("livermore", "linpack", "nas", "stone"):
        out.extend(_SUITES[suite])
    return out


def by_suite(suite: str) -> List[Workload]:
    try:
        return list(_SUITES[suite])
    except KeyError:
        raise ValueError(
            f"unknown suite {suite!r}; choose from {sorted(_SUITES)}"
        ) from None


def get_workload(name: str) -> Workload:
    everything = all_workloads()
    for wl in everything:
        if wl.name == name:
            return wl
    valid = ", ".join(wl.name for wl in everything)
    raise ValueError(f"unknown workload {name!r}; valid names: {valid}")
