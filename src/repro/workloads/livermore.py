"""The 24 Livermore loops (McMahon's Fortran kernels) in the C subset.

Each kernel keeps the original's loop-carried dependence structure and
operation mix — that is what drives SLMS's decisions — while the
surrounding driver code is reduced to array initialization.  Kernels
whose original uses indirect indexing (13, 14, 16) keep it, which makes
the dependence analysis decline them: the paper's Tiny had the same
behaviour, and the harness reports them as "SLMS not applied".

Sizes are scaled to a few hundred iterations so a full figure sweep
stays laptop-fast; the *relative* costs are what the figures use.
"""

from __future__ import annotations

from typing import List

from repro.workloads.base import Workload

N = 200  # base loop length
_COMMON = f"""
float x[512], y[512], z[512], u[512], v[512], w[512];
float q = 0.5, r = 0.25, t = 0.35, a11 = 1.5;
for (i = 0; i < 512; i++) {{
    x[i] = 0.01 * i + 1.0;
    y[i] = 0.02 * i + 2.0;
    z[i] = 0.015 * i + 0.5;
    u[i] = 0.004 * i + 3.0;
    v[i] = 1.0 + 0.001 * i;
    w[i] = 0.5 + 0.003 * i;
}}
"""


def _wl(name: str, kernel: str, description: str, setup: str = _COMMON) -> Workload:
    return Workload(
        name=name,
        suite="livermore",
        setup=setup,
        kernel=kernel,
        description=description,
    )


LIVERMORE: List[Workload] = [
    _wl(
        "kernel1",
        f"""
        for (k = 0; k < {N}; k++)
            x[k] = q + y[k] * (r * z[k+10] + t * z[k+11]);
        """,
        "hydro fragment: fully parallel, multiply-add chain",
    ),
    _wl(
        "kernel2",
        f"""
        for (k = 0; k < {N}; k += 2) {{
            x[k] = x[k] - z[k] * x[k+1] - z[k+1] * x[k+2];
            x[k+1] = x[k+1] - z[k+1] * x[k+2];
        }}
        """,
        "ICCG excerpt (simplified): strided elimination step",
    ),
    _wl(
        "kernel3",
        f"""
        float q3 = 0.0;
        for (k = 0; k < {N}; k++)
            q3 = q3 + z[k] * x[k];
        """,
        "inner product: accumulator recurrence",
    ),
    _wl(
        "kernel4",
        f"""
        for (k = 5; k < {N}; k += 5)
            x[k] = x[k] - x[k-5] * y[k] - x[k-4] * y[k+1];
        """,
        "banded linear equations (simplified): strided recurrence",
    ),
    _wl(
        "kernel5",
        f"""
        for (i = 1; i < {N}; i++)
            x[i] = z[i] * (y[i] - x[i-1]);
        """,
        "tri-diagonal elimination: tight serial recurrence",
    ),
    _wl(
        "kernel6",
        f"""
        for (i = 1; i < {N}; i++)
            w[i] = w[i] + y[i] * w[i-1];
        """,
        "general linear recurrence (simplified)",
    ),
    _wl(
        "kernel7",
        f"""
        for (k = 0; k < {N}; k++)
            x[k] = u[k] + r * (z[k] + r * y[k]) +
                   t * (u[k+3] + r * (u[k+2] + r * u[k+1]) +
                   t * (u[k+6] + q * (u[k+5] + q * u[k+4])));
        """,
        "equation of state fragment: wide parallel body",
    ),
    _wl(
        "kernel8",
        f"""
        for (ky = 1; ky < {N}; ky++) {{
            DU1[ky] = U1[ky+1] - U1[ky-1];
            DU2[ky] = U2[ky+1] - U2[ky-1];
            DU3[ky] = U3[ky+1] - U3[ky-1];
            U1[ky+101] = U1[ky] + a11 * DU1[ky] + a11 * DU2[ky] + a11 * DU3[ky];
            U2[ky+101] = U2[ky] + a11 * DU1[ky] + a11 * DU2[ky] + a11 * DU3[ky];
            U3[ky+101] = U3[ky] + a11 * DU1[ky] + a11 * DU2[ky] + a11 * DU3[ky];
        }}
        """,
        "ADI integration (paper's kernel 8: big body, no carried deps)",
        setup=f"""
        float DU1[320], DU2[320], DU3[320], U1[320], U2[320], U3[320];
        float a11 = 1.5;
        for (i = 0; i < 320; i++) {{
            U1[i] = 1.0 + 0.001 * i; U2[i] = 2.0 - 0.001 * i;
            U3[i] = 0.5 + 0.002 * i;
            DU1[i] = 0.0; DU2[i] = 0.0; DU3[i] = 0.0;
        }}
        """,
    ),
    _wl(
        "kernel9",
        f"""
        for (i = 0; i < {N}; i++)
            x[i] = x[i] + q * y[i] + r * z[i] + t * u[i]
                 + 0.0021 * v[i] + 0.0039 * w[i];
        """,
        "numerical integration: parallel multiply-accumulate fan-in",
    ),
    _wl(
        "kernel10",
        f"""
        for (i = 0; i < 60; i++) {{
            ar = cx[i][4];
            br = ar - px[i][4];
            px[i][4] = ar;
            cr = br - px[i][5];
            px[i][5] = br;
            ar = cr - px[i][6];
            px[i][6] = cr;
            br = ar - px[i][7];
            px[i][7] = ar;
            cr = br - px[i][8];
            px[i][8] = br;
            px[i][10] = cr - px[i][9];
            px[i][9] = cr;
        }}
        """,
        "numerical differentiation: many loop temps (the Pentium "
        "register-pressure case)",
        setup="""
        float ar, br, cr;
        float px[64][16], cx[64][16];
        for (i = 0; i < 64; i++) {
            for (j = 0; j < 16; j++) {
                px[i][j] = 0.01 * (i + j) + 1.0;
                cx[i][j] = 0.02 * (i * j + 1);
            }
        }
        """,
    ),
    _wl(
        "kernel11",
        f"""
        for (k = 1; k < {N}; k++)
            x[k] = x[k-1] + y[k];
        """,
        "first sum: prefix-sum serial recurrence",
    ),
    _wl(
        "kernel12",
        f"""
        for (k = 0; k < {N}; k++)
            x[k] = y[k+1] - y[k];
        """,
        "first difference: fully parallel",
    ),
    _wl(
        "kernel13",
        f"""
        for (ip = 0; ip < 128; ip++) {{
            i1 = ix[ip];
            p2[ip] = p2[ip] + b2[i1];
        }}
        """,
        "2-D particle in cell (simplified): indirect indexing; the §4 "
        "filter catches it (ratio 0.857) before the non-affine gather "
        "would",
        setup="""
        int i1;
        int ix[256];
        float p2[256], b2[256];
        for (i = 0; i < 256; i++) {
            ix[i] = (i * 7) % 128;
            p2[i] = 0.1 * i; b2[i] = 0.2 * i;
        }
        """,
    ),
    _wl(
        "kernel14",
        f"""
        for (k = 0; k < 128; k++) {{
            ii = ir[k];
            xx[k] = xx[k] + vx[k] * grd[ii];
        }}
        """,
        "1-D particle in cell (simplified): gather through ir[k]",
        setup="""
        int ii;
        int ir[256];
        float vx[256], xx[256], grd[256];
        for (i = 0; i < 256; i++) {
            ir[i] = (i * 3) % 200;
            vx[i] = 0.001 * i; xx[i] = 0.5 * i; grd[i] = 2.0 + 0.01 * i;
        }
        """,
    ),
    _wl(
        "kernel15",
        f"""
        for (i = 1; i < 31; i++) {{
            for (j = 1; j < 31; j++) {{
                vy[i][j] = vs[i][j-1] * vs[i][j] + vy[i][j];
            }}
        }}
        """,
        "casual Fortran 2-D fragment (simplified)",
        setup="""
        float vy[32][32], vs[32][32];
        for (i = 0; i < 32; i++) {
            for (j = 0; j < 32; j++) {
                vy[i][j] = 0.01 * (i + j);
                vs[i][j] = 1.0 + 0.001 * i * j;
            }
        }
        """,
    ),
    _wl(
        "kernel16",
        f"""
        m16 = 0;
        for (k = 1; k < {N}; k++) {{
            if (x[k] < x[k-1]) m16 = m16 + 1;
            if (y[k] * 0.99 > z[k]) m16 = m16 + 2;
        }}
        """,
        "Monte Carlo search (simplified to its branchy scan)",
        setup=_COMMON + "int m16;\n",
    ),
    _wl(
        "kernel17",
        f"""
        for (k = 1; k < {N}; k++) {{
            if (z[k] < 1.0) {{
                x[k] = y[k] + z[k] * 0.5;
            }} else {{
                x[k] = y[k] - z[k] * 0.3;
            }}
        }}
        """,
        "implicit conditional computation",
    ),
    _wl(
        "kernel18",
        f"""
        for (j = 1; j < 39; j++) {{
            for (k = 1; k < 39; k++) {{
                zu[j][k] = zu[j][k] + 0.175 *
                    (za[j][k] * (zv[j][k] - zv[j][k+1]) -
                     zb[j][k] * (zv[j][k] - zv[j-1][k]));
            }}
        }}
        """,
        "2-D explicit hydrodynamics fragment",
        setup="""
        float za[40][40], zb[40][40], zu[40][40], zv[40][40];
        for (i = 0; i < 40; i++) {
            for (j = 0; j < 40; j++) {
                za[i][j] = 0.01 * (i + j) + 1.0;
                zb[i][j] = 0.02 * (i - j) + 2.0;
                zu[i][j] = 1.0; zv[i][j] = 0.5;
            }
        }
        """,
    ),
    _wl(
        "kernel19",
        f"""
        for (k = 1; k < {N}; k++)
            x[k] = x[k] + y[k] * x[k-1] - z[k] * x[k];
        """,
        "general linear recurrence (forward sweep)",
    ),
    _wl(
        "kernel20",
        f"""
        for (k = 1; k < {N}; k++) {{
            dk = y[k] / (x[k-1] + z[k] + 0.5);
            x[k] = dk * (u[k] + 1.0);
        }}
        """,
        "discrete ordinates transport: divide inside a recurrence",
        setup=_COMMON + "float dk;\n",
    ),
    _wl(
        "kernel21",
        """
        for (i = 0; i < 24; i++) {
            for (j = 0; j < 24; j++) {
                for (k = 0; k < 24; k++) {
                    pa[i][j] = pa[i][j] + pb[i][k] * pc[k][j];
                }
            }
        }
        """,
        "matrix * matrix product (triple nest; inner is an accumulator)",
        setup="""
        float pa[24][24], pb[24][24], pc[24][24];
        for (i = 0; i < 24; i++) {
            for (j = 0; j < 24; j++) {
                pa[i][j] = 0.0;
                pb[i][j] = 0.01 * (i + 2 * j) + 1.0;
                pc[i][j] = 0.02 * (2 * i + j) + 0.5;
            }
        }
        """,
    ),
    _wl(
        "kernel22",
        f"""
        for (k = 0; k < {N}; k++) {{
            yk = u[k] / v[k];
            w[k] = x[k] / (exp(yk) - 1.0);
        }}
        """,
        "Planckian distribution: exp call — SLMS declines (opaque call)",
        setup=_COMMON + "float yk;\n",
    ),
    _wl(
        "kernel23",
        f"""
        for (j = 1; j < 39; j++) {{
            for (k = 1; k < 39; k++) {{
                qa = zz[j][k+1] * zr[j][k] + zz[j][k-1] * 0.5 +
                     zz[j+1][k] * 0.25 + zz[j-1][k] * 0.125;
                zz[j][k] = zz[j][k] + 0.3 * (qa - zz[j][k]);
            }}
        }}
        """,
        "2-D implicit hydrodynamics fragment",
        setup="""
        float qa;
        float zz[40][40], zr[40][40];
        for (i = 0; i < 40; i++) {
            for (j = 0; j < 40; j++) {
                zz[i][j] = 0.01 * (i + j) + 0.1;
                zr[i][j] = 0.02 * i - 0.01 * j + 2.0;
            }
        }
        """,
    ),
    _wl(
        "kernel24",
        f"""
        m24 = 0;
        for (k = 1; k < {N}; k++)
            if (x[k] < x[m24]) m24 = k;
        """,
        "location of first minimum (the paper's conditional kernel 24) — "
        "x[m24] is indirect through a scalar, SLMS declines",
        setup=_COMMON + "int m24;\n",
    ),
]
