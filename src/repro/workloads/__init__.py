"""Benchmark loop corpora in the C subset.

The paper evaluates SLMS on the Livermore loops, Linpack loops, the NAS
kernel benchmark and "STONE"; these modules carry faithful (sometimes
simplified — see each docstring) C-subset versions of those kernels.
Each :class:`Workload` separates *setup* (declarations + data
initialization) from the *kernel* (the timed loops) so the harness can
subtract setup cycles exactly.
"""

from repro.workloads.base import Workload
from repro.workloads.corpus import (
    all_workloads,
    by_suite,
    get_workload,
)
from repro.workloads.linpack import LINPACK
from repro.workloads.livermore import LIVERMORE
from repro.workloads.nas import NAS
from repro.workloads.stone import STONE

__all__ = [
    "LINPACK",
    "LIVERMORE",
    "NAS",
    "STONE",
    "Workload",
    "all_workloads",
    "by_suite",
    "get_workload",
]
