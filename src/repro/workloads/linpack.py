"""Linpack loops in the C subset.

The paper's figures name ``daxpy``, ``ddot``/``ddot2``, ``dscal``,
``idamax``/``idamax2`` and ``dmxpy``; the ``…2`` variants are the
2-unrolled source forms Linpack ships for loop-unrolled BLAS.  These
loops are small, memory-heavy and often floating-point bound — exactly
the population where the paper saw both SLMS's wins and its Itanium
floating-point "bad cases".
"""

from __future__ import annotations

from typing import List

from repro.workloads.base import Workload

N = 240
_SETUP = f"""
float dx[512], dy[512];
float da = 0.35;
for (i = 0; i < 512; i++) {{
    dx[i] = 0.01 * i + 0.3;
    dy[i] = 0.5 - 0.002 * i;
}}
"""


def _wl(name: str, kernel: str, description: str, setup: str = _SETUP) -> Workload:
    return Workload(
        name=name, suite="linpack", setup=setup, kernel=kernel, description=description
    )


LINPACK: List[Workload] = [
    _wl(
        "daxpy",
        f"""
        for (i = 0; i < {N}; i++)
            dy[i] = dy[i] + da * dx[i];
        """,
        "y += a*x: one fma per element",
    ),
    _wl(
        "ddot",
        f"""
        float dtemp = 0.0;
        for (i = 0; i < {N}; i++)
            dtemp = dtemp + dx[i] * dy[i];
        """,
        "dot product: accumulator recurrence",
    ),
    _wl(
        "ddot2",
        f"""
        float dt1 = 0.0, dt2 = 0.0, dtemp = 0.0;
        for (i = 0; i < {N}; i += 2) {{
            dt1 = dt1 + dx[i] * dy[i];
            dt2 = dt2 + dx[i+1] * dy[i+1];
        }}
        dtemp = dt1 + dt2;
        """,
        "2-unrolled dot product (Linpack's unrolled form)",
    ),
    _wl(
        "dscal",
        f"""
        for (i = 0; i < {N}; i++)
            dx[i] = da * dx[i];
        """,
        "x = a*x: scale in place (memory-ref heavy)",
    ),
    _wl(
        "idamax",
        f"""
        int itemp = 0;
        float dmax = 0.0;
        dmax = abs(dx[0]);
        for (i = 1; i < {N}; i++) {{
            dm = abs(dx[i]);
            if (dm > dmax) {{
                itemp = i;
                dmax = dm;
            }}
        }}
        """,
        "index of max |x|: conditional reduction",
        setup=_SETUP + "float dm;\n",
    ),
    _wl(
        "idamax2",
        f"""
        int itemp = 0;
        float dmax = 0.0;
        dmax = abs(dx[0]);
        for (i = 1; i < {N}; i += 2) {{
            dm = abs(dx[i]);
            if (dm > dmax) {{ itemp = i; dmax = dm; }}
            dm2 = abs(dx[i+1]);
            if (dm2 > dmax) {{ itemp = i + 1; dmax = dm2; }}
        }}
        """,
        "2-unrolled idamax (the paper's negative ICC case)",
        setup=_SETUP + "float dm, dm2;\n",
    ),
    _wl(
        "dmxpy",
        """
        for (j = 0; j < 48; j++) {
            for (i = 0; i < 48; i++) {
                yv[i] = yv[i] + xv[j] * m2[i][j];
            }
        }
        """,
        "matrix-vector multiply-accumulate (column sweep)",
        setup="""
        float m2[48][48], xv[48], yv[48];
        for (i = 0; i < 48; i++) {
            xv[i] = 0.02 * i + 0.1;
            yv[i] = 0.5;
            for (j = 0; j < 48; j++) {
                m2[i][j] = 0.001 * (i * 48 + j) + 0.2;
            }
        }
        """,
    ),
    _wl(
        "dgefa_elim",
        f"""
        for (i = 0; i < {N}; i++)
            col[i] = col[i] + 0.75 * piv[i];
        """,
        "Gaussian elimination inner loop (a daxpy over a column)",
        setup="""
        float col[512], piv[512];
        for (i = 0; i < 512; i++) {
            col[i] = 0.01 * i + 1.0;
            piv[i] = 0.5 - 0.001 * i;
        }
        """,
    ),
]
