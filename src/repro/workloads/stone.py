"""STONE benchmark loops.

The paper cites "the STONE benchmark" without a reference; the loops
here follow the classic *-stone* (Whetstone/Dhrystone-style) module
structure — array arithmetic modules, conditional modules, integer
modules and a trigonometric-flavoured module — restricted to the C
subset.  What matters for the reproduction is the population's mix of
MI counts, memory-ref ratios and control flow, which these preserve.
"""

from __future__ import annotations

from typing import List

from repro.workloads.base import Workload

N = 220
_SETUP = f"""
float e1[512], e2[512], e3[512], e4[512];
float t1 = 0.499975, t2 = 2.0;
for (i = 0; i < 512; i++) {{
    e1[i] = 1.0 + 0.002 * i;
    e2[i] = -1.0 + 0.003 * i;
    e3[i] = 0.5 - 0.001 * i;
    e4[i] = 0.25 + 0.0005 * i;
}}
"""


def _wl(name: str, kernel: str, description: str, setup: str = _SETUP) -> Workload:
    return Workload(
        name=name, suite="stone", setup=setup, kernel=kernel, description=description
    )


STONE: List[Workload] = [
    _wl(
        "stone1",
        f"""
        for (i = 0; i < {N}; i++) {{
            e1[i] = (e1[i] + e2[i] + e3[i] - e4[i]) * t1;
            e2[i] = (e1[i] + e2[i] - e3[i] + e4[i]) * t1;
        }}
        """,
        "module 1: coupled array arithmetic",
    ),
    _wl(
        "stone2",
        f"""
        for (i = 0; i < {N}; i++) {{
            e3[i] = (e1[i+1] - e2[i]) * t1;
            e4[i] = (e1[i] + e2[i+1]) * t1;
            e1[i] = e3[i] * 0.5 + e4[i] * 0.5;
        }}
        """,
        "module 2: three-statement pipeline-friendly body",
    ),
    _wl(
        "stone3",
        f"""
        for (i = 1; i < {N}; i++)
            e2[i] = e2[i-1] * t1 + e1[i];
        """,
        "module 3: first-order recurrence",
    ),
    _wl(
        "stone4",
        f"""
        for (i = 0; i < {N}; i++) {{
            if (e1[i] > 0.0) {{
                e2[i] = e1[i] * t1;
            }} else {{
                e2[i] = e1[i] * t2;
            }}
        }}
        """,
        "module 4: conditional select body",
    ),
    _wl(
        "stone5",
        f"""
        int k5 = 0;
        for (i = 0; i < {N}; i++) {{
            k5 = k5 + 1;
            if (k5 > 9) k5 = k5 - 10;
            e3[i] = e3[i] + 0.125 * k5;
        }}
        """,
        "module 5: integer counter + float update",
    ),
    _wl(
        "stone6",
        f"""
        for (i = 0; i < {N}; i++) {{
            e4[i] = t1 * (e1[i] * e1[i] + e2[i] * e2[i])
                  + t2 * (e3[i] * e3[i] + 0.5 * e1[i] * e2[i]);
        }}
        """,
        "module 6: arithmetic-dense body (trig module's FP load)",
    ),
    _wl(
        "stone7",
        f"""
        for (i = 0; i < {N}; i++) {{
            e1[i] = e2[i];
            e2[i] = e3[i];
            e3[i] = e1[i];
        }}
        """,
        "module 7: pure copies — high memory-ref ratio (filter case)",
    ),
    _wl(
        "stone8",
        f"""
        float s8 = 1.0;
        for (i = 0; i < {N}; i++) {{
            s8 = (s8 + e1[i] * t1) * 0.9995;
            e4[i] = s8;
        }}
        """,
        "module 8: scalar chain feeding stores",
    ),
]
