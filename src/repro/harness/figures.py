"""Per-figure experiment definitions (paper §9, Figures 14–22).

Each figure function returns a :class:`FigureResult` whose series carry
the same quantity the paper plots (speedup, gap closure, power/cycle
improvement, bundle counts).  ``python -m repro.harness.figures <id>``
prints any figure; the benchmark suite regenerates all of them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.core.slms import SLMSOptions
from repro.harness.experiment import run_experiment, run_suite
from repro.machines.presets import arm7tdmi, itanium2, pentium, power4
from repro.workloads import by_suite
from repro.workloads.base import Workload


@dataclass
class FigureResult:
    """One reproduced figure: named series over workloads."""

    figure: str
    title: str
    series: Dict[str, Dict[str, float]] = field(default_factory=dict)
    notes: List[str] = field(default_factory=list)

    def workloads(self) -> List[str]:
        names: List[str] = []
        for values in self.series.values():
            for name in values:
                if name not in names:
                    names.append(name)
        return names


def _workloads(suites: List[str], quick: bool) -> List[Workload]:
    out: List[Workload] = []
    for suite in suites:
        items = by_suite(suite)
        out.extend(items[:3] if quick else items)
    return out


def _speedup_series(
    figure: str,
    title: str,
    suites: List[str],
    machine,
    compiler: str,
    quick: bool,
    options: Optional[SLMSOptions] = None,
) -> FigureResult:
    result = FigureResult(figure=figure, title=title)
    series: Dict[str, float] = {}
    applied_notes = []
    for res in run_suite(_workloads(suites, quick), machine, compiler, options):
        series[res.workload] = res.speedup
        if not res.slms_applied:
            applied_notes.append(
                f"{res.workload}: SLMS declined ({res.slms_reason})"
            )
    result.series["slms_speedup"] = series
    result.notes.extend(applied_notes)
    return result


# ---------------------------------------------------------------------------
# Figures 14/15: SLMS over the weak compiler (GCC) on the VLIW machine
# ---------------------------------------------------------------------------


def fig14(quick: bool = False) -> FigureResult:
    """Livermore & Linpack over GCC (Itanium II)."""
    return _speedup_series(
        "fig14",
        "Livermore & Linpack over GCC -O3 (Itanium II)",
        ["livermore", "linpack"],
        itanium2(),
        "gcc_O3",
        quick,
    )


def fig15(quick: bool = False) -> FigureResult:
    """STONE & NAS over GCC (Itanium II)."""
    return _speedup_series(
        "fig15",
        "STONE & NAS over GCC -O3 (Itanium II)",
        ["stone", "nas"],
        itanium2(),
        "gcc_O3",
        quick,
    )


# ---------------------------------------------------------------------------
# Figure 16: SLMS without -O3 closes the gap to -O3 (ICC)
# ---------------------------------------------------------------------------


def fig16(quick: bool = False) -> FigureResult:
    """For each loop: speedup of (SLMS @ -O0) vs speedup of (-O3),
    both relative to the plain -O0 build.  SLMS closing the gap means
    the first series approaches the second."""
    result = FigureResult(
        figure="fig16",
        title="SLMS without -O3 vs the -O3 gap (ICC, Itanium II)",
    )
    machine = itanium2()
    slms_at_o0: Dict[str, float] = {}
    o3_gap: Dict[str, float] = {}
    closure: Dict[str, float] = {}
    workloads = _workloads(["livermore"], quick)
    weak_runs = run_suite(workloads, machine, "icc_O0")
    strong_runs = run_suite(workloads, machine, "icc_O3")
    for wl, weak, strong in zip(workloads, weak_runs, strong_runs):
        # weak.base = -O0 original; weak.slms = -O0 + SLMS;
        # strong.base = -O3 original.
        slms_at_o0[wl.name] = weak.speedup
        gap = weak.base_cycles / max(1, strong.base_cycles)
        o3_gap[wl.name] = gap
        if gap > 1.0:
            closure[wl.name] = min(
                1.0, (weak.speedup - 1.0) / (gap - 1.0)
            )
        else:
            closure[wl.name] = 1.0
    result.series["slms_at_O0_speedup"] = slms_at_o0
    result.series["O3_speedup"] = o3_gap
    result.series["gap_closed_fraction"] = closure
    return result


# ---------------------------------------------------------------------------
# Figure 17: superscalar (Pentium), GCC with and without -O3
# ---------------------------------------------------------------------------


def fig17(quick: bool = False) -> FigureResult:
    result = FigureResult(
        figure="fig17",
        title="SLMS on a superscalar (Pentium), GCC ±O3",
    )
    machine = pentium()
    for label, preset in (("speedup_O0", "gcc_O0"), ("speedup_O3", "gcc_O3")):
        series: Dict[str, float] = {}
        for res in run_suite(
            _workloads(["livermore", "linpack"], quick), machine, preset
        ):
            series[res.workload] = res.speedup
        result.series[label] = series
    return result


# ---------------------------------------------------------------------------
# Figures 18/19: SLMS over the strong compiler (ICC with machine-level MS)
# ---------------------------------------------------------------------------


def _strong_compiler_figure(
    figure: str, title: str, suites: List[str], quick: bool
) -> FigureResult:
    result = FigureResult(figure=figure, title=title)
    series: Dict[str, float] = {}
    ims_counts = {"both": 0, "only_before": 0, "only_after": 0, "neither": 0}
    for res in run_suite(_workloads(suites, quick), itanium2(), "icc_O3"):
        series[res.workload] = res.speedup
        if res.ims_base and res.ims_slms:
            ims_counts["both"] += 1
        elif res.ims_base:
            ims_counts["only_before"] += 1
        elif res.ims_slms:
            ims_counts["only_after"] += 1
        else:
            ims_counts["neither"] += 1
    result.series["slms_speedup"] = series
    result.notes.append(
        "machine-level MS applied (before SLMS, after SLMS): "
        f"both={ims_counts['both']}, only-before={ims_counts['only_before']}, "
        f"only-after={ims_counts['only_after']}, neither={ims_counts['neither']}"
    )
    return result


def fig18(quick: bool = False) -> FigureResult:
    return _strong_compiler_figure(
        "fig18",
        "Livermore & Linpack over ICC -O3 (Itanium II, machine MS on)",
        ["livermore", "linpack"],
        quick,
    )


def fig19(quick: bool = False) -> FigureResult:
    return _strong_compiler_figure(
        "fig19",
        "STONE & NAS over ICC -O3 (Itanium II, machine MS on)",
        ["stone", "nas"],
        quick,
    )


# ---------------------------------------------------------------------------
# Figure 20: XLC / POWER4
# ---------------------------------------------------------------------------


def fig20(quick: bool = False) -> FigureResult:
    return _speedup_series(
        "fig20",
        "Livermore & Linpack + NAS over XLC (POWER4)",
        ["livermore", "linpack", "nas"],
        power4(),
        "xlc_O3",
        quick,
    )


# ---------------------------------------------------------------------------
# Figures 21/22: ARM7 power and cycles
# ---------------------------------------------------------------------------


def fig21(quick: bool = False) -> FigureResult:
    result = FigureResult(
        figure="fig21",
        title="ARM7TDMI power dissipation improvement (%)",
    )
    series: Dict[str, float] = {}
    for res in run_suite(
        _workloads(["livermore", "linpack"], quick), arm7tdmi(), "arm_gcc"
    ):
        series[res.workload] = (1.0 - res.slms_energy / res.base_energy) * 100.0
    result.series["power_improvement_pct"] = series
    result.notes.append(
        "positive = SLMS reduces energy; the paper stresses SLMS must be "
        "applied selectively on the ARM"
    )
    return result


def fig22(quick: bool = False) -> FigureResult:
    result = FigureResult(
        figure="fig22",
        title="ARM7TDMI total cycle improvement (%)",
    )
    series: Dict[str, float] = {}
    for res in run_suite(
        _workloads(["livermore", "linpack"], quick), arm7tdmi(), "arm_gcc"
    ):
        series[res.workload] = (1.0 - res.slms_cycles / res.base_cycles) * 100.0
    result.series["cycle_improvement_pct"] = series
    return result


# ---------------------------------------------------------------------------
# In-text §9.2 evidence: bundle counts on the EPIC machine
# ---------------------------------------------------------------------------


def text_bundles(quick: bool = False) -> FigureResult:
    """Kernel-8 and fma-loop effective bundles (cycles) per *iteration*
    before vs after SLMS (paper: kernel 8 went 23 → 16 bundles/body;
    the fma loop 5.8 → 4 bundles/iteration).

    Measured as kernel cycles divided by the iteration count, which
    stays comparable when SLMS+MVE makes one kernel execution cover
    several source iterations.
    """
    del quick
    from repro.workloads import get_workload

    result = FigureResult(
        figure="text_bundles",
        title="Effective bundles per iteration before/after SLMS (Itanium II)",
    )
    machine = itanium2()
    fma_loop = Workload(
        name="fma_loop",
        suite="text",
        setup=(
            "float X[300];\n"
            "for (i = 0; i < 300; i++) { X[i] = 1.0 + 0.001 * i; }\n"
        ),
        kernel=(
            "for (k = 1; k < 250; k++) {\n"
            "    X[k] = X[k-1] * X[k-1] * X[k-1] * X[k-1] * X[k-1] +\n"
            "           X[k+1] * X[k+1] * X[k+1] * X[k+1] * X[k+1];\n"
            "}\n"
        ),
        description="§9.2 floating-point intensive loop",
    )
    iterations = {"kernel8": 199, "fma_loop": 249}
    before: Dict[str, float] = {}
    after: Dict[str, float] = {}
    for wl in (get_workload("kernel8"), fma_loop):
        res = run_experiment(wl, machine, "icc_O3")
        before[wl.name] = res.base_cycles / iterations[wl.name]
        after[wl.name] = res.slms_cycles / iterations[wl.name]
    result.series["bundles_before"] = before
    result.series["bundles_after"] = after
    return result


FIGURES: Dict[str, Callable[[bool], FigureResult]] = {
    "fig14": fig14,
    "fig15": fig15,
    "fig16": fig16,
    "fig17": fig17,
    "fig18": fig18,
    "fig19": fig19,
    "fig20": fig20,
    "fig21": fig21,
    "fig22": fig22,
    "text_bundles": text_bundles,
}


def run_figure(figure: str, quick: bool = False) -> FigureResult:
    try:
        fn = FIGURES[figure]
    except KeyError:
        raise ValueError(
            f"unknown figure {figure!r}; choose from {sorted(FIGURES)}"
        ) from None
    return fn(quick)


def main(argv: Optional[List[str]] = None) -> None:  # pragma: no cover
    import argparse

    from repro.harness.report import render_figure

    parser = argparse.ArgumentParser(description="Reproduce a paper figure")
    parser.add_argument("figure", choices=sorted(FIGURES) + ["all"])
    parser.add_argument("--quick", action="store_true")
    args = parser.parse_args(argv)
    targets = sorted(FIGURES) if args.figure == "all" else [args.figure]
    for figure in targets:
        print(render_figure(run_figure(figure, quick=args.quick)))
        print()


if __name__ == "__main__":  # pragma: no cover
    main()
