"""Content-addressed on-disk cache for experiment results.

Experiments are pure functions of their inputs: the simulator is
deterministic, so an :class:`~repro.harness.experiment.ExperimentResult`
is fully determined by the kernel source, the SLMS options, the machine
model, the final-compiler preset and the engine version.  The cache key
is the SHA-256 of exactly that tuple (canonical JSON, sorted keys), so

* editing a workload's setup/kernel source invalidates its entries;
* changing any :class:`~repro.core.slms.SLMSOptions` field, machine
  parameter or compiler pass toggle produces a different key;
* bumping :data:`~repro.harness.engine.ENGINE_VERSION` (required
  whenever accounting or transform semantics change results)
  invalidates everything at once.

Entries are one JSON file each under ``<cache_dir>/<key[:2]>/<key>.json``
(sharded to keep directories small), written atomically via rename.
The default directory is ``~/.cache/slms/experiments``; override with
the ``SLMS_CACHE_DIR`` environment variable or the ``cache_dir``
argument.  All failures (unreadable entry, read-only filesystem) degrade
to cache misses — caching is an optimization, never a correctness
dependency.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Any, Dict, Optional

from repro.backend.compiler import CompilerConfig
from repro.core.slms import SLMSOptions
from repro.harness.experiment import ExperimentResult
from repro.machines.model import MachineModel
from repro.workloads.base import Workload


def default_cache_dir() -> Path:
    env = os.environ.get("SLMS_CACHE_DIR")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "slms" / "experiments"


def _jsonable(value: Any) -> Any:
    """Canonical JSON-compatible form of dataclass/mapping inputs."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: _jsonable(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    return value


def experiment_key(
    workload: Workload,
    machine: MachineModel,
    compiler: CompilerConfig,
    options: Optional[SLMSOptions],
    verify: bool,
    engine_version: str,
) -> str:
    """Content hash identifying one experiment's full input tuple."""
    payload = {
        "engine": engine_version,
        "workload": {
            "name": workload.name,
            "suite": workload.suite,
            "setup": workload.setup,
            "kernel": workload.kernel,
        },
        "machine": _jsonable(machine),
        "compiler": _jsonable(compiler),
        "options": _jsonable(options or SLMSOptions()),
        "verify": bool(verify),
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class ExperimentCache:
    """Get/put of :class:`ExperimentResult` keyed by content hash.

    Counts hits/misses/evictions per instance (session counters) and —
    best effort — accumulates them into a ``counters.json`` sidecar in
    the cache directory via :meth:`flush_counters`, so ``slms cache
    stats`` can report lifetime traffic, not just on-disk entry counts.
    """

    COUNTER_NAMES = ("hits", "misses", "evictions")

    def __init__(self, cache_dir: Optional[str | Path] = None):
        self.dir = Path(cache_dir) if cache_dir else default_cache_dir()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._flushed = {name: 0 for name in self.COUNTER_NAMES}

    def _path(self, key: str) -> Path:
        return self.dir / key[:2] / f"{key}.json"

    # -- lifetime counters ---------------------------------------------
    @property
    def _counters_path(self) -> Path:
        return self.dir / "counters.json"

    def lifetime_counters(self) -> Dict[str, int]:
        """Accumulated counters from the sidecar (zeros when absent)."""
        try:
            with open(self._counters_path, "r", encoding="utf-8") as handle:
                data = json.load(handle)
            return {
                name: int(data.get(name, 0)) for name in self.COUNTER_NAMES
            }
        except (OSError, ValueError, TypeError):
            return {name: 0 for name in self.COUNTER_NAMES}

    def flush_counters(self) -> None:
        """Add this session's not-yet-flushed traffic to the sidecar.

        Idempotent across repeated calls; all I/O failures are silently
        ignored (counters are observability, never correctness).
        """
        session = {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }
        delta = {
            name: session[name] - self._flushed[name]
            for name in self.COUNTER_NAMES
        }
        if not any(delta.values()):
            return
        totals = self.lifetime_counters()
        for name in self.COUNTER_NAMES:
            totals[name] += delta[name]
        try:
            self.dir.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                dir=self.dir, prefix=".tmp-counters-", suffix=".json"
            )
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as handle:
                    json.dump(totals, handle)
                os.replace(tmp, self._counters_path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except OSError:
            return
        self._flushed = dict(session)

    def get(self, key: str) -> Optional[ExperimentResult]:
        path = self._path(key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                data = json.load(handle)
        except OSError:
            self.misses += 1
            return None
        except ValueError:
            # Undecodable entry (torn write, bit rot, injected chaos):
            # quarantine it so every future run gets a clean miss
            # instead of re-parsing the same bad file forever.
            self._quarantine(path)
            self.misses += 1
            return None
        try:
            result = ExperimentResult.from_dict(data)
        except (ValueError, KeyError, TypeError):
            self._quarantine(path)
            self.misses += 1
            return None
        self.hits += 1
        return result

    def _quarantine(self, path: Path) -> None:
        """Move a corrupt entry aside (``*.json.corrupt``) and count it.

        Quarantined files are invisible to :meth:`entries` (different
        suffix) but stay on disk for post-mortems; the rename counts as
        an eviction in the session and ``counters.json`` totals shown
        by ``slms cache stats``.
        """
        try:
            path.rename(path.with_name(path.name + ".corrupt"))
        except OSError:
            return
        self.evictions += 1
        self.flush_counters()

    def corrupt(self, key: str) -> bool:
        """Overwrite an entry with garbage (fault-injection helper).

        Used by the chaos suite (``corrupt-cache`` rules in a
        :class:`~repro.harness.faults.FaultPlan`) to prove the
        quarantine path; returns whether the entry existed.
        """
        path = self._path(key)
        if not path.is_file():
            return False
        try:
            path.write_text("{corrupt cache entry", encoding="utf-8")
        except OSError:
            return False
        return True

    def put(self, key: str, result: ExperimentResult) -> bool:
        path = self._path(key)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                dir=path.parent, prefix=".tmp-", suffix=".json"
            )
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as handle:
                    json.dump(result.to_dict(), handle)
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except OSError:
            return False  # read-only cache dir etc.: silently skip
        return True

    # -- maintenance ---------------------------------------------------
    def entries(self) -> list:
        if not self.dir.is_dir():
            return []
        return sorted(self.dir.glob("*/*.json"))

    def corrupt_entries(self) -> list:
        if not self.dir.is_dir():
            return []
        return sorted(self.dir.glob("*/*.json.corrupt"))

    def stats(self) -> Dict[str, Any]:
        entries = self.entries()
        return {
            "dir": str(self.dir),
            "entries": len(entries),
            "bytes": sum(p.stat().st_size for p in entries),
            "corrupt": len(self.corrupt_entries()),
            "lifetime": self.lifetime_counters(),
            "session": {
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            },
        }

    def evict(self, key: str) -> bool:
        """Remove one entry; returns whether it existed."""
        try:
            self._path(key).unlink()
        except OSError:
            return False
        self.evictions += 1
        return True

    def clear(self) -> int:
        """Remove every entry; returns how many were deleted."""
        removed = 0
        for path in self.entries():
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        self.evictions += removed
        self.flush_counters()
        return removed
