"""Content-addressed on-disk caches for experiment results.

Two cooperating stores live here:

* :class:`ExperimentCache` — the *full-result* cache.  Experiments are
  pure functions of their inputs: the simulator is deterministic, so an
  :class:`~repro.harness.experiment.ExperimentResult` is fully
  determined by the kernel source, the SLMS options, the machine model,
  the final-compiler preset and the engine version.  The cache key is
  the SHA-256 of exactly that tuple (canonical JSON, sorted keys).
* :class:`PhaseCache` — the *tiered per-phase* memo store.  Each
  pipeline phase is keyed on what it actually reads, so a sweep over
  five machines stops re-running machine-independent phases five times:

  ============  ====================================================
  tier          key inputs
  ============  ====================================================
  ``transform``  setup source, kernel source, resolved SLMSOptions
  ``compile``    program source text, machine model, compiler preset
  ``simulate``   LIR module fingerprint, machine model, accounting
  ``verify``     base/SLMS source, options, new scalars, both final
                 simulated-state digests
  ============  ====================================================

  The invalidation lattice falls out of the keys: editing a workload's
  source invalidates ``transform`` and everything downstream; editing a
  machine model invalidates only ``compile``/``simulate`` (and the full
  tier) while ``transform``/``verify`` keep hitting.  ``verify`` keys
  on the *simulated states* rather than the machine, so a machine edit
  that doesn't change results re-verifies for free.

Every key includes :data:`ENGINE_VERSION`; bumping it (required
whenever accounting or transform semantics change results) invalidates
everything at once.

Full results are one JSON file each under
``<cache_dir>/<key[:2]>/<key>.json``; phase entries are pickles under
``<cache_dir>/phases/<tier>/<key[:2]>/<key>.pkl`` (sharded to keep
directories small), all written atomically via rename.  The default
directory is ``~/.cache/slms/experiments``; override with the
``SLMS_CACHE_DIR`` environment variable or the ``cache_dir`` argument.
All failures (unreadable entry, read-only filesystem) degrade to cache
misses — caching is an optimization, never a correctness dependency.
"""

from __future__ import annotations

import atexit
import dataclasses
import hashlib
import json
import os
import pickle
import queue
import tempfile
import threading
from collections import OrderedDict
from pathlib import Path
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

from repro.backend.compiler import CompilerConfig
from repro.backend.lir import Module
from repro.core.slms import SLMSOptions
from repro.machines.model import MachineModel
from repro.workloads.base import Workload

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.harness.experiment import ExperimentResult

# Version of the whole evaluation pipeline as far as results are
# concerned.  "2" = PR 2's fast-path interpreter + static block
# accounting; "3" = tiered phase memoization + exec-compiled blocks
# (bit-identical to "2", but keyed separately on principle).
ENGINE_VERSION = "3"

# The per-phase memo tiers, in pipeline order.
PHASE_TIERS = ("transform", "compile", "simulate", "verify")


def default_cache_dir() -> Path:
    env = os.environ.get("SLMS_CACHE_DIR")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "slms" / "experiments"


def _jsonable(value: Any) -> Any:
    """Canonical JSON-compatible form of dataclass/mapping inputs."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: _jsonable(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    return value


def _digest(payload: Any) -> str:
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def experiment_key(
    workload: Workload,
    machine: MachineModel,
    compiler: CompilerConfig,
    options: Optional[SLMSOptions],
    verify: bool,
    engine_version: str,
) -> str:
    """Content hash identifying one experiment's full input tuple."""
    payload = {
        "engine": engine_version,
        "workload": {
            "name": workload.name,
            "suite": workload.suite,
            "setup": workload.setup,
            "kernel": workload.kernel,
        },
        "machine": _jsonable(machine),
        "compiler": _jsonable(compiler),
        "options": _jsonable(options or SLMSOptions()),
        "verify": bool(verify),
    }
    return _digest(payload)


def request_key(op: str, params: Any, context: Any = None) -> str:
    """Content hash identifying one serve-layer request.

    The serve layer (docs/SERVING.md) coalesces concurrent identical
    requests through this key: same (op, params, session context) →
    same key → one execution.  ``params`` and ``context`` go through
    the same canonicalisation as the experiment keys, so dataclasses,
    dicts, and nested lists all hash stably.
    """
    return _digest(
        {
            "tier": "request",
            "engine": ENGINE_VERSION,
            "op": str(op),
            "params": _jsonable(params),
            "context": _jsonable(context),
        }
    )


# -- per-phase keys ------------------------------------------------------
def transform_key(workload: Workload, options: Optional[SLMSOptions]) -> str:
    """The transform tier reads only the sources and the options."""
    return _digest(
        {
            "tier": "transform",
            "engine": ENGINE_VERSION,
            "setup": workload.setup,
            "kernel": workload.kernel,
            "options": _jsonable(options or SLMSOptions()),
        }
    )


def compile_key(
    source: str, machine: MachineModel, compiler: CompilerConfig
) -> str:
    """The compile tier reads the program text, machine and preset."""
    return _digest(
        {
            "tier": "compile",
            "engine": ENGINE_VERSION,
            "source": source,
            "machine": _jsonable(machine),
            "compiler": _jsonable(compiler),
        }
    )


def simulate_key(
    module: Module, machine: MachineModel, accounting: str
) -> str:
    """The simulate tier reads the final LIR and the machine model."""
    return _digest(
        {
            "tier": "simulate",
            "engine": ENGINE_VERSION,
            "module": module_fingerprint(module),
            "machine": _jsonable(machine),
            "accounting": accounting,
            "env": None,
        }
    )


def verify_key(
    base_source: str,
    slms_source: str,
    options: Optional[SLMSOptions],
    new_scalars: List[str],
    base_state_digest: str,
    slms_state_digest: str,
) -> str:
    """The verify tier reads both programs and both simulated states.

    Keying on the state digests (not the machine) makes verification
    machine-independent exactly when the compiled results are — which
    is the property verification checks in the first place.
    """
    return _digest(
        {
            "tier": "verify",
            "engine": ENGINE_VERSION,
            "base": base_source,
            "slms": slms_source,
            "options": _jsonable(options or SLMSOptions()),
            "new_scalars": sorted(new_scalars),
            "base_state": base_state_digest,
            "slms_state": slms_state_digest,
        }
    )


def module_fingerprint(module: Module) -> str:
    """Deterministic content hash of a compiled LIR module.

    Covers everything execution and accounting read: every instruction
    field, the schedule presence/length and ``ims_ii`` per block (cycle
    cost), array/scalar metadata and block order.  ``repr`` keeps int
    and float immediates distinct (``1`` vs ``1.0``).

    Streams ``repr`` fragments straight into the hasher instead of
    building a JSON document; per-field reprs of primitives are
    deterministic, and the dict-valued metadata is sorted so the hash
    is insertion-order independent like the old canonical-JSON form.
    (The hash value itself differs from the JSON-era one, which merely
    orphans pre-existing simulate-tier entries — keys only ever need
    to be deterministic, not stable across engine revisions.)
    """
    h = hashlib.sha256()
    h.update(repr(module.entry).encode())
    for name in module.order:
        block = module.blocks[name]
        h.update(
            f"\x1dB{name}\x1f{block.schedule is not None}"
            f"\x1f{block.schedule_length}\x1f{block.ims_ii}".encode()
        )
        for i in block.instrs:
            iv = (i.iv.iv, i.iv.coeff, i.iv.offset) if i.iv else None
            h.update(
                f"\x1e{i.op}\x1f{i.dst}\x1f{list(i.srcs)}\x1f{i.imm!r}"
                f"\x1f{i.array}\x1f{i.disp}\x1f{i.label}\x1f{i.name}"
                f"\x1f{iv}".encode()
            )
    h.update(repr(sorted(module.arrays.items())).encode())
    h.update(repr(sorted(module.scalar_regs.items())).encode())
    h.update(repr(sorted(module.scalar_types.items())).encode())
    h.update(repr(sorted(module.scalar_slots.items())).encode())
    return h.hexdigest()


def state_digest(state: Dict[str, Any]) -> str:
    """Content hash of a simulated final state (arrays + scalars)."""
    h = hashlib.sha256()
    for name in sorted(state):
        value = state[name]
        h.update(name.encode("utf-8"))
        h.update(b"\x00")
        if hasattr(value, "tobytes"):
            h.update(str(value.dtype).encode("utf-8"))
            h.update(repr(value.shape).encode("utf-8"))
            h.update(value.tobytes())
        else:
            h.update(repr(value).encode("utf-8"))
        h.update(b"\x01")
    return h.hexdigest()


class ExperimentCache:
    """Get/put of :class:`ExperimentResult` keyed by content hash.

    Counts hits/misses/evictions per instance (session counters) and —
    best effort — accumulates them into a ``counters.json`` sidecar in
    the cache directory via :meth:`flush_counters`, so ``slms cache
    stats`` can report lifetime traffic, not just on-disk entry counts.
    """

    COUNTER_NAMES = ("hits", "misses", "evictions")

    def __init__(self, cache_dir: Optional[str | Path] = None):
        self.dir = Path(cache_dir) if cache_dir else default_cache_dir()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._flushed = {name: 0 for name in self.COUNTER_NAMES}

    def _path(self, key: str) -> Path:
        return self.dir / key[:2] / f"{key}.json"

    # -- lifetime counters ---------------------------------------------
    @property
    def _counters_path(self) -> Path:
        return self.dir / "counters.json"

    def lifetime_counters(self) -> Dict[str, int]:
        """Accumulated counters from the sidecar (zeros when absent)."""
        try:
            with open(self._counters_path, "r", encoding="utf-8") as handle:
                data = json.load(handle)
            return {
                name: int(data.get(name, 0)) for name in self.COUNTER_NAMES
            }
        except (OSError, ValueError, TypeError):
            return {name: 0 for name in self.COUNTER_NAMES}

    def flush_counters(self) -> None:
        """Add this session's not-yet-flushed traffic to the sidecar.

        Idempotent across repeated calls; all I/O failures are silently
        ignored (counters are observability, never correctness).
        """
        session = {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }
        delta = {
            name: session[name] - self._flushed[name]
            for name in self.COUNTER_NAMES
        }
        if not any(delta.values()):
            return
        totals = self.lifetime_counters()
        for name in self.COUNTER_NAMES:
            totals[name] += delta[name]
        if not _write_json_atomic(self.dir, self._counters_path, totals):
            return
        self._flushed = dict(session)

    def get(self, key: str) -> Optional["ExperimentResult"]:
        from repro.harness.experiment import ExperimentResult

        path = self._path(key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                data = json.load(handle)
        except OSError:
            self.misses += 1
            return None
        except ValueError:
            # Undecodable entry (torn write, bit rot, injected chaos):
            # quarantine it so every future run gets a clean miss
            # instead of re-parsing the same bad file forever.
            self._quarantine(path)
            self.misses += 1
            return None
        try:
            result = ExperimentResult.from_dict(data)
        except (ValueError, KeyError, TypeError):
            self._quarantine(path)
            self.misses += 1
            return None
        self.hits += 1
        return result

    def _quarantine(self, path: Path) -> None:
        """Move a corrupt entry aside (``*.json.corrupt``) and count it.

        Quarantined files are invisible to :meth:`entries` (different
        suffix) but stay on disk for post-mortems; the rename counts as
        an eviction in the session and ``counters.json`` totals shown
        by ``slms cache stats``.
        """
        try:
            path.rename(path.with_name(path.name + ".corrupt"))
        except OSError:
            return
        self.evictions += 1
        self.flush_counters()

    def corrupt(self, key: str) -> bool:
        """Overwrite an entry with garbage (fault-injection helper).

        Used by the chaos suite (``corrupt-cache`` rules in a
        :class:`~repro.harness.faults.FaultPlan`) to prove the
        quarantine path; returns whether the entry existed.
        """
        path = self._path(key)
        if not path.is_file():
            return False
        try:
            path.write_text("{corrupt cache entry", encoding="utf-8")
        except OSError:
            return False
        return True

    def put(self, key: str, result: "ExperimentResult") -> bool:
        path = self._path(key)
        return _write_json_atomic(path.parent, path, result.to_dict())

    # -- maintenance ---------------------------------------------------
    def entries(self) -> list:
        if not self.dir.is_dir():
            return []
        # Shard directories are two hex characters; the tighter glob
        # keeps the phase store and sidecars out of the entry count.
        return sorted(self.dir.glob("[0-9a-f][0-9a-f]/*.json"))

    def corrupt_entries(self) -> list:
        if not self.dir.is_dir():
            return []
        return sorted(self.dir.glob("[0-9a-f][0-9a-f]/*.json.corrupt"))

    def stats(self) -> Dict[str, Any]:
        entries = self.entries()
        return {
            "dir": str(self.dir),
            "entries": len(entries),
            "bytes": sum(p.stat().st_size for p in entries),
            "corrupt": len(self.corrupt_entries()),
            "lifetime": self.lifetime_counters(),
            "session": {
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            },
        }

    def evict(self, key: str) -> bool:
        """Remove one entry; returns whether it existed."""
        try:
            self._path(key).unlink()
        except OSError:
            return False
        self.evictions += 1
        return True

    def clear(self) -> int:
        """Remove every entry; returns how many were deleted."""
        removed = 0
        for path in self.entries():
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        self.evictions += removed
        self.flush_counters()
        return removed


def _write_json_atomic(parent: Path, path: Path, payload: Any) -> bool:
    try:
        parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=parent, prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(payload, handle)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
    except OSError:
        return False  # read-only cache dir etc.: silently skip
    return True


class PhaseCache:
    """Tiered per-phase memo store (transform/compile/simulate/verify).

    Values are arbitrary picklable payloads (IR objects, compiled
    programs, execution results) stored per tier under
    ``<cache_dir>/phases/<tier>/<key[:2]>/<key>.pkl``, fronted by a
    process-local LRU so a serial sweep never deserializes twice.
    Session hit/miss/eviction counters are kept per tier and flushed —
    best effort — into a ``phases/counters.json`` sidecar (concurrent
    pooled workers may undercount it; the counters are observability,
    never correctness).

    Use :meth:`shared` to get the per-process instance for a cache
    directory: pooled engine workers construct it once per process and
    keep the in-memory tier warm across tasks.
    """

    TIERS = PHASE_TIERS
    MEMORY_ENTRIES = 512

    _shared: Dict[str, "PhaseCache"] = {}

    def __init__(self, cache_dir: Optional[str | Path] = None):
        root = Path(cache_dir) if cache_dir else default_cache_dir()
        self.dir = root / "phases"
        self.hits = {tier: 0 for tier in self.TIERS}
        self.misses = {tier: 0 for tier in self.TIERS}
        self.evictions = {tier: 0 for tier in self.TIERS}
        self._memory: "OrderedDict[Tuple[str, str], Any]" = OrderedDict()
        self._flushed = {
            tier: {"hits": 0, "misses": 0, "evictions": 0}
            for tier in self.TIERS
        }
        # Disk writes run on a lazily started daemon thread (see
        # :meth:`put`); ``drain`` is the barrier that makes them
        # visible to on-disk readers.
        self._write_queue: "queue.Queue[Tuple[Path, bytes]]" = queue.Queue()
        self._writer: Optional[threading.Thread] = None

    @classmethod
    def shared(cls, cache_dir: Optional[str | Path] = None) -> "PhaseCache":
        """The per-process instance for ``cache_dir`` (created once)."""
        key = str(Path(cache_dir) if cache_dir else default_cache_dir())
        instance = cls._shared.get(key)
        if instance is None:
            instance = cls._shared[key] = cls(cache_dir)
        return instance

    def _path(self, tier: str, key: str) -> Path:
        return self.dir / tier / key[:2] / f"{key}.pkl"

    def get(self, tier: str, key: str) -> Optional[Any]:
        mem_key = (tier, key)
        if mem_key in self._memory:
            self._memory.move_to_end(mem_key)
            self.hits[tier] += 1
            return self._memory[mem_key]
        path = self._path(tier, key)
        try:
            with open(path, "rb") as handle:
                value = pickle.load(handle)
        except OSError:
            self.misses[tier] += 1
            return None
        except Exception:
            # Torn write / bit rot / version skew: quarantine so future
            # runs miss cleanly instead of re-reading the bad pickle.
            self._quarantine(tier, path)
            self.misses[tier] += 1
            return None
        self._remember(mem_key, value)
        self.hits[tier] += 1
        return value

    def put(self, tier: str, key: str, value: Any) -> bool:
        """Store ``value``; the disk write completes asynchronously.

        The value is pickled *here* (so later mutation by the caller
        cannot corrupt the entry) and becomes visible to in-process
        readers immediately through the memory tier; only the file I/O
        (mkdir, temp file, atomic rename) is deferred to the writer
        thread.  :meth:`drain` — called by :meth:`stats`,
        :meth:`clear` and at interpreter exit — is the barrier that
        guarantees the entry is on disk.
        """
        self._remember((tier, key), value)
        try:
            data = pickle.dumps(value, pickle.HIGHEST_PROTOCOL)
        except (pickle.PicklingError, TypeError):
            return False
        self._enqueue_write(self._path(tier, key), data)
        return True

    def _enqueue_write(self, path: Path, data: bytes) -> None:
        if self._writer is None or not self._writer.is_alive():
            self._writer = threading.Thread(
                target=self._write_loop, daemon=True, name="slms-cache-writer"
            )
            self._writer.start()
            atexit.register(self.drain)
        self._write_queue.put((path, data))

    def _write_loop(self) -> None:
        while True:
            path, data = self._write_queue.get()
            try:
                path.parent.mkdir(parents=True, exist_ok=True)
                fd, tmp = tempfile.mkstemp(
                    dir=path.parent, prefix=".tmp-", suffix=".pkl"
                )
                try:
                    with os.fdopen(fd, "wb") as handle:
                        handle.write(data)
                    os.replace(tmp, path)
                except BaseException:
                    try:
                        os.unlink(tmp)
                    except OSError:
                        pass
                    raise
            except OSError:
                pass  # read-only cache dir etc.: degrade to a miss
            finally:
                self._write_queue.task_done()

    def drain(self) -> None:
        """Block until every enqueued disk write has completed."""
        if self._writer is not None and self._writer.is_alive():
            self._write_queue.join()

    def _remember(self, mem_key: Tuple[str, str], value: Any) -> None:
        self._memory[mem_key] = value
        self._memory.move_to_end(mem_key)
        while len(self._memory) > self.MEMORY_ENTRIES:
            self._memory.popitem(last=False)

    def _quarantine(self, tier: str, path: Path) -> None:
        try:
            path.rename(path.with_name(path.name + ".corrupt"))
        except OSError:
            return
        self.evictions[tier] += 1

    # -- lifetime counters ---------------------------------------------
    @property
    def _counters_path(self) -> Path:
        return self.dir / "counters.json"

    def lifetime_counters(self) -> Dict[str, Dict[str, int]]:
        try:
            with open(self._counters_path, "r", encoding="utf-8") as handle:
                data = json.load(handle)
            return {
                tier: {
                    name: int(data.get(tier, {}).get(name, 0))
                    for name in ("hits", "misses", "evictions")
                }
                for tier in self.TIERS
            }
        except (OSError, ValueError, TypeError, AttributeError):
            return {
                tier: {"hits": 0, "misses": 0, "evictions": 0}
                for tier in self.TIERS
            }

    def flush_counters(self) -> None:
        session = {
            tier: {
                "hits": self.hits[tier],
                "misses": self.misses[tier],
                "evictions": self.evictions[tier],
            }
            for tier in self.TIERS
        }
        delta_any = False
        totals = None
        for tier in self.TIERS:
            for name in ("hits", "misses", "evictions"):
                if session[tier][name] != self._flushed[tier][name]:
                    delta_any = True
        if not delta_any:
            return
        totals = self.lifetime_counters()
        for tier in self.TIERS:
            for name in ("hits", "misses", "evictions"):
                totals[tier][name] += (
                    session[tier][name] - self._flushed[tier][name]
                )
        if not _write_json_atomic(self.dir, self._counters_path, totals):
            return
        self._flushed = {tier: dict(rec) for tier, rec in session.items()}

    # -- maintenance ---------------------------------------------------
    def entries(self, tier: str) -> list:
        root = self.dir / tier
        if not root.is_dir():
            return []
        return sorted(root.glob("[0-9a-f][0-9a-f]/*.pkl"))

    def corrupt_entries(self, tier: str) -> list:
        root = self.dir / tier
        if not root.is_dir():
            return []
        return sorted(root.glob("[0-9a-f][0-9a-f]/*.pkl.corrupt"))

    def stats(self) -> Dict[str, Any]:
        self.drain()
        lifetime = self.lifetime_counters()
        tiers: Dict[str, Any] = {}
        for tier in self.TIERS:
            entries = self.entries(tier)
            tiers[tier] = {
                "entries": len(entries),
                "bytes": sum(p.stat().st_size for p in entries),
                "corrupt": len(self.corrupt_entries(tier)),
                "lifetime": lifetime[tier],
                "session": {
                    "hits": self.hits[tier],
                    "misses": self.misses[tier],
                    "evictions": self.evictions[tier],
                },
            }
        return {"dir": str(self.dir), "tiers": tiers}

    def clear(self, tiers: Optional[List[str]] = None) -> int:
        """Remove entries for ``tiers`` (default: all); returns count."""
        self.drain()  # a write landing after the clear would resurrect
        removed = 0
        for tier in tiers if tiers is not None else self.TIERS:
            if tier not in self.TIERS:
                raise ValueError(f"unknown phase tier {tier!r}")
            for path in self.entries(tier):
                try:
                    path.unlink()
                    removed += 1
                    self.evictions[tier] += 1
                except OSError:
                    pass
            for mem_key in [k for k in self._memory if k[0] == tier]:
                del self._memory[mem_key]
        self.flush_counters()
        return removed
