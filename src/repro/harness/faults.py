"""Fault-tolerant task execution: taxonomy, containment, checkpointing.

The paper treats failure as a first-class outcome — SLMS *declines* a
bad loop and keeps going (§3.6) — and the evaluation engine extends
that stance from "decline a loop" to "survive a failed experiment".
One worker crash, one hung simulation or one corrupt cache entry must
never abort a 235-experiment sweep or lose a 10k-case fuzz session.

Four cooperating pieces, all consumed by :mod:`repro.harness.engine`:

* an **error taxonomy** — :class:`TaskError` carries one of
  :data:`KINDS` (``transient`` / ``deterministic`` / ``timeout`` /
  ``crash`` / ``oom``) and failures surface as structured
  :class:`FailedResult` values (kind, phase, traceback digest, spec
  identity, attempt count) returned *in spec order* instead of a raw
  exception aborting the run;
* a **guarded dispatcher** — :func:`execute_guarded` replaces bare
  ``pool.map`` with future-per-task windowed dispatch: per-task
  wall-clock timeouts (the stuck worker pool is torn down and rebuilt),
  bounded retry with a deterministic backoff schedule for transient
  kinds, and ``BrokenProcessPool`` recovery that re-runs the suspect
  tasks in isolation and quarantines the poison task after K strikes;
* a **checkpoint journal** — :class:`RunJournal` appends one atomic
  JSON line per completed task, keyed by the experiment cache's
  content hash, so an interrupted ``slms sweep``/``slms fuzz`` resumes
  byte-identical to an uninterrupted run;
* a **deterministic fault-injection harness** — :class:`FaultPlan`
  (seeded rules like ``crash:7``, ``hang:3x2@20``, ``transient:5x1``,
  ``corrupt-cache:2``, ``abort:1``) activated programmatically or via
  the ``SLMS_FAULTS`` environment variable, used by the chaos test
  suite and the CI ``chaos-smoke`` job to prove every recovery path.

See ``docs/ROBUSTNESS.md`` for the retry/timeout semantics, the resume
guarantees and a fault-injection cookbook.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
import traceback as _tb
from bisect import insort
from collections import deque
from concurrent.futures import (
    FIRST_COMPLETED,
    CancelledError,
    Future,
    ProcessPoolExecutor,
    wait,
)
from concurrent.futures import TimeoutError as _FuturesTimeout
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.obs import MetricsRegistry, Tracer, metrics_scope, tracing

#: The failure taxonomy.  ``transient`` faults are worth retrying
#: (flaky I/O, injected chaos); ``deterministic`` ones will fail again
#: on the same inputs; ``timeout`` is a task that exceeded its
#: wall-clock budget; ``crash`` is a worker process that died;
#: ``oom`` is an out-of-memory condition (``MemoryError``).
KINDS = ("transient", "deterministic", "timeout", "crash", "oom")


class TaskError(Exception):
    """An error with an explicit failure-taxonomy kind.

    Raise (or subclass) inside a task to control how the guarded
    dispatcher classifies the failure; any other exception is
    classified ``deterministic`` (``MemoryError`` → ``oom``).
    """

    kind = "deterministic"

    def __init__(self, message: str = "", kind: Optional[str] = None):
        super().__init__(message)
        if kind is not None:
            if kind not in KINDS:
                raise ValueError(f"unknown failure kind {kind!r}")
            self.kind = kind


class TransientError(TaskError):
    """A failure worth retrying (the dispatcher's default retry kind)."""

    kind = "transient"


class SimulatedCrash(TaskError):
    """In-process stand-in for a worker death.

    Used by :meth:`FaultPlan.apply` when there is no worker process to
    kill (serial execution); classified exactly like a real crash so
    ``workers=1`` failure reports stay invariant with pooled runs.
    """

    kind = "crash"


class TaskFailedError(RuntimeError):
    """Raised by strict callers when a guarded run produced failures.

    ``run_suite(on_failure="raise")`` — the figure harness path — wraps
    the per-task :class:`FailedResult` list in this exception so legacy
    callers keep exception semantics while the engine itself never
    propagates a task failure.
    """

    def __init__(self, failures: Sequence["FailedResult"]):
        self.failures = list(failures)
        first = self.failures[0]
        more = (
            f" (+{len(self.failures) - 1} more)"
            if len(self.failures) > 1
            else ""
        )
        super().__init__(
            f"{first.task}: {first.kind} failure in {first.phase}: "
            f"{first.message}{more}"
        )


def classify_exception(exc: BaseException) -> str:
    """Map an exception to its taxonomy kind."""
    if isinstance(exc, TaskError):
        return exc.kind
    if isinstance(exc, MemoryError):
        return "oom"
    return "deterministic"


# Frames from the dispatch machinery itself are excluded from digests
# so a failure hashes identically whether it ran in-process or in a
# worker (the surrounding harness frames differ, the fault does not).
_HARNESS_FILES = frozenset({"faults.py", "engine.py"})


def traceback_digest(exc: BaseException) -> str:
    """Stable 16-hex digest identifying a failure's traceback.

    Hashes ``file:function:line`` triples plus the exception type and
    message — no memory addresses, no absolute paths — so identical
    faults deduplicate across runs, worker counts and hosts.
    """
    lines = [
        f"{os.path.basename(f.filename)}:{f.name}:{f.lineno}"
        for f in _tb.extract_tb(exc.__traceback__)
        if os.path.basename(f.filename) not in _HARNESS_FILES
    ]
    lines.append(f"{type(exc).__name__}: {exc}")
    payload = "\n".join(lines)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


# Innermost frame wins: an exception raised under repro/sim/ failed in
# the simulate phase no matter which harness layer re-raised it.
_PHASE_BY_PATH = (
    (os.sep + os.path.join("repro", "lang") + os.sep, "parse"),
    (os.sep + os.path.join("repro", "core") + os.sep, "transform"),
    (os.sep + os.path.join("repro", "transforms") + os.sep, "transform"),
    (os.sep + os.path.join("repro", "analysis") + os.sep, "transform"),
    (os.sep + os.path.join("repro", "backend") + os.sep, "compile"),
    (os.sep + os.path.join("repro", "sim") + os.sep, "simulate"),
    (os.sep + os.path.join("repro", "verify") + os.sep, "verify"),
)


def infer_phase(exc: BaseException) -> str:
    """Best-effort pipeline phase a failure originated in.

    Walks the traceback innermost-out and matches the frame's module
    path against the pipeline layers; ``VerificationError`` (from any
    frame) is always the verify phase.  Falls back to ``"task"``.
    """
    if type(exc).__name__ == "VerificationError":
        return "verify"
    for frame in reversed(_tb.extract_tb(exc.__traceback__)):
        for fragment, phase in _PHASE_BY_PATH:
            if fragment in frame.filename:
                return phase
    return "task"


@dataclass
class FailedResult:
    """Structured stand-in for a result whose task produced none.

    Occupies the failed task's slot in the engine's result list, so
    callers always receive exactly one entry per spec, in spec order.
    ``spec`` carries the experiment identity (workload/suite/machine/
    compiler names) when the task was an experiment; generic tasks get
    an empty mapping and identify themselves via ``task``/``index``.
    """

    task: str
    index: int
    kind: str
    phase: str = "task"
    message: str = ""
    traceback_digest: str = ""
    attempts: int = 1
    quarantined: bool = False
    spec: Dict[str, str] = field(default_factory=dict)

    # Class-level sentinel: ExperimentResult has no such attribute, so
    # ``is_failed`` needs no isinstance import at call sites.
    failed = True

    def to_dict(self) -> Dict[str, Any]:
        return {
            "status": "failed",
            "task": self.task,
            "index": self.index,
            "kind": self.kind,
            "phase": self.phase,
            "message": self.message,
            "traceback_digest": self.traceback_digest,
            "attempts": self.attempts,
            "quarantined": self.quarantined,
            "spec": dict(self.spec),
        }

    @staticmethod
    def from_dict(data: Dict[str, Any]) -> "FailedResult":
        return FailedResult(
            task=data["task"],
            index=int(data["index"]),
            kind=data["kind"],
            phase=data.get("phase", "task"),
            message=data.get("message", ""),
            traceback_digest=data.get("traceback_digest", ""),
            attempts=int(data.get("attempts", 1)),
            quarantined=bool(data.get("quarantined", False)),
            spec=dict(data.get("spec") or {}),
        )


def is_failed(result: Any) -> bool:
    """Is this engine result a :class:`FailedResult`?"""
    return getattr(result, "failed", False) is True


# ---------------------------------------------------------------------------
# Fault injection
# ---------------------------------------------------------------------------

#: Ops a :class:`FaultRule` can perform.  ``crash``/``hang``/
#: ``transient``/``fail``/``oom`` fire inside the task; ``corrupt-cache``
#: (mangle the entry the task just cached), ``abort`` (kill the
#: *parent* after N completions, simulating SIGKILL mid-sweep) and
#: ``reject`` (shed the request at admission, before any worker runs)
#: are applied by the dispatching layer on the parent side.
PLAN_OPS = ("crash", "hang", "transient", "fail", "oom",
            "corrupt-cache", "abort", "reject")

_DEFAULT_TIMES = {"transient": 1, "hang": 1}  # others: every attempt


@dataclass(frozen=True)
class FaultRule:
    """One injection rule: ``op:index[xTIMES][@SECONDS]``.

    ``index`` is the task's position in the dispatched sequence
    (``-1`` = the ``?`` wildcard, pinned deterministically from the
    plan seed at dispatch time).  ``times`` limits the rule to the
    task's first N attempts (``0`` = every attempt, the default for
    ``crash``/``fail``/``oom``); ``seconds`` is the hang duration.
    For ``abort``, ``index`` counts parent-side completions instead.
    """

    op: str
    index: int
    times: int = 0
    seconds: float = 30.0

    def spec(self) -> str:
        out = f"{self.op}:{'?' if self.index < 0 else self.index}"
        if self.times:
            out += f"x{self.times}"
        if self.op == "hang" and self.seconds != 30.0:
            out += f"@{self.seconds:g}"
        return out


def _parse_rule(token: str) -> FaultRule:
    op, sep, rest = token.partition(":")
    op = op.strip()
    if not sep or op not in PLAN_OPS:
        raise ValueError(
            f"bad fault rule {token!r}; expected OP:INDEX[xTIMES][@SECONDS] "
            f"with OP in {PLAN_OPS}"
        )
    seconds = 30.0
    if "@" in rest:
        rest, _, secs = rest.partition("@")
        seconds = float(secs)
    times = _DEFAULT_TIMES.get(op, 0)
    if "x" in rest:
        rest, _, reps = rest.partition("x")
        times = int(reps)
    rest = rest.strip()
    index = -1 if rest == "?" else int(rest)
    return FaultRule(op=op, index=index, times=times, seconds=seconds)


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic set of injection rules (picklable, hashable).

    Build programmatically, with :meth:`parse` from a spec string like
    ``"crash:7;hang:3x2@20;seed=42"``, or from the environment with
    :meth:`from_env` (``SLMS_FAULTS``).  ``?`` indices are resolved by
    :meth:`resolved` from the plan ``seed`` — same seed, same targets,
    independent of worker count or host.
    """

    rules: Tuple[FaultRule, ...] = ()
    seed: int = 0

    @staticmethod
    def parse(spec: str, seed: int = 0) -> "FaultPlan":
        rules: List[FaultRule] = []
        for token in spec.replace(",", ";").split(";"):
            token = token.strip()
            if not token:
                continue
            if token.startswith("seed="):
                seed = int(token[len("seed="):])
                continue
            rules.append(_parse_rule(token))
        return FaultPlan(rules=tuple(rules), seed=seed)

    @staticmethod
    def from_env(var: str = "SLMS_FAULTS") -> Optional["FaultPlan"]:
        spec = os.environ.get(var, "").strip()
        return FaultPlan.parse(spec) if spec else None

    def spec(self) -> str:
        parts = [rule.spec() for rule in self.rules]
        if self.seed:
            parts.append(f"seed={self.seed}")
        return ";".join(parts)

    def resolved(self, n_tasks: int) -> "FaultPlan":
        """Pin every ``?`` index deterministically from the seed."""
        if n_tasks <= 0 or all(rule.index >= 0 for rule in self.rules):
            return self
        out = []
        for pos, rule in enumerate(self.rules):
            if rule.index < 0:
                material = f"{self.seed}:{pos}:{rule.op}:{n_tasks}"
                digest = hashlib.sha256(material.encode("utf-8")).hexdigest()
                rule = FaultRule(
                    op=rule.op,
                    index=int(digest[:8], 16) % n_tasks,
                    times=rule.times,
                    seconds=rule.seconds,
                )
            out.append(rule)
        return FaultPlan(rules=tuple(out), seed=self.seed)

    def needs_isolation(self) -> bool:
        """Do any rules require a worker process to contain them?"""
        return any(r.op in ("crash", "hang") for r in self.rules)

    def corrupt_cache_indices(self) -> frozenset:
        return frozenset(
            r.index for r in self.rules if r.op == "corrupt-cache"
        )

    def abort_after(self) -> Optional[int]:
        """Parent-side kill point: os._exit after N task completions."""
        for rule in self.rules:
            if rule.op == "abort":
                return rule.index
        return None

    def reject_indices(self) -> frozenset:
        """Admission-side shed points: requests refused before dispatch."""
        return frozenset(r.index for r in self.rules if r.op == "reject")

    def apply(self, index: int, attempt: int, in_process: bool = False):
        """Fire any in-task rules for (task ``index``, ``attempt``).

        Runs inside the task (worker process or, for serial execution,
        the parent).  ``in_process`` swaps uncontainable ops for their
        classifiable stand-ins: a crash raises :class:`SimulatedCrash`
        instead of ``os._exit`` and a hang raises a ``timeout``-kind
        :class:`TaskError` instead of sleeping forever.
        """
        for rule in self.rules:
            if rule.index != index or rule.op in (
                "corrupt-cache", "abort", "reject",
            ):
                continue
            if rule.times and attempt >= rule.times:
                continue
            if rule.op == "crash":
                if in_process:
                    raise SimulatedCrash("injected worker crash")
                os._exit(13)
            elif rule.op == "hang":
                if in_process:
                    raise TaskError(
                        f"injected hang ({rule.seconds:g}s) is not "
                        "containable in-process",
                        kind="timeout",
                    )
                time.sleep(rule.seconds)
            elif rule.op == "transient":
                raise TransientError(
                    f"injected transient fault (attempt {attempt})"
                )
            elif rule.op == "fail":
                raise TaskError("injected deterministic fault")
            elif rule.op == "oom":
                raise MemoryError("injected out-of-memory")


# ---------------------------------------------------------------------------
# Retry / containment policy
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with a deterministic backoff schedule.

    A task of a retryable ``kind`` gets up to ``max_attempts`` total
    attempts; before re-running a task that has made N conclusive
    attempts the dispatcher sleeps ``backoff_s[min(N-1, last)]``.  No
    jitter anywhere — two runs of the same spec retry on the same
    schedule, which the chaos suite asserts.
    """

    max_attempts: int = 3
    backoff_s: Tuple[float, ...] = (0.0, 0.05, 0.2)
    kinds: Tuple[str, ...] = ("transient",)

    def delay(self, attempts_so_far: int) -> float:
        if not self.backoff_s:
            return 0.0
        return self.backoff_s[min(attempts_so_far - 1, len(self.backoff_s) - 1)]


@dataclass(frozen=True)
class FaultPolicy:
    """Everything :func:`execute_guarded` needs to contain failures.

    ``timeout_s`` is the per-task wall-clock limit (None = unlimited);
    ``crash_strikes`` is how many isolated crashes quarantine a task.
    ``poll_s`` is the dispatch loop's wait tick — bookkeeping latency,
    not a correctness knob.
    """

    timeout_s: Optional[float] = None
    retry: RetryPolicy = RetryPolicy()
    crash_strikes: int = 2
    fault_plan: Optional[FaultPlan] = None
    poll_s: float = 0.05

    def max_attempts_for(self, kind: str) -> int:
        if kind == "crash":
            return max(1, self.crash_strikes)
        if kind in self.retry.kinds:
            return max(1, self.retry.max_attempts)
        return 1


@dataclass
class TaskOutcome:
    """One task's conclusion: a value or a failure, plus its history.

    ``log`` records the lifecycle (retries, the final failure or
    quarantine) as plain dicts in deterministic order so the engine can
    re-emit them as trace events in spec order — worker-count-invariant
    exactly like the rest of the obs layer.
    """

    index: int
    value: Any = None
    failure: Optional[FailedResult] = None
    attempts: int = 0
    trace: Optional[dict] = None
    metrics: Optional[dict] = None
    log: List[Dict[str, Any]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.failure is None


def _error_info(exc: BaseException) -> Dict[str, str]:
    message = (
        str(exc)
        if isinstance(exc, TaskError)
        else f"{type(exc).__name__}: {exc}"
    )
    return {
        "kind": classify_exception(exc),
        "phase": infer_phase(exc),
        "message": message,
        "digest": traceback_digest(exc),
    }


def _call(fn, arg, index, attempt, plan, traced, in_process):
    """Run one attempt; never raises (except KeyboardInterrupt)."""
    try:
        if plan is not None:
            plan.apply(index, attempt, in_process=in_process)
        if traced:
            with tracing(Tracer()) as tracer, \
                    metrics_scope(MetricsRegistry()) as reg:
                value = fn(arg)
            return ("ok", value, tracer.to_dict(), reg.to_dict())
        return ("ok", fn(arg), None, None)
    except KeyboardInterrupt:
        raise
    except BaseException as exc:
        if in_process and not isinstance(exc, Exception):
            # SIGTERM (the CLI's _Terminated), SystemExit, …: these must
            # unwind the host process, not be classified as task faults.
            raise
        return ("err", _error_info(exc), None, None)


def _worker_entry(payload: Tuple) -> Tuple:
    """Top-level worker entry point (must stay picklable)."""
    fn, arg, index, attempt, plan, traced = payload
    return _call(fn, arg, index, attempt, plan, traced, in_process=False)


def _teardown_pool(pool: Optional[ProcessPoolExecutor]) -> None:
    """Hard-stop a pool whose workers may be dead or stuck."""
    if pool is None:
        return
    try:
        pool.shutdown(wait=False, cancel_futures=True)
    except Exception:
        pass
    for proc in list((getattr(pool, "_processes", None) or {}).values()):
        try:
            proc.terminate()
        except Exception:
            pass


def execute_guarded(
    fn: Callable[[Any], Any],
    items: Sequence[Any],
    *,
    workers: int = 1,
    policy: Optional[FaultPolicy] = None,
    labels: Optional[Sequence[str]] = None,
    specs: Optional[Sequence[Dict[str, str]]] = None,
    traced: bool = False,
    on_complete: Optional[Callable[[int, TaskOutcome], None]] = None,
    sleep: Callable[[float], None] = time.sleep,
) -> List[TaskOutcome]:
    """Run ``fn`` over ``items`` with full failure containment.

    Returns one :class:`TaskOutcome` per item, **in item order**, each
    carrying either the task's return value or a :class:`FailedResult`
    — no exception a task raises (or injection a :class:`FaultPlan`
    performs) propagates out of this function.

    Containment requires a worker process, so a pool is used whenever
    ``workers > 1``, a ``timeout_s`` is set, or the fault plan contains
    crash/hang rules; otherwise tasks run in-process (retry and
    classification still apply, and injected crashes degrade to their
    classifiable stand-ins — see :meth:`FaultPlan.apply`).

    ``on_complete(index, outcome)`` fires once per task at its
    conclusion (checkpointing hook); ``sleep`` is injectable so tests
    can record the deterministic backoff schedule.
    """
    policy = policy or FaultPolicy()
    n = len(items)
    outcomes = [TaskOutcome(index=i) for i in range(n)]
    if n == 0:
        return outcomes
    plan = policy.fault_plan.resolved(n) if policy.fault_plan else None
    labels = list(labels) if labels else [f"task[{i}]" for i in range(n)]
    specs = list(specs) if specs else [{} for _ in range(n)]
    notify = on_complete or (lambda i, out: None)

    def conclude_ok(i, value, trace, metrics):
        out = outcomes[i]
        out.attempts += 1
        out.value = value
        out.trace = trace
        out.metrics = metrics
        notify(i, out)

    def conclude_error(i, kind, phase, message, digest="") -> Tuple[bool, float]:
        """Count the attempt; returns (should_retry, backoff delay)."""
        out = outcomes[i]
        out.attempts += 1
        if out.attempts < policy.max_attempts_for(kind):
            delay = (
                policy.retry.delay(out.attempts)
                if kind in policy.retry.kinds
                else 0.0
            )
            out.log.append(
                {
                    "event": "retry",
                    "kind": kind,
                    "attempt": out.attempts,
                    "backoff_s": delay,
                }
            )
            return True, delay
        quarantined = kind == "crash"
        out.failure = FailedResult(
            task=labels[i],
            index=i,
            kind=kind,
            phase=phase,
            message=message,
            traceback_digest=digest,
            attempts=out.attempts,
            quarantined=quarantined,
            spec=dict(specs[i]),
        )
        out.log.append(
            {
                "event": "quarantine" if quarantined else "failed",
                "kind": kind,
                "attempts": out.attempts,
            }
        )
        notify(i, out)
        return False, 0.0

    use_pool = (
        workers > 1
        or policy.timeout_s is not None
        or (plan is not None and plan.needs_isolation())
    )

    if not use_pool:
        for i in range(n):
            while True:
                status, value, trace, metrics = _call(
                    fn, items[i], i, outcomes[i].attempts, plan, traced,
                    in_process=True,
                )
                if status == "ok":
                    conclude_ok(i, value, trace, metrics)
                    break
                retry, delay = conclude_error(
                    i, value["kind"], value["phase"], value["message"],
                    value["digest"],
                )
                if not retry:
                    break
                if delay:
                    sleep(delay)
        return outcomes

    # -- pooled dispatch ------------------------------------------------
    timeout_msg = (
        f"task exceeded the {policy.timeout_s:g}s wall-clock limit"
        if policy.timeout_s is not None
        else ""
    )
    crash_msg = "worker process died while running this task"
    pending: List[int] = sorted(range(n))
    suspects: deque = deque()
    in_flight: Dict[Future, Tuple[int, float]] = {}
    pool: Optional[ProcessPoolExecutor] = None

    def payload(i):
        return (fn, items[i], i, outcomes[i].attempts, plan, traced)

    def handle_result(i, res) -> None:
        """Process a worker's structured return; requeues retries."""
        status, value, trace, metrics = res
        if status == "ok":
            conclude_ok(i, value, trace, metrics)
            return
        retry, delay = conclude_error(
            i, value["kind"], value["phase"], value["message"],
            value["digest"],
        )
        if retry:
            if delay:
                sleep(delay)
            insort(pending, i)

    def handle_isolated(i) -> None:
        """Re-run a crash suspect alone in a fresh single-worker pool.

        Only the poison task can break its own pool here, so strikes
        attribute precisely: K isolated crashes → quarantine.  Innocent
        bystanders of a pool breakage complete normally and return to
        the main dispatch flow.
        """
        while True:
            solo = ProcessPoolExecutor(max_workers=1)
            fut = solo.submit(_worker_entry, payload(i))
            try:
                res = fut.result(timeout=policy.timeout_s)
            except _FuturesTimeout:
                _teardown_pool(solo)
                retry, delay = conclude_error(i, "timeout", "task",
                                              timeout_msg)
                if not retry:
                    return
                if delay:
                    sleep(delay)
                continue
            except (BrokenProcessPool, OSError):
                _teardown_pool(solo)
                retry, delay = conclude_error(i, "crash", "task", crash_msg)
                if not retry:
                    return
                if delay:
                    sleep(delay)
                continue
            except Exception as exc:  # unpicklable result, etc.
                _teardown_pool(solo)
                retry, delay = conclude_error(
                    i, classify_exception(exc), "task",
                    f"{type(exc).__name__}: {exc}", traceback_digest(exc),
                )
                if not retry:
                    return
                if delay:
                    sleep(delay)
                continue
            solo.shutdown(wait=True)
            status, value, trace, metrics = res
            if status == "ok":
                conclude_ok(i, value, trace, metrics)
                return
            retry, delay = conclude_error(
                i, value["kind"], value["phase"], value["message"],
                value["digest"],
            )
            if not retry:
                return
            if delay:
                sleep(delay)

    def absorb_breakage(extra: Optional[int] = None) -> None:
        """Pool died: everything in flight becomes a crash suspect."""
        nonlocal pool
        for _fut, (j, _t0) in list(in_flight.items()):
            suspects.append(j)
        in_flight.clear()
        if extra is not None:
            suspects.append(extra)
        _teardown_pool(pool)
        pool = None
        ordered = sorted(set(suspects))
        suspects.clear()
        suspects.extend(ordered)

    try:
        while pending or in_flight or suspects:
            if suspects and not in_flight:
                handle_isolated(suspects.popleft())
                continue
            if not suspects:
                broke = False
                while pending and len(in_flight) < workers:
                    i = pending.pop(0)
                    if pool is None:
                        pool = ProcessPoolExecutor(max_workers=workers)
                    try:
                        fut = pool.submit(_worker_entry, payload(i))
                    except BrokenProcessPool:
                        absorb_breakage(extra=i)
                        broke = True
                        break
                    in_flight[fut] = (i, time.perf_counter())
                if broke:
                    continue
            if not in_flight:
                continue
            done, _ = wait(
                list(in_flight), timeout=policy.poll_s,
                return_when=FIRST_COMPLETED,
            )
            broke = False
            for fut in sorted(done, key=lambda f: in_flight[f][0]):
                i, _t0 = in_flight.pop(fut)
                try:
                    res = fut.result()
                except CancelledError:
                    insort(pending, i)
                except BrokenProcessPool:
                    suspects.append(i)
                    broke = True
                except Exception as exc:
                    retry, delay = conclude_error(
                        i, classify_exception(exc), "task",
                        f"{type(exc).__name__}: {exc}",
                        traceback_digest(exc),
                    )
                    if retry:
                        if delay:
                            sleep(delay)
                        insort(pending, i)
                else:
                    handle_result(i, res)
            if broke:
                absorb_breakage()
                continue
            if policy.timeout_s is not None and in_flight:
                now = time.perf_counter()
                over = sorted(
                    i
                    for _fut, (i, t0) in in_flight.items()
                    if now - t0 > policy.timeout_s
                )
                if over:
                    # The stuck worker cannot be preempted individually:
                    # tear the pool down, fail (or retry) the offenders
                    # and requeue the innocent in-flight tasks with their
                    # attempt counts untouched.
                    innocents = sorted(
                        i
                        for _fut, (i, _t0) in in_flight.items()
                        if i not in over
                    )
                    in_flight.clear()
                    _teardown_pool(pool)
                    pool = None
                    for i in over:
                        retry, delay = conclude_error(i, "timeout", "task",
                                                      timeout_msg)
                        if retry:
                            if delay:
                                sleep(delay)
                            insort(pending, i)
                    for i in innocents:
                        insort(pending, i)
    finally:
        _teardown_pool(pool)
    return outcomes


# ---------------------------------------------------------------------------
# Checkpoint journal
# ---------------------------------------------------------------------------


def task_key(payload: Any) -> str:
    """Content hash of a JSON-able task payload.

    The generic sibling of ``experiment_key`` — gives ``run_tasks``
    callers (the fuzzer) content-addressed journal keys, so a resumed
    session only re-runs work whose inputs actually changed.
    """
    canonical = json.dumps(
        payload, sort_keys=True, separators=(",", ":"), default=str
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class RunJournal:
    """Append-only checkpoint journal for interruptible runs.

    One self-contained JSON line per completed task, keyed by content
    hash (the experiment cache key, or :func:`task_key` for generic
    tasks).  Lines are flushed as they are written, so a SIGKILL loses
    at most the in-flight tasks; the loader tolerates a torn final
    line.  On resume, only ``status == "ok"`` records are reused —
    failed tasks are re-attempted, which is what lets a run that was
    chaos-injected (or genuinely flaky) converge to the clean result
    on a follow-up ``--resume``.
    """

    SCHEMA = "slms-journal/1"

    def __init__(self, path: str | Path, resume: bool = False,
                 flush_every: int = 1):
        self.path = Path(path)
        self.flush_every = max(1, int(flush_every))
        self._entries: Dict[str, dict] = {}
        if resume:
            self._load()
        else:
            try:
                self.path.unlink()
            except OSError:
                pass
        if self.path.parent and not self.path.parent.exists():
            self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = open(self.path, "a", encoding="utf-8")
        self._pending_flush = 0

    def _load(self) -> None:
        try:
            with open(self.path, "r", encoding="utf-8") as fh:
                for line in fh:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        record = json.loads(line)
                    except ValueError:
                        continue  # torn tail from a killed run
                    key = record.get("key")
                    if isinstance(key, str):
                        self._entries[key] = record
        except OSError:
            return

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: str) -> Optional[dict]:
        """The last record for ``key`` (``{"status": ..., "result": ...}``)."""
        return self._entries.get(key)

    def completed_ok(self, key: str) -> Optional[dict]:
        """The stored result payload, but only for an ``ok`` record."""
        record = self._entries.get(key)
        if record is not None and record.get("status") == "ok":
            return record.get("result")
        return None

    def record(self, key: str, status: str, result: Any) -> None:
        entry = {
            "schema": self.SCHEMA,
            "key": key,
            "status": status,
            "result": result,
        }
        self._entries[key] = entry
        self._fh.write(
            json.dumps(entry, sort_keys=True, separators=(",", ":")) + "\n"
        )
        self._pending_flush += 1
        if self._pending_flush >= self.flush_every:
            self.flush()

    def flush(self) -> None:
        try:
            self._fh.flush()
        except (OSError, ValueError):
            pass
        self._pending_flush = 0

    def close(self) -> None:
        self.flush()
        try:
            self._fh.close()
        except (OSError, ValueError):
            pass

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, *exc: object) -> bool:
        self.close()
        return False


__all__ = [
    "KINDS",
    "PLAN_OPS",
    "FailedResult",
    "FaultPlan",
    "FaultPolicy",
    "FaultRule",
    "RetryPolicy",
    "RunJournal",
    "SimulatedCrash",
    "TaskError",
    "TaskFailedError",
    "TaskOutcome",
    "TransientError",
    "classify_exception",
    "execute_guarded",
    "infer_phase",
    "is_failed",
    "task_key",
    "traceback_digest",
]
