"""Core experiment: original vs SLMSed kernel on one machine/compiler.

Methodology (mirrors the paper's §9 protocol):

* SLMS transforms **only the kernel** — the setup code compiles
  identically in both variants, so kernel cost is obtained exactly as
  ``cycles(setup + kernel) − cycles(setup)`` (the simulator is
  deterministic);
* both variants use the *same* final-compiler preset and machine, as
  the paper does ("both SLMSed and non SLMSed loops are compiled with
  the same compilation flags");
* every run is verified against the source-level interpreter before its
  timing is trusted — a miscompiled speedup is a bug, not a result.

When a :class:`~repro.harness.expcache.PhaseCache` is supplied, each
phase first consults its memo tier (keyed on exactly what the phase
reads — see :mod:`repro.harness.expcache`); hits are transparent to the
result except for timing bookkeeping: ``phase_times`` always records
what *this run* actually spent (tier lookups included) while
``cached_phase_times`` accumulates the memoized seconds the hits
originally cost, so observability never conflates served-from-cache
with executed time.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.backend.compiler import COMPILER_PRESETS, CompilerConfig, FinalCompiler
from repro.core.pipeline import _collect_types, slms
from repro.core.slms import SLMSOptions
from repro.harness.expcache import (
    PhaseCache,
    compile_key,
    simulate_key,
    state_digest,
    transform_key,
    verify_key,
)
from repro.lang.ast_nodes import Program
from repro.lang.parser import parse_program_cached
from repro.lang.printer import to_source
from repro.machines.model import MachineModel
from repro.machines.presets import machine_by_name
from repro.obs import get_tracer
from repro.sim.executor import ExecutionMetrics, execute
from repro.sim.interp import state_equal
from repro.sim.interp_compile import run_program_fast
from repro.workloads.base import Workload

# Harness phases every ExperimentResult reports wall-clock times for.
# Cache hits instead carry the single pseudo-phase ``{"cache": seconds}``
# (see repro.harness.engine) — downstream aggregation must treat keys as
# optional but can rely on phase_times never being empty.
EXPERIMENT_PHASES = ("parse", "transform", "compile", "simulate", "verify",
                     "total")

# Serialization schema for ExperimentResult.to_dict/from_dict.  Bumped
# to 2 when ``cached_phase_times`` split served-from-cache seconds out
# of ``phase_times``; from_dict refuses other schemas so stale cache and
# journal entries quarantine instead of deserializing ambiguously.
SCHEMA_VERSION = 2


class VerificationError(AssertionError):
    """Transformed or compiled code changed program semantics."""


@dataclass
class LoopSummary:
    """What an SLMS loop report boils down to, minus the IR.

    The picklable residue of :class:`~repro.core.slms.SLMSResult` that
    the harness actually consumes — stored in the transform memo tier so
    cached transforms replay classification (and validator failures)
    exactly like fresh ones.
    """

    applied: bool
    reason: str
    ii: Optional[int]
    new_scalars: List[str]
    errors: List[str]  # formatted error-severity diagnostics

    @staticmethod
    def from_report(report) -> "LoopSummary":
        return LoopSummary(
            applied=bool(report.applied),
            reason=report.reason,
            ii=report.ii,
            new_scalars=list(report.new_scalars),
            errors=[
                d.format() for d in report.diagnostics
                if d.severity == "error"
            ],
        )


@dataclass
class ExperimentResult:
    """Outcome of one workload × machine × compiler comparison."""

    workload: str
    suite: str
    machine: str
    compiler: str
    base_cycles: int
    slms_cycles: int
    base_energy: float
    slms_energy: float
    slms_applied: bool
    slms_reason: str = ""
    ii: Optional[int] = None
    ims_base: bool = False
    ims_slms: bool = False
    base_metrics: Optional[ExecutionMetrics] = None
    slms_metrics: Optional[ExecutionMetrics] = None
    # Wall-clock seconds per harness phase (parse/transform/compile/
    # simulate/verify + total) that *this run* actually spent.  Timing
    # metadata only: deliberately not part of exports or
    # equality-sensitive comparisons.
    phase_times: Dict[str, float] = field(default_factory=dict)
    # Memoized seconds served from the phase cache (what the hits
    # originally cost when computed), keyed by phase.  Disjoint from
    # phase_times by construction.
    cached_phase_times: Dict[str, float] = field(default_factory=dict)
    # Per-tier {"hits": n, "misses": n} traffic this result generated.
    # Transient engine-side bookkeeping: not serialized, so replayed
    # cache/journal entries never re-report old tier traffic.
    cache_tiers: Optional[Dict[str, Dict[str, int]]] = None

    @property
    def speedup(self) -> float:
        return self.base_cycles / self.slms_cycles if self.slms_cycles else 1.0

    @property
    def energy_ratio(self) -> float:
        """base / slms energy: > 1 means SLMS saves power (Fig. 21)."""
        return self.base_energy / self.slms_energy if self.slms_energy else 1.0

    # -- cache serialization (see repro.harness.expcache) --------------
    def to_dict(self) -> Dict[str, Any]:
        """Lossless JSON form (floats round-trip via repr)."""
        return {
            "schema": SCHEMA_VERSION,
            "workload": self.workload,
            "suite": self.suite,
            "machine": self.machine,
            "compiler": self.compiler,
            "base_cycles": self.base_cycles,
            "slms_cycles": self.slms_cycles,
            "base_energy": self.base_energy,
            "slms_energy": self.slms_energy,
            "slms_applied": self.slms_applied,
            "slms_reason": self.slms_reason,
            "ii": self.ii,
            "ims_base": self.ims_base,
            "ims_slms": self.ims_slms,
            "base_metrics": (
                self.base_metrics.to_dict() if self.base_metrics else None
            ),
            "slms_metrics": (
                self.slms_metrics.to_dict() if self.slms_metrics else None
            ),
            "phase_times": dict(self.phase_times),
            "cached_phase_times": dict(self.cached_phase_times),
        }

    @staticmethod
    def from_dict(data: Mapping[str, Any]) -> "ExperimentResult":
        schema = int(data.get("schema", 1))
        if schema != SCHEMA_VERSION:
            raise ValueError(
                f"unsupported ExperimentResult schema {schema} "
                f"(expected {SCHEMA_VERSION})"
            )
        return ExperimentResult(
            workload=data["workload"],
            suite=data["suite"],
            machine=data["machine"],
            compiler=data["compiler"],
            base_cycles=int(data["base_cycles"]),
            slms_cycles=int(data["slms_cycles"]),
            base_energy=float(data["base_energy"]),
            slms_energy=float(data["slms_energy"]),
            slms_applied=bool(data["slms_applied"]),
            slms_reason=data["slms_reason"],
            ii=data["ii"],
            ims_base=bool(data["ims_base"]),
            ims_slms=bool(data["ims_slms"]),
            base_metrics=(
                ExecutionMetrics.from_dict(data["base_metrics"])
                if data.get("base_metrics")
                else None
            ),
            slms_metrics=(
                ExecutionMetrics.from_dict(data["slms_metrics"])
                if data.get("slms_metrics")
                else None
            ),
            phase_times=dict(data.get("phase_times") or {}),
            cached_phase_times=dict(data.get("cached_phase_times") or {}),
        )


class _PhaseMemo:
    """One experiment's view of the tiered phase cache.

    Wraps a shared :class:`~repro.harness.expcache.PhaseCache` with
    per-experiment tier traffic counts (``tiers``) and the memoized
    seconds served from hits (``credits``), which become the result's
    ``cache_tiers`` / ``cached_phase_times``.
    """

    def __init__(self, cache: PhaseCache):
        self.cache = cache
        self.tiers = {
            tier: {"hits": 0, "misses": 0} for tier in cache.TIERS
        }
        self.credits: Dict[str, float] = {}

    def get(self, tier: str, key: str):
        value = self.cache.get(tier, key)
        self.tiers[tier]["hits" if value is not None else "misses"] += 1
        return value

    def put(self, tier: str, key: str, value) -> None:
        self.cache.put(tier, key, value)

    def credit(self, phase: str, elapsed: float) -> None:
        self.credits[phase] = self.credits.get(phase, 0.0) + elapsed


def _compile_memo(
    memo: Optional[_PhaseMemo],
    source: Optional[str],
    prog: Program,
    machine: MachineModel,
    config: CompilerConfig,
):
    if memo is None:
        return FinalCompiler(machine, config).compile(prog)
    key = compile_key(source, machine, config)
    entry = memo.get("compile", key)
    if entry is not None:
        memo.credit("compile", entry["elapsed"])
        return entry["value"]
    t0 = time.perf_counter()
    compiled = FinalCompiler(machine, config).compile(prog)
    memo.put(
        "compile",
        key,
        {"value": compiled, "elapsed": time.perf_counter() - t0},
    )
    return compiled


def _execute_memo(memo: Optional[_PhaseMemo], module, machine, accounting):
    if memo is None:
        return execute(module, machine, accounting=accounting)
    key = simulate_key(module, machine, accounting)
    entry = memo.get("simulate", key)
    if entry is not None:
        memo.credit("simulate", entry["elapsed"])
        return entry["value"]
    t0 = time.perf_counter()
    run = execute(module, machine, accounting=accounting)
    memo.put(
        "simulate", key, {"value": run, "elapsed": time.perf_counter() - t0}
    )
    return run


def _kernel_cycles(
    setup_prog: Program,
    full_prog: Program,
    machine: MachineModel,
    config: CompilerConfig,
    times: Optional[Dict[str, float]] = None,
    accounting: str = "auto",
    memo: Optional[_PhaseMemo] = None,
    sources: Tuple[Optional[str], Optional[str]] = (None, None),
) -> tuple:
    tracer = get_tracer()
    setup_src, full_src = sources
    t0 = time.perf_counter()
    with tracer.span("phase.compile"):
        compiled_setup = _compile_memo(memo, setup_src, setup_prog, machine, config)
        compiled_full = _compile_memo(memo, full_src, full_prog, machine, config)
    t1 = time.perf_counter()
    with tracer.span("phase.simulate"):
        setup_run = _execute_memo(
            memo, compiled_setup.module, machine, accounting
        )
        full_run = _execute_memo(
            memo, compiled_full.module, machine, accounting
        )
    t2 = time.perf_counter()
    if times is not None:
        times["compile"] = times.get("compile", 0.0) + (t1 - t0)
        times["simulate"] = times.get("simulate", 0.0) + (t2 - t1)
    kernel_cycles = full_run.metrics.cycles - setup_run.metrics.cycles
    kernel_energy = full_run.metrics.energy_pj - setup_run.metrics.energy_pj
    return compiled_full, full_run, max(1, kernel_cycles), max(1.0, kernel_energy)


def transform_kernel(
    workload: Workload, options: Optional[SLMSOptions] = None
):
    """SLMS the kernel fragment only; returns (program, reports)."""
    full = workload.full_program()
    types = _collect_types(full)
    from repro.core.names import all_names

    # Reserve every name in the full program (incl. setup scalars).
    for name in all_names(full):
        types.setdefault(name, types.get(name, "float"))
    kernel_prog = parse_program_cached(workload.kernel)
    outcome = slms(kernel_prog, options, types=types)
    combined = parse_program_cached(workload.setup)
    combined.body.extend(outcome.program.body)
    return combined, outcome.loops


def run_experiment(
    workload: Workload,
    machine: MachineModel | str,
    compiler: CompilerConfig | str,
    options: Optional[SLMSOptions] = None,
    verify: bool = True,
    phase_cache: Optional[PhaseCache] = None,
) -> ExperimentResult:
    """Full comparison for one workload."""
    if isinstance(machine, str):
        machine = machine_by_name(machine)
    if isinstance(compiler, str):
        compiler = COMPILER_PRESETS[compiler]

    tracer = get_tracer()
    memo = _PhaseMemo(phase_cache) if phase_cache is not None else None
    # Every phase key is always present (0.0 when a phase does no work)
    # so downstream aggregation never KeyErrors on declined-SLMS or
    # otherwise short-circuited results.
    times: Dict[str, float] = {phase: 0.0 for phase in EXPERIMENT_PHASES}
    with tracer.span(
        "experiment",
        workload=workload.name,
        suite=workload.suite,
        machine=machine.name,
        compiler=compiler.name,
    ) as exp_span:
        t_start = time.perf_counter()
        with tracer.span("phase.parse"):
            setup_prog = workload.setup_program()
            base_prog = workload.full_program()
        times["parse"] = time.perf_counter() - t_start
        if verify:
            # Static schedule validation rides along with the interpreter
            # oracle: every applied result must satisfy the re-derived
            # modulo constraints and replay its iteration space exactly.
            options = replace(options or SLMSOptions(), verify=True)
        t0 = time.perf_counter()
        entry = tkey = None
        if memo is not None:
            tkey = transform_key(workload, options)
            entry = memo.get("transform", tkey)
        if entry is not None:
            slms_prog, summaries = entry["program"], entry["loops"]
            memo.credit("transform", entry["elapsed"])
        else:
            with tracer.span("phase.transform"):
                slms_prog, reports = transform_kernel(workload, options)
            summaries = [LoopSummary.from_report(r) for r in reports]
            if memo is not None:
                memo.put(
                    "transform",
                    tkey,
                    {
                        "program": slms_prog,
                        "loops": summaries,
                        "elapsed": time.perf_counter() - t0,
                    },
                )
        times["transform"] = time.perf_counter() - t0
        if verify:
            for summary in summaries:
                if summary.errors:
                    raise VerificationError(
                        f"{workload.name}: schedule validator rejected the "
                        "SLMS result: "
                        + "; ".join(summary.errors[:3])
                    )

        setup_src = base_src = slms_src = None
        if memo is not None:
            setup_src = to_source(setup_prog)
            base_src = to_source(base_prog)
            slms_src = to_source(slms_prog)
        compiled_base, base_run, base_cycles, base_energy = _kernel_cycles(
            setup_prog, base_prog, machine, compiler, times,
            memo=memo, sources=(setup_src, base_src),
        )
        compiled_slms, slms_run, slms_cycles, slms_energy = _kernel_cycles(
            setup_prog, slms_prog, machine, compiler, times,
            memo=memo, sources=(setup_src, slms_src),
        )

        t0 = time.perf_counter()
        with tracer.span("phase.verify"):
            if verify:
                new_scalars = [n for s in summaries for n in s.new_scalars]
                ventry = vkey = None
                if memo is not None:
                    vkey = verify_key(
                        base_src,
                        slms_src,
                        options,
                        new_scalars,
                        state_digest(base_run.state),
                        state_digest(slms_run.state),
                    )
                    ventry = memo.get("verify", vkey)
                if ventry is not None:
                    memo.credit("verify", ventry["elapsed"])
                else:
                    # Compiled oracle: bit-identical states/errors to
                    # run_program, at a fraction of the tree-walk cost.
                    oracle = run_program_fast(base_prog)
                    ignore = set(new_scalars)
                    ignore |= {
                        k for k in slms_run.state
                        if k.endswith("Arr") and k not in oracle
                    }
                    if not state_equal(oracle, base_run.state, ignore=set(base_run.state) - set(oracle) | ignore):
                        raise VerificationError(
                            f"{workload.name}: baseline compilation changed semantics"
                        )
                    if not state_equal(
                        oracle, slms_run.state, ignore=(set(slms_run.state) - set(oracle)) | ignore
                    ):
                        raise VerificationError(
                            f"{workload.name}: SLMS variant changed semantics"
                        )
                    if memo is not None:
                        # Only proven-equal outcomes are memoized;
                        # failures always re-run (and re-raise) fresh.
                        memo.put(
                            "verify",
                            vkey,
                            {"elapsed": time.perf_counter() - t0},
                        )
        times["verify"] = time.perf_counter() - t0
        times["total"] = time.perf_counter() - t_start
        if tracer.enabled:
            exp_span.set(
                slms_applied=bool([s for s in summaries if s.applied]),
                base_cycles=base_cycles,
                slms_cycles=slms_cycles,
                # Timing attrs mirror the result's phase_times /
                # cached_phase_times split so Chrome/profiler exports
                # see the same work-vs-served story as the JSON forms.
                work_s=round(times["total"], 6),
                cached_s=round(
                    sum(memo.credits.values()) if memo is not None else 0.0,
                    6,
                ),
            )

    def kernel_ims(compiled) -> bool:
        """Did machine-level MS succeed on the kernel's (last) loop?"""
        loops = compiled.module.loops
        if not loops:
            return False
        last_body = loops[-1].body_block
        return any(
            r.success and r.loop == last_body for r in compiled.ims_reports
        )

    applied = [s for s in summaries if s.applied]
    return ExperimentResult(
        workload=workload.name,
        suite=workload.suite,
        machine=machine.name,
        compiler=compiler.name,
        base_cycles=base_cycles,
        slms_cycles=slms_cycles,
        base_energy=base_energy,
        slms_energy=slms_energy,
        slms_applied=bool(applied),
        slms_reason="" if applied else "; ".join(s.reason for s in summaries),
        ii=applied[0].ii if applied else None,
        ims_base=kernel_ims(compiled_base),
        ims_slms=kernel_ims(compiled_slms),
        base_metrics=base_run.metrics,
        slms_metrics=slms_run.metrics,
        phase_times=times,
        cached_phase_times=dict(memo.credits) if memo is not None else {},
        cache_tiers=(
            {tier: dict(rec) for tier, rec in memo.tiers.items()}
            if memo is not None
            else None
        ),
    )


def run_suite(
    workloads: List[Workload],
    machine: MachineModel | str,
    compiler: CompilerConfig | str,
    options: Optional[SLMSOptions] = None,
    verify: bool = True,
    workers: Optional[int] = None,
    use_cache: Optional[bool] = None,
    on_failure: str = "raise",
) -> List[ExperimentResult]:
    """Run a list of workloads through the evaluation engine.

    Experiments are independent, so they fan out over the evaluation
    engine's process pool and memoize through its result cache;
    ``workers``/``use_cache`` override the engine defaults (see
    :mod:`repro.harness.engine`).

    The engine never raises for a failed task — it returns a
    :class:`~repro.harness.faults.FailedResult` in the task's slot.
    ``on_failure`` picks this function's stance: ``"raise"`` (default)
    wraps any failures in a
    :class:`~repro.harness.faults.TaskFailedError` so the figure
    harness — which dereferences ``.speedup`` on every entry — keeps
    exception semantics; ``"return"`` passes the mixed list through
    for callers that triage failures themselves.
    """
    from repro.harness.engine import ExperimentSpec, run_experiments
    from repro.harness.faults import TaskFailedError, is_failed

    if on_failure not in ("raise", "return"):
        raise ValueError(
            f"on_failure must be 'raise' or 'return', got {on_failure!r}"
        )
    if isinstance(machine, str):
        machine = machine_by_name(machine)
    if isinstance(compiler, str):
        compiler = COMPILER_PRESETS[compiler]
    specs = [
        ExperimentSpec(wl, machine, compiler, options, verify)
        for wl in workloads
    ]
    results, _ = run_experiments(specs, workers=workers, use_cache=use_cache)
    if on_failure == "raise":
        failures = [r for r in results if is_failed(r)]
        if failures:
            raise TaskFailedError(failures)
    return results
