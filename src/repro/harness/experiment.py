"""Core experiment: original vs SLMSed kernel on one machine/compiler.

Methodology (mirrors the paper's §9 protocol):

* SLMS transforms **only the kernel** — the setup code compiles
  identically in both variants, so kernel cost is obtained exactly as
  ``cycles(setup + kernel) − cycles(setup)`` (the simulator is
  deterministic);
* both variants use the *same* final-compiler preset and machine, as
  the paper does ("both SLMSed and non SLMSed loops are compiled with
  the same compilation flags");
* every run is verified against the source-level interpreter before its
  timing is trusted — a miscompiled speedup is a bug, not a result.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Mapping, Optional

from repro.backend.compiler import COMPILER_PRESETS, CompilerConfig, FinalCompiler
from repro.core.pipeline import _collect_types, slms
from repro.core.slms import SLMSOptions
from repro.lang.ast_nodes import Program
from repro.lang.parser import parse_program
from repro.machines.model import MachineModel
from repro.machines.presets import machine_by_name
from repro.obs import get_tracer
from repro.sim.executor import ExecutionMetrics, execute
from repro.sim.interp import run_program, state_equal
from repro.workloads.base import Workload

# Harness phases every ExperimentResult reports wall-clock times for.
# Cache hits instead carry the single pseudo-phase ``{"cache": seconds}``
# (see repro.harness.engine) — downstream aggregation must treat keys as
# optional but can rely on phase_times never being empty.
EXPERIMENT_PHASES = ("parse", "transform", "compile", "simulate", "verify",
                     "total")


class VerificationError(AssertionError):
    """Transformed or compiled code changed program semantics."""


@dataclass
class ExperimentResult:
    """Outcome of one workload × machine × compiler comparison."""

    workload: str
    suite: str
    machine: str
    compiler: str
    base_cycles: int
    slms_cycles: int
    base_energy: float
    slms_energy: float
    slms_applied: bool
    slms_reason: str = ""
    ii: Optional[int] = None
    ims_base: bool = False
    ims_slms: bool = False
    base_metrics: Optional[ExecutionMetrics] = None
    slms_metrics: Optional[ExecutionMetrics] = None
    # Wall-clock seconds per harness phase (parse/transform/compile/
    # simulate/verify + total).  Timing metadata only: deliberately not
    # part of exports or equality-sensitive comparisons.
    phase_times: Dict[str, float] = field(default_factory=dict)

    @property
    def speedup(self) -> float:
        return self.base_cycles / self.slms_cycles if self.slms_cycles else 1.0

    @property
    def energy_ratio(self) -> float:
        """base / slms energy: > 1 means SLMS saves power (Fig. 21)."""
        return self.base_energy / self.slms_energy if self.slms_energy else 1.0

    # -- cache serialization (see repro.harness.expcache) --------------
    def to_dict(self) -> Dict[str, Any]:
        """Lossless JSON form (floats round-trip via repr)."""
        return {
            "workload": self.workload,
            "suite": self.suite,
            "machine": self.machine,
            "compiler": self.compiler,
            "base_cycles": self.base_cycles,
            "slms_cycles": self.slms_cycles,
            "base_energy": self.base_energy,
            "slms_energy": self.slms_energy,
            "slms_applied": self.slms_applied,
            "slms_reason": self.slms_reason,
            "ii": self.ii,
            "ims_base": self.ims_base,
            "ims_slms": self.ims_slms,
            "base_metrics": (
                self.base_metrics.to_dict() if self.base_metrics else None
            ),
            "slms_metrics": (
                self.slms_metrics.to_dict() if self.slms_metrics else None
            ),
            "phase_times": dict(self.phase_times),
        }

    @staticmethod
    def from_dict(data: Mapping[str, Any]) -> "ExperimentResult":
        return ExperimentResult(
            workload=data["workload"],
            suite=data["suite"],
            machine=data["machine"],
            compiler=data["compiler"],
            base_cycles=int(data["base_cycles"]),
            slms_cycles=int(data["slms_cycles"]),
            base_energy=float(data["base_energy"]),
            slms_energy=float(data["slms_energy"]),
            slms_applied=bool(data["slms_applied"]),
            slms_reason=data["slms_reason"],
            ii=data["ii"],
            ims_base=bool(data["ims_base"]),
            ims_slms=bool(data["ims_slms"]),
            base_metrics=(
                ExecutionMetrics.from_dict(data["base_metrics"])
                if data.get("base_metrics")
                else None
            ),
            slms_metrics=(
                ExecutionMetrics.from_dict(data["slms_metrics"])
                if data.get("slms_metrics")
                else None
            ),
            phase_times=dict(data.get("phase_times") or {}),
        )


def _kernel_cycles(
    setup_prog: Program,
    full_prog: Program,
    machine: MachineModel,
    config: CompilerConfig,
    times: Optional[Dict[str, float]] = None,
    accounting: str = "auto",
) -> tuple:
    tracer = get_tracer()
    compiler = FinalCompiler(machine, config)
    t0 = time.perf_counter()
    with tracer.span("phase.compile"):
        compiled_setup = compiler.compile(setup_prog)
        compiled_full = compiler.compile(full_prog)
    t1 = time.perf_counter()
    with tracer.span("phase.simulate"):
        setup_run = execute(
            compiled_setup.module, machine, accounting=accounting
        )
        full_run = execute(
            compiled_full.module, machine, accounting=accounting
        )
    t2 = time.perf_counter()
    if times is not None:
        times["compile"] = times.get("compile", 0.0) + (t1 - t0)
        times["simulate"] = times.get("simulate", 0.0) + (t2 - t1)
    kernel_cycles = full_run.metrics.cycles - setup_run.metrics.cycles
    kernel_energy = full_run.metrics.energy_pj - setup_run.metrics.energy_pj
    return compiled_full, full_run, max(1, kernel_cycles), max(1.0, kernel_energy)


def transform_kernel(
    workload: Workload, options: Optional[SLMSOptions] = None
):
    """SLMS the kernel fragment only; returns (program, reports)."""
    full = workload.full_program()
    types = _collect_types(full)
    from repro.core.names import all_names

    # Reserve every name in the full program (incl. setup scalars).
    for name in all_names(full):
        types.setdefault(name, types.get(name, "float"))
    kernel_prog = parse_program(workload.kernel)
    outcome = slms(kernel_prog, options, types=types)
    combined = parse_program(workload.setup)
    combined.body.extend(outcome.program.body)
    return combined, outcome.loops


def run_experiment(
    workload: Workload,
    machine: MachineModel | str,
    compiler: CompilerConfig | str,
    options: Optional[SLMSOptions] = None,
    verify: bool = True,
) -> ExperimentResult:
    """Full comparison for one workload."""
    if isinstance(machine, str):
        machine = machine_by_name(machine)
    if isinstance(compiler, str):
        compiler = COMPILER_PRESETS[compiler]

    tracer = get_tracer()
    # Every phase key is always present (0.0 when a phase does no work)
    # so downstream aggregation never KeyErrors on declined-SLMS or
    # otherwise short-circuited results.
    times: Dict[str, float] = {phase: 0.0 for phase in EXPERIMENT_PHASES}
    with tracer.span(
        "experiment",
        workload=workload.name,
        suite=workload.suite,
        machine=machine.name,
        compiler=compiler.name,
    ) as exp_span:
        t_start = time.perf_counter()
        with tracer.span("phase.parse"):
            setup_prog = workload.setup_program()
            base_prog = workload.full_program()
        times["parse"] = time.perf_counter() - t_start
        if verify:
            # Static schedule validation rides along with the interpreter
            # oracle: every applied result must satisfy the re-derived
            # modulo constraints and replay its iteration space exactly.
            options = replace(options or SLMSOptions(), verify=True)
        t0 = time.perf_counter()
        with tracer.span("phase.transform"):
            slms_prog, reports = transform_kernel(workload, options)
        times["transform"] = time.perf_counter() - t0
        if verify:
            for report in reports:
                bad = [d for d in report.diagnostics if d.severity == "error"]
                if bad:
                    raise VerificationError(
                        f"{workload.name}: schedule validator rejected the "
                        "SLMS result: "
                        + "; ".join(d.format() for d in bad[:3])
                    )

        compiled_base, base_run, base_cycles, base_energy = _kernel_cycles(
            setup_prog, base_prog, machine, compiler, times
        )
        compiled_slms, slms_run, slms_cycles, slms_energy = _kernel_cycles(
            setup_prog, slms_prog, machine, compiler, times
        )

        t0 = time.perf_counter()
        with tracer.span("phase.verify"):
            if verify:
                oracle = run_program(base_prog)
                ignore = {n for r in reports for n in r.new_scalars}
                ignore |= {
                    k for k in slms_run.state
                    if k.endswith("Arr") and k not in oracle
                }
                if not state_equal(oracle, base_run.state, ignore=set(base_run.state) - set(oracle) | ignore):
                    raise VerificationError(
                        f"{workload.name}: baseline compilation changed semantics"
                    )
                if not state_equal(
                    oracle, slms_run.state, ignore=(set(slms_run.state) - set(oracle)) | ignore
                ):
                    raise VerificationError(
                        f"{workload.name}: SLMS variant changed semantics"
                    )
        times["verify"] = time.perf_counter() - t0
        times["total"] = time.perf_counter() - t_start
        if tracer.enabled:
            exp_span.set(
                slms_applied=bool([r for r in reports if r.applied]),
                base_cycles=base_cycles,
                slms_cycles=slms_cycles,
            )

    def kernel_ims(compiled) -> bool:
        """Did machine-level MS succeed on the kernel's (last) loop?"""
        loops = compiled.module.loops
        if not loops:
            return False
        last_body = loops[-1].body_block
        return any(
            r.success and r.loop == last_body for r in compiled.ims_reports
        )

    applied = [r for r in reports if r.applied]
    return ExperimentResult(
        workload=workload.name,
        suite=workload.suite,
        machine=machine.name,
        compiler=compiler.name,
        base_cycles=base_cycles,
        slms_cycles=slms_cycles,
        base_energy=base_energy,
        slms_energy=slms_energy,
        slms_applied=bool(applied),
        slms_reason="" if applied else "; ".join(r.reason for r in reports),
        ii=applied[0].ii if applied else None,
        ims_base=kernel_ims(compiled_base),
        ims_slms=kernel_ims(compiled_slms),
        base_metrics=base_run.metrics,
        slms_metrics=slms_run.metrics,
        phase_times=times,
    )


def run_suite(
    workloads: List[Workload],
    machine: MachineModel | str,
    compiler: CompilerConfig | str,
    options: Optional[SLMSOptions] = None,
    verify: bool = True,
    workers: Optional[int] = None,
    use_cache: Optional[bool] = None,
    on_failure: str = "raise",
) -> List[ExperimentResult]:
    """Run a list of workloads through the evaluation engine.

    Experiments are independent, so they fan out over the evaluation
    engine's process pool and memoize through its result cache;
    ``workers``/``use_cache`` override the engine defaults (see
    :mod:`repro.harness.engine`).

    The engine never raises for a failed task — it returns a
    :class:`~repro.harness.faults.FailedResult` in the task's slot.
    ``on_failure`` picks this function's stance: ``"raise"`` (default)
    wraps any failures in a
    :class:`~repro.harness.faults.TaskFailedError` so the figure
    harness — which dereferences ``.speedup`` on every entry — keeps
    exception semantics; ``"return"`` passes the mixed list through
    for callers that triage failures themselves.
    """
    from repro.harness.engine import ExperimentSpec, run_experiments
    from repro.harness.faults import TaskFailedError, is_failed

    if on_failure not in ("raise", "return"):
        raise ValueError(
            f"on_failure must be 'raise' or 'return', got {on_failure!r}"
        )
    if isinstance(machine, str):
        machine = machine_by_name(machine)
    if isinstance(compiler, str):
        compiler = COMPILER_PRESETS[compiler]
    specs = [
        ExperimentSpec(wl, machine, compiler, options, verify)
        for wl in workloads
    ]
    results, _ = run_experiments(specs, workers=workers, use_cache=use_cache)
    if on_failure == "raise":
        failures = [r for r in results if is_failed(r)]
        if failures:
            raise TaskFailedError(failures)
    return results
