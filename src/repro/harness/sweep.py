"""Cross-product sweeps: workloads × machines × compilers.

Beyond the paper's fixed figures, downstream users typically want a
matrix view — "how does SLMS behave across every machine/compiler pair
for my loop?"  :func:`run_sweep` produces that matrix, with CSV/JSON
export for external analysis.
"""

from __future__ import annotations

import csv
import io
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.slms import SLMSOptions
from repro.harness.engine import EngineStats, ExperimentSpec, run_experiments
from repro.harness.experiment import ExperimentResult
from repro.harness.faults import FailedResult, FaultPlan, is_failed
from repro.machines.presets import ALL_MACHINES, machine_by_name
from repro.backend.compiler import COMPILER_PRESETS
from repro.workloads import all_workloads, get_workload
from repro.workloads.base import Workload

# Machine/compiler pairings that make sense together (the paper's).
DEFAULT_PAIRS = [
    ("itanium2", "gcc_O3"),
    ("itanium2", "icc_O3"),
    ("pentium", "gcc_O3"),
    ("power4", "xlc_O3"),
    ("arm7tdmi", "arm_gcc"),
]


@dataclass
class SweepResult:
    """The sweep matrix: (workload, machine, compiler) → result.

    ``results`` holds only the experiments that completed; a cell whose
    task failed (worker crash, hang, exception) lands in ``failures``
    as a structured :class:`~repro.harness.faults.FailedResult` instead
    of aborting the sweep.  Exports append the failure records after
    the result rows, so a clean sweep's CSV/JSON is byte-identical to
    what it was before the fault layer existed.
    """

    results: List[ExperimentResult] = field(default_factory=list)
    failures: List[FailedResult] = field(default_factory=list)
    # Engine bookkeeping for the run that produced the matrix (wall
    # clock, cache hits, per-phase totals); not part of the exports.
    stats: Optional[EngineStats] = None

    @property
    def ok(self) -> bool:
        return not self.failures

    def speedup_matrix(self) -> Dict[str, Dict[str, float]]:
        """workload → "machine/compiler" → speedup."""
        matrix: Dict[str, Dict[str, float]] = {}
        for res in self.results:
            key = f"{res.machine}/{res.compiler}"
            matrix.setdefault(res.workload, {})[key] = res.speedup
        return matrix

    def to_csv(self) -> str:
        """Flat CSV with one row per (workload, machine, compiler)."""
        buffer = io.StringIO()
        writer = csv.writer(buffer)
        writer.writerow(
            [
                "workload", "suite", "machine", "compiler",
                "base_cycles", "slms_cycles", "speedup",
                "base_energy_pj", "slms_energy_pj",
                "slms_applied", "ii", "ims_base", "ims_slms", "reason",
            ]
        )
        for res in self.results:
            writer.writerow(
                [
                    res.workload, res.suite, res.machine, res.compiler,
                    res.base_cycles, res.slms_cycles,
                    f"{res.speedup:.6f}",
                    f"{res.base_energy:.1f}", f"{res.slms_energy:.1f}",
                    int(res.slms_applied), res.ii if res.ii else "",
                    int(res.ims_base), int(res.ims_slms), res.slms_reason,
                ]
            )
        for fr in self.failures:
            writer.writerow(
                [
                    fr.spec.get("workload", fr.task),
                    fr.spec.get("suite", ""),
                    fr.spec.get("machine", ""),
                    fr.spec.get("compiler", ""),
                    "", "", "", "", "", "", "", "", "",
                    f"FAILED[{fr.kind}/{fr.phase}]: {fr.message}",
                ]
            )
        return buffer.getvalue()

    def to_json(self) -> str:
        """JSON list of result records (no metrics objects)."""
        records = []
        for res in self.results:
            records.append(
                {
                    "workload": res.workload,
                    "suite": res.suite,
                    "machine": res.machine,
                    "compiler": res.compiler,
                    "base_cycles": res.base_cycles,
                    "slms_cycles": res.slms_cycles,
                    "speedup": round(res.speedup, 6),
                    "base_energy_pj": round(res.base_energy, 1),
                    "slms_energy_pj": round(res.slms_energy, 1),
                    "slms_applied": res.slms_applied,
                    "ii": res.ii,
                    "ims_base": res.ims_base,
                    "ims_slms": res.ims_slms,
                    "reason": res.slms_reason,
                }
            )
        # Appended only when present: a clean sweep's JSON (the digest
        # the benchmark baseline pins) is unchanged by the fault layer.
        for fr in self.failures:
            records.append(
                {
                    "status": "failed",
                    "workload": fr.spec.get("workload", fr.task),
                    "suite": fr.spec.get("suite", ""),
                    "machine": fr.spec.get("machine", ""),
                    "compiler": fr.spec.get("compiler", ""),
                    "kind": fr.kind,
                    "phase": fr.phase,
                    "message": fr.message,
                    "attempts": fr.attempts,
                    "quarantined": fr.quarantined,
                    "traceback_digest": fr.traceback_digest,
                }
            )
        return json.dumps(records, indent=2)

    def best_pair_per_workload(self) -> Dict[str, str]:
        """Where does SLMS pay off most for each workload?"""
        best: Dict[str, str] = {}
        matrix = self.speedup_matrix()
        for workload, row in matrix.items():
            best[workload] = max(row, key=row.get)  # type: ignore[arg-type]
        return best


def run_sweep(
    workloads: Optional[Sequence[Workload | str]] = None,
    pairs: Optional[Sequence[tuple]] = None,
    options: Optional[SLMSOptions] = None,
    verify: bool = True,
    workers: Optional[int] = None,
    use_cache: Optional[bool] = None,
    cache_dir: Optional[str] = None,
    task_timeout_s: Optional[float] = None,
    journal_path: Optional[str] = None,
    resume: Optional[bool] = None,
    fault_plan: Optional["FaultPlan"] = None,
) -> SweepResult:
    """Run every workload on every (machine, compiler) pair.

    ``workloads`` defaults to the whole corpus
    (:func:`~repro.workloads.all_workloads`); names are resolved through
    :func:`~repro.workloads.get_workload`, which rejects unknown names
    with the list of valid ones.  Experiments fan out over the
    evaluation engine (:mod:`repro.harness.engine`): ``workers`` picks
    the process count (default: one per CPU; 1 = serial),
    ``use_cache``/``cache_dir`` control result memoization,
    ``task_timeout_s`` bounds each experiment's wall clock, and
    ``journal_path``/``resume`` checkpoint completed cells so a killed
    sweep resumes byte-identical (see
    :class:`~repro.harness.faults.RunJournal`).  The matrix is returned
    in deterministic (workload-major) order regardless of worker count;
    failed cells are partitioned into ``SweepResult.failures``.
    """
    if workloads is None:
        workloads = all_workloads()
    pairs = list(pairs or DEFAULT_PAIRS)
    for machine, compiler in pairs:
        if machine not in ALL_MACHINES:
            raise ValueError(f"unknown machine {machine!r}")
        if compiler not in COMPILER_PRESETS:
            raise ValueError(f"unknown compiler preset {compiler!r}")
    specs = [
        ExperimentSpec(
            workload=get_workload(item) if isinstance(item, str) else item,
            machine=machine_by_name(machine),
            compiler=COMPILER_PRESETS[compiler],
            options=options,
            verify=verify,
        )
        for item in workloads
        for machine, compiler in pairs
    ]
    results, stats = run_experiments(
        specs,
        workers=workers,
        use_cache=use_cache,
        cache_dir=cache_dir,
        task_timeout_s=task_timeout_s,
        journal_path=journal_path,
        resume=resume,
        fault_plan=fault_plan,
    )
    return SweepResult(
        results=[r for r in results if not is_failed(r)],
        failures=[r for r in results if is_failed(r)],
        stats=stats,
    )


def bench_record(sweep: SweepResult, label: str = "") -> dict:
    """Machine-readable perf record for one sweep (``BENCH_sweep.json``).

    Captures wall clock, worker count, cache hit rate and per-phase
    timing totals so successive PRs can track the engine's performance
    trajectory.
    """
    record: dict = {"label": label, "experiments": len(sweep.results)}
    if sweep.stats is not None:
        record.update(sweep.stats.to_dict())
    return record
