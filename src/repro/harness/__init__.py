"""Experiment harness: run SLMS-vs-original comparisons and regenerate
the paper's figures.

* :mod:`repro.harness.experiment` — compile a workload both ways for a
  (machine, compiler) pair, simulate, and report kernel-only cycles,
  speedup, energy and diagnostics;
* :mod:`repro.harness.engine` — the evaluation engine: parallel
  experiment fan-out plus content-addressed result memoization;
* :mod:`repro.harness.expcache` — the on-disk experiment cache;
* :mod:`repro.harness.faults` — the fault-tolerance layer: error
  taxonomy, guarded dispatch (timeouts, retries, crash quarantine),
  checkpoint journal, and the deterministic fault-injection harness;
* :mod:`repro.harness.figures` — one entry per paper figure (14–22 plus
  the in-text bundle counts), producing the same series the paper plots;
* :mod:`repro.harness.sweep` — the full workloads × machines × compilers
  matrix with CSV/JSON export;
* :mod:`repro.harness.report` — text rendering of figure series.
"""

from repro.harness.engine import (
    ENGINE_VERSION,
    EngineConfig,
    EngineStats,
    ExperimentSpec,
    engine_defaults,
    run_experiments,
)
from repro.harness.experiment import (
    ExperimentResult,
    run_experiment,
    run_suite,
)
from repro.harness.faults import (
    FailedResult,
    FaultPlan,
    RetryPolicy,
    RunJournal,
    TaskError,
    TaskFailedError,
    TransientError,
    is_failed,
)
from repro.harness.figures import FIGURES, run_figure
from repro.harness.sweep import SweepResult, run_sweep

__all__ = [
    "ENGINE_VERSION",
    "EngineConfig",
    "EngineStats",
    "ExperimentResult",
    "ExperimentSpec",
    "FIGURES",
    "FailedResult",
    "FaultPlan",
    "RetryPolicy",
    "RunJournal",
    "SweepResult",
    "TaskError",
    "TaskFailedError",
    "TransientError",
    "engine_defaults",
    "is_failed",
    "run_experiment",
    "run_experiments",
    "run_figure",
    "run_suite",
    "run_sweep",
]
