"""Experiment harness: run SLMS-vs-original comparisons and regenerate
the paper's figures.

* :mod:`repro.harness.experiment` — compile a workload both ways for a
  (machine, compiler) pair, simulate, and report kernel-only cycles,
  speedup, energy and diagnostics;
* :mod:`repro.harness.figures` — one entry per paper figure (14–22 plus
  the in-text bundle counts), producing the same series the paper plots;
* :mod:`repro.harness.report` — text rendering of figure series.
"""

from repro.harness.experiment import (
    ExperimentResult,
    run_experiment,
    run_suite,
)
from repro.harness.figures import FIGURES, run_figure

__all__ = [
    "ExperimentResult",
    "FIGURES",
    "run_experiment",
    "run_figure",
    "run_suite",
]
