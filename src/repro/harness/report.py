"""Text rendering for reproduced figures."""

from __future__ import annotations

from typing import List

from repro.harness.figures import FigureResult


def render_figure(result: FigureResult, width: int = 14) -> str:
    """A fixed-width table: one row per workload, one column per series."""
    lines: List[str] = []
    lines.append(f"== {result.figure}: {result.title} ==")
    labels = list(result.series)
    header = f"{'workload':<{width}}" + "".join(
        f"{label:>{max(len(label) + 2, 12)}}" for label in labels
    )
    lines.append(header)
    lines.append("-" * len(header))
    for name in result.workloads():
        row = f"{name:<{width}}"
        for label in labels:
            value = result.series[label].get(name)
            cell = f"{value:.3f}" if value is not None else "-"
            row += f"{cell:>{max(len(label) + 2, 12)}}"
        lines.append(row)
    if result.series:
        lines.append("-" * len(header))
        # Percentage series (improvements) summarize with the arithmetic
        # mean over all entries; ratio series with the geometric mean.
        summary_label = (
            "mean" if all(lab.endswith("_pct") for lab in labels) else "geomean"
        )
        row = f"{summary_label:<{width}}"
        for label in labels:
            values = list(result.series[label].values())
            cellw = max(len(label) + 2, 12)
            if not values:
                row += f"{'-':>{cellw}}"
            elif label.endswith("_pct"):
                mean = sum(values) / len(values)
                row += f"{mean:>{cellw}.3f}"
            else:
                positives = [v for v in values if v > 0]
                if positives:
                    product = 1.0
                    for v in positives:
                        product *= v
                    geo = product ** (1.0 / len(positives))
                    row += f"{geo:>{cellw}.3f}"
                else:
                    row += f"{'-':>{cellw}}"
        lines.append(row)
    for note in result.notes:
        lines.append(f"note: {note}")
    return "\n".join(lines)
