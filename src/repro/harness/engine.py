"""The evaluation engine: parallel, memoized, fault-tolerant execution.

The paper's evaluation (§9) is a cross-product of workloads × machines ×
compilers, re-run constantly while reproducing figures.  Four
cooperating layers make that cheap and unkillable:

1. the LIR interpreter's pre-decoded fast path and the executor's static
   per-block accounting (:mod:`repro.sim.lir_interp`,
   :mod:`repro.sim.executor`) cut per-experiment cost;
2. this module fans independent experiments out over a process pool —
   experiments are deterministic pure functions of their spec, so
   results are collected back in submission order and are byte-identical
   to a serial run;
3. an on-disk content-addressed cache (:mod:`repro.harness.expcache`)
   memoizes each :class:`~repro.harness.experiment.ExperimentResult`,
   so warm figure/sweep re-runs are near-instant;
4. the fault layer (:mod:`repro.harness.faults`) contains everything
   that goes wrong: a task that crashes its worker, hangs past the
   wall-clock limit, or raises comes back as a structured
   :class:`~repro.harness.faults.FailedResult` in its spec's slot —
   never as an exception that aborts the run — with bounded
   deterministic retries for transient kinds and an optional
   checkpoint journal (``journal_path``/``resume``) that lets a killed
   sweep resume byte-identical to an uninterrupted one.

:func:`run_experiments` is the single entry point; ``run_suite``,
``run_sweep`` and the figure harness all route through it.  Defaults
(worker count, cache on/off, timeouts, fault plan) come from a
module-level :class:`EngineConfig`, overridable per call or temporarily
via :func:`engine_defaults` (how the CLI's ``--workers``/``--no-cache``/
``--timeout`` flags reach the figure suite without threading knobs
through every figure function).  Fault injection for the chaos suite
activates through ``EngineConfig.fault_plan`` or the ``SLMS_FAULTS``
environment variable.

``ENGINE_VERSION`` participates in every cache key.  Bump it whenever a
change anywhere in the pipeline (transforms, backend, simulator
accounting) can alter experiment results, or stale entries will be
served.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from dataclasses import dataclass, field, replace
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.backend.compiler import CompilerConfig
from repro.core.slms import SLMSOptions
from repro.harness.expcache import (
    ENGINE_VERSION,
    PHASE_TIERS,
    ExperimentCache,
    PhaseCache,
    experiment_key,
)
from repro.harness.experiment import ExperimentResult, run_experiment
from repro.harness.faults import (
    FaultPlan,
    FaultPolicy,
    RetryPolicy,
    RunJournal,
    execute_guarded,
    is_failed,
    task_key,
)
from repro.machines.model import MachineModel
from repro.obs import get_metrics, get_tracer
from repro.workloads.base import Workload

# ENGINE_VERSION lives in repro.harness.expcache (next to the cache
# keys it versions) and is re-exported here for compatibility.

PHASES = ("parse", "transform", "compile", "simulate", "verify", "total")


@dataclass(frozen=True)
class EngineConfig:
    """How :func:`run_experiments` schedules, memoizes and guards work.

    ``workers=None`` means "one per CPU" (capped by the number of
    uncached experiments); ``workers=1`` is the serial fallback that
    never spawns processes.  ``task_timeout_s`` is the per-task
    wall-clock limit (None = unlimited; setting one forces pooled
    dispatch so a stuck task can be contained).  ``retry`` and
    ``crash_strikes`` bound re-attempts (see
    :class:`~repro.harness.faults.RetryPolicy`); ``fault_plan`` injects
    deterministic chaos for the test suite (also reachable via the
    ``SLMS_FAULTS`` environment variable).  ``journal_path`` checkpoints
    completed specs to a :class:`~repro.harness.faults.RunJournal`;
    ``resume=True`` replays its ``ok`` records instead of re-running.
    """

    workers: Optional[int] = None
    use_cache: bool = True
    cache_dir: Optional[str] = None
    task_timeout_s: Optional[float] = None
    retry: RetryPolicy = RetryPolicy()
    crash_strikes: int = 2
    fault_plan: Optional[FaultPlan] = None
    journal_path: Optional[str] = None
    resume: bool = False


_default_config = EngineConfig()


def get_default_engine() -> EngineConfig:
    return _default_config


def set_default_engine(config: EngineConfig) -> EngineConfig:
    """Install ``config`` as the process-wide default; returns the old."""
    global _default_config
    previous = _default_config
    _default_config = config
    return previous


@contextmanager
def engine_defaults(**overrides) -> Iterator[EngineConfig]:
    """Temporarily override fields of the default engine config."""
    previous = set_default_engine(replace(_default_config, **overrides))
    try:
        yield _default_config
    finally:
        set_default_engine(previous)


@dataclass(frozen=True)
class ExperimentSpec:
    """One experiment's full input tuple (picklable, hashable)."""

    workload: Workload
    machine: MachineModel
    compiler: CompilerConfig
    options: Optional[SLMSOptions] = None
    verify: bool = True

    def cache_key(self) -> str:
        return experiment_key(
            self.workload,
            self.machine,
            self.compiler,
            self.options,
            self.verify,
            ENGINE_VERSION,
        )

    def label(self) -> str:
        return (
            f"{self.workload.name}@{self.machine.name}/{self.compiler.name}"
        )

    def identity(self) -> Dict[str, str]:
        """The spec fields a :class:`FailedResult` carries for triage."""
        return {
            "workload": self.workload.name,
            "suite": self.workload.suite,
            "machine": self.machine.name,
            "compiler": self.compiler.name,
        }


@dataclass
class EngineStats:
    """What one :func:`run_experiments` call did and cost.

    ``cache_hits``/``cache_misses``/``cache_evictions`` mirror the
    :class:`~repro.harness.expcache.ExperimentCache` session counters
    for the run (evictions also count corrupt entries quarantined on
    read).  ``journal_hits`` are specs replayed from a resume journal;
    ``failures``/``retries``/``quarantined``/``timeouts`` summarize the
    fault layer's activity (all zero on a clean run).
    """

    experiments: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    cache_evictions: int = 0
    journal_hits: int = 0
    failures: int = 0
    retries: int = 0
    quarantined: int = 0
    timeouts: int = 0
    workers: int = 1
    wall_s: float = 0.0
    phase_totals: Dict[str, float] = field(default_factory=dict)
    # Seconds *served from caches* this run (the work the entries
    # originally cost), aggregated from results' cached_phase_times —
    # the counterpart of phase_totals, which is work actually done.
    cached_phase_totals: Dict[str, float] = field(default_factory=dict)
    # Phase-cache tier traffic aggregated from freshly-run experiments
    # (full-cache hits and journal replays contribute nothing — their
    # tier traffic was counted when they originally ran).
    tier_hits: Dict[str, int] = field(default_factory=dict)
    tier_misses: Dict[str, int] = field(default_factory=dict)

    @property
    def hit_rate(self) -> float:
        return self.cache_hits / self.experiments if self.experiments else 0.0

    @property
    def utilization(self) -> float:
        """Busy-fraction of the worker pool: Σ experiment wall / (wall × N)."""
        busy = self.phase_totals.get("total", 0.0)
        capacity = self.wall_s * self.workers
        return busy / capacity if capacity else 0.0

    def to_dict(self) -> Dict[str, object]:
        return {
            "engine_version": ENGINE_VERSION,
            "experiments": self.experiments,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_evictions": self.cache_evictions,
            "journal_hits": self.journal_hits,
            "failures": self.failures,
            "retries": self.retries,
            "quarantined": self.quarantined,
            "timeouts": self.timeouts,
            "cache_hit_rate": round(self.hit_rate, 4),
            "workers": self.workers,
            "worker_utilization": round(self.utilization, 4),
            "wall_s": round(self.wall_s, 3),
            "phase_totals_s": {
                phase: round(seconds, 3)
                for phase, seconds in self.phase_totals.items()
            },
            "cached_phase_totals_s": {
                phase: round(seconds, 3)
                for phase, seconds in self.cached_phase_totals.items()
            },
            "phase_cache": {
                tier: {
                    "hits": self.tier_hits.get(tier, 0),
                    "misses": self.tier_misses.get(tier, 0),
                    "hit_rate": round(
                        self.tier_hits.get(tier, 0)
                        / (
                            self.tier_hits.get(tier, 0)
                            + self.tier_misses.get(tier, 0)
                        ),
                        4,
                    )
                    if self.tier_hits.get(tier, 0)
                    + self.tier_misses.get(tier, 0)
                    else 0.0,
                }
                for tier in PHASE_TIERS
            },
        }


@dataclass(frozen=True)
class _Task:
    """One dispatched unit: the spec plus the phase-cache binding.

    ``phase_cache_dir=None`` disables per-phase memoization for the
    task (cache off, or a traced run — tier hits would skip the spans
    and events that make traces worker-count-invariant).
    """

    spec: ExperimentSpec
    phase_cache_dir: Optional[str] = None


def _run_spec(task: ExperimentSpec | _Task) -> ExperimentResult:
    """Top-level worker entry point (must stay picklable)."""
    if isinstance(task, ExperimentSpec):
        task = _Task(task)
    phase_cache = (
        PhaseCache.shared(task.phase_cache_dir)
        if task.phase_cache_dir
        else None
    )
    spec = task.spec
    result = run_experiment(
        spec.workload,
        spec.machine,
        spec.compiler,
        spec.options,
        verify=spec.verify,
        phase_cache=phase_cache,
    )
    if phase_cache is not None:
        # Best effort: pooled workers die without a parent-side flush,
        # so persist tier counters as tasks complete (concurrent
        # read-modify-writes may undercount; see PhaseCache).
        phase_cache.flush_counters()
    return result


def _resolve_workers(requested: Optional[int], n_tasks: int) -> int:
    if requested is None:
        requested = os.cpu_count() or 1
    if requested < 1:
        raise ValueError(f"workers must be >= 1, got {requested}")
    return max(1, min(requested, n_tasks))


def _emit_task_events(tracer, registry, label: str, outcome) -> None:
    """Absorb one outcome's trace payloads and replay its lifecycle.

    Called in spec order for every dispatched task, so the merged event
    sequence (including ``engine.task.retry/failed/quarantine``) is
    independent of worker count, exactly like the rest of the obs layer.
    """
    if outcome.trace:
        tracer.absorb(outcome.trace)
    if outcome.metrics:
        registry.merge(outcome.metrics)
    for entry in outcome.log:
        attrs = {k: v for k, v in entry.items() if k != "event"}
        tracer.event(f"engine.task.{entry['event']}", task=label, **attrs)


def run_tasks(
    fn,
    items: Sequence,
    workers: Optional[int] = None,
    *,
    timeout_s: Optional[float] = None,
    retry: Optional[RetryPolicy] = None,
    fault_plan: Optional[FaultPlan] = None,
    journal: Optional[RunJournal] = None,
    keys: Optional[Sequence[str]] = None,
    labels: Optional[Sequence[str]] = None,
) -> List:
    """Guarded deterministic map: ``[fn(item) for item in items]``.

    The generic sibling of :func:`run_experiments` for work that is not
    an experiment (the fuzzer's case evaluation, batch validation).
    ``fn`` must be a picklable module-level function of one argument and
    a *pure* one — results are collected in item order and must not
    depend on scheduling.

    A task that raises (or crashes its worker, or exceeds ``timeout_s``)
    yields a :class:`~repro.harness.faults.FailedResult` in its slot
    instead of aborting the run; transient failures retry per ``retry``.
    Pass a :class:`~repro.harness.faults.RunJournal` to checkpoint
    completed items (keyed by ``keys``, defaulting to each item's
    :func:`~repro.harness.faults.task_key`); on a resume journal, items
    with an ``ok`` record are replayed without re-running, so results
    must be JSON-able for the round-trip to be lossless.

    When the parent is tracing, each task runs under its own
    tracer/metrics registry and payloads are absorbed in item order, so
    traces and metrics are worker-count-invariant exactly like the
    experiment path.
    """
    tracer = get_tracer()
    items = list(items)
    if journal is not None and keys is None:
        keys = [task_key(item) for item in items]
    results: List = [None] * len(items)
    pending: List[int] = []
    for i in range(len(items)):
        if journal is not None:
            stored = journal.completed_ok(keys[i])
            if stored is not None:
                results[i] = stored
                continue
        pending.append(i)
    if not pending:
        return results

    plan = fault_plan if fault_plan is not None else FaultPlan.from_env()
    policy = FaultPolicy(
        timeout_s=timeout_s,
        retry=retry or RetryPolicy(),
        fault_plan=plan.resolved(len(pending)) if plan else None,
    )
    pending_labels = (
        [labels[i] for i in pending]
        if labels
        else [f"task[{i}]" for i in pending]
    )

    def on_complete(pos: int, out) -> None:
        if journal is None:
            return
        key = keys[pending[pos]]
        if out.ok:
            journal.record(key, "ok", out.value)
        else:
            journal.record(key, "failed", out.failure.to_dict())

    outcomes = execute_guarded(
        fn,
        [items[i] for i in pending],
        workers=_resolve_workers(workers, len(pending)),
        policy=policy,
        labels=pending_labels,
        traced=tracer.enabled,
        on_complete=on_complete,
    )
    registry = get_metrics()
    for pos, out in enumerate(outcomes):
        if tracer.enabled:
            _emit_task_events(tracer, registry, pending_labels[pos], out)
        results[pending[pos]] = out.value if out.ok else out.failure
    return results


def run_experiments(
    specs: Sequence[ExperimentSpec],
    config: Optional[EngineConfig] = None,
    workers: Optional[int] = None,
    use_cache: Optional[bool] = None,
    cache_dir: Optional[str] = None,
    task_timeout_s: Optional[float] = None,
    journal_path: Optional[str] = None,
    resume: Optional[bool] = None,
    fault_plan: Optional[FaultPlan] = None,
) -> Tuple[List[ExperimentResult], EngineStats]:
    """Run every spec; returns results in spec order plus stats.

    Journal replays (on ``resume``) and cached results are filled in
    first (no process overhead for hits); the remaining specs run
    through the guarded dispatcher — pooled, or in-process when one
    worker suffices and no containment is needed.  Result order, and
    result *content*, never depend on the worker count, the cache state
    or a resume: the pipeline is deterministic and the content hash
    covers every input.

    A spec whose task fails (crash / hang / exception) contributes a
    :class:`~repro.harness.faults.FailedResult` in its slot — callers
    that need every entry to be an ``ExperimentResult`` must check
    :func:`~repro.harness.faults.is_failed` (or use
    ``run_suite(on_failure="raise")``).
    """
    base = config or get_default_engine()
    overrides: Dict[str, object] = {}
    if workers is not None:
        overrides["workers"] = workers
    if use_cache is not None:
        overrides["use_cache"] = use_cache
    if cache_dir is not None:
        overrides["cache_dir"] = cache_dir
    if task_timeout_s is not None:
        overrides["task_timeout_s"] = task_timeout_s
    if journal_path is not None:
        overrides["journal_path"] = journal_path
    if resume is not None:
        overrides["resume"] = resume
    if fault_plan is not None:
        overrides["fault_plan"] = fault_plan
    if overrides:
        base = replace(base, **overrides)

    t_start = time.perf_counter()
    stats = EngineStats(experiments=len(specs))
    cache = ExperimentCache(base.cache_dir) if base.use_cache else None
    # Per-phase memoization rides the same directory as the full cache.
    # Traced runs bypass it: tier hits would skip the phase spans that
    # make traces worker-count-invariant (same reason `slms trace`
    # bypasses the full cache).
    phase_cache_dir = (
        str(cache.dir)
        if cache is not None and not get_tracer().enabled
        else None
    )
    plan = (
        base.fault_plan if base.fault_plan is not None else FaultPlan.from_env()
    )
    journal = (
        RunJournal(base.journal_path, resume=base.resume)
        if base.journal_path
        else None
    )
    tracer = get_tracer()

    try:
        with tracer.span("engine.run", specs=len(specs)) as engine_span:
            results: List = [None] * len(specs)
            pending: List[Tuple[int, ExperimentSpec, Optional[str]]] = []
            for index, spec in enumerate(specs):
                key = (
                    spec.cache_key()
                    if cache is not None or journal is not None
                    else None
                )
                if journal is not None:
                    stored = journal.completed_ok(key)
                    if stored is not None:
                        results[index] = ExperimentResult.from_dict(stored)
                        stats.journal_hits += 1
                        if tracer.enabled:
                            tracer.event(
                                "engine.journal.hit",
                                workload=spec.workload.name,
                                machine=spec.machine.name,
                                compiler=spec.compiler.name,
                            )
                        continue
                t_lookup = time.perf_counter()
                hit = cache.get(key) if cache is not None else None
                if hit is not None:
                    # A hit's stored phase times describe the *original*
                    # computation; report what this run actually did
                    # (the lookup) under phase_times and fold everything
                    # the entry originally cost — executed and
                    # served-from-tier alike — into cached_phase_times.
                    served = dict(hit.phase_times)
                    for phase, seconds in hit.cached_phase_times.items():
                        served[phase] = served.get(phase, 0.0) + seconds
                    hit.cached_phase_times = served
                    hit.phase_times = {
                        "cache": time.perf_counter() - t_lookup
                    }
                    results[index] = hit
                    if tracer.enabled:
                        tracer.event(
                            "engine.cache.hit",
                            workload=spec.workload.name,
                            machine=spec.machine.name,
                            compiler=spec.compiler.name,
                        )
                else:
                    pending.append((index, spec, key))
                    if tracer.enabled and cache is not None:
                        tracer.event(
                            "engine.cache.miss",
                            workload=spec.workload.name,
                            machine=spec.machine.name,
                            compiler=spec.compiler.name,
                        )
            stats.cache_hits = cache.hits if cache is not None else 0
            stats.cache_misses = len(pending)

            n_workers = _resolve_workers(base.workers, len(pending))
            stats.workers = n_workers
            if pending:
                # Fault-rule indices address positions in this dispatched
                # (uncached, unjournaled) sequence; resolve '?' now so the
                # parent-side rules (corrupt-cache, abort) see the same
                # targets the workers do.
                plan_r = plan.resolved(len(pending)) if plan else None
                policy = FaultPolicy(
                    timeout_s=base.task_timeout_s,
                    retry=base.retry,
                    crash_strikes=base.crash_strikes,
                    fault_plan=plan_r,
                )
                corrupt_at = (
                    plan_r.corrupt_cache_indices() if plan_r else frozenset()
                )
                abort_at = plan_r.abort_after() if plan_r else None
                completions = 0

                def on_complete(pos: int, out) -> None:
                    nonlocal completions
                    _index, _spec, key = pending[pos]
                    if out.ok and cache is not None and key is not None:
                        cache.put(key, out.value)
                        if pos in corrupt_at:
                            cache.corrupt(key)
                    if journal is not None and key is not None:
                        if out.ok:
                            journal.record(key, "ok", out.value.to_dict())
                        else:
                            journal.record(
                                key, "failed", out.failure.to_dict()
                            )
                    completions += 1
                    if abort_at is not None and completions >= abort_at:
                        # Simulated SIGKILL mid-sweep: flush durable state
                        # and die without cleanup, like the real thing.
                        if journal is not None:
                            journal.flush()
                        if cache is not None:
                            cache.flush_counters()
                        os._exit(137)

                labels = [spec.label() for _i, spec, _k in pending]
                identities = [spec.identity() for _i, spec, _k in pending]
                outcomes = execute_guarded(
                    _run_spec,
                    [
                        _Task(spec, phase_cache_dir)
                        for _i, spec, _k in pending
                    ],
                    workers=n_workers,
                    policy=policy,
                    labels=labels,
                    specs=identities,
                    traced=tracer.enabled,
                    on_complete=on_complete,
                )
                registry = get_metrics()
                for pos, ((index, _spec, _key), out) in enumerate(
                    zip(pending, outcomes)
                ):
                    if tracer.enabled:
                        _emit_task_events(tracer, registry, labels[pos], out)
                    stats.retries += sum(
                        1 for entry in out.log if entry["event"] == "retry"
                    )
                    if out.ok:
                        results[index] = out.value
                    else:
                        results[index] = out.failure
                        stats.failures += 1
                        if out.failure.quarantined:
                            stats.quarantined += 1
                        if out.failure.kind == "timeout":
                            stats.timeouts += 1

            totals: Dict[str, float] = {}
            cached_totals: Dict[str, float] = {}
            for result in results:
                for phase, seconds in (
                    getattr(result, "phase_times", None) or {}
                ).items():
                    totals[phase] = totals.get(phase, 0.0) + seconds
                for phase, seconds in (
                    getattr(result, "cached_phase_times", None) or {}
                ).items():
                    cached_totals[phase] = (
                        cached_totals.get(phase, 0.0) + seconds
                    )
                for tier, rec in (
                    getattr(result, "cache_tiers", None) or {}
                ).items():
                    stats.tier_hits[tier] = (
                        stats.tier_hits.get(tier, 0) + rec.get("hits", 0)
                    )
                    stats.tier_misses[tier] = (
                        stats.tier_misses.get(tier, 0) + rec.get("misses", 0)
                    )
            stats.phase_totals = totals
            stats.cached_phase_totals = cached_totals
            if cache is not None:
                stats.cache_evictions = cache.evictions
                cache.flush_counters()
            if phase_cache_dir is not None:
                # Serial in-process runs accumulate tier traffic on the
                # parent's shared instance; flush it alongside the full
                # cache's counters (no-op when workers did the running).
                PhaseCache.shared(phase_cache_dir).flush_counters()
            stats.wall_s = time.perf_counter() - t_start

            # Engine-side metrics: coarse, once per run.  Fault counters
            # appear only when the fault layer actually did something, so
            # clean runs export the same metrics as before.
            registry = get_metrics()
            registry.counter("engine.runs").inc()
            registry.counter("engine.experiments").inc(len(specs))
            registry.counter("engine.cache.hits").inc(stats.cache_hits)
            registry.counter("engine.cache.misses").inc(stats.cache_misses)
            # Tier counters only when the phase cache saw traffic, so
            # traced runs (phase cache off) export the same metric set
            # as before.
            for tier in PHASE_TIERS:
                hits = stats.tier_hits.get(tier, 0)
                misses = stats.tier_misses.get(tier, 0)
                if hits:
                    registry.counter(
                        f"engine.phase_cache.{tier}.hits"
                    ).inc(hits)
                if misses:
                    registry.counter(
                        f"engine.phase_cache.{tier}.misses"
                    ).inc(misses)
            registry.gauge("engine.workers").set(stats.workers)
            registry.gauge("engine.worker_utilization").set(stats.utilization)
            if stats.journal_hits:
                registry.counter("engine.journal.hits").inc(stats.journal_hits)
            if stats.retries:
                registry.counter("engine.task.retries").inc(stats.retries)
            if stats.quarantined:
                registry.counter("engine.task.quarantined").inc(
                    stats.quarantined
                )
            if stats.failures:
                registry.counter("engine.task.failures").inc(stats.failures)
                kinds: Dict[str, int] = {}
                for result in results:
                    if is_failed(result):
                        kinds[result.kind] = kinds.get(result.kind, 0) + 1
                for kind, count in sorted(kinds.items()):
                    registry.counter(f"engine.task.failures.{kind}").inc(count)
            for phase, seconds in totals.items():
                registry.histogram(f"engine.phase.{phase}_s").observe(seconds)
            if tracer.enabled:
                engine_span.set(
                    workers=stats.workers,
                    cache_hits=stats.cache_hits,
                    cache_misses=stats.cache_misses,
                )
                if stats.failures:
                    engine_span.set(failures=stats.failures)
                # Aggregate tier traffic as trace events, one hit + one
                # miss event per tier in PHASE_TIERS order — emitted
                # parent-side after spec-order aggregation, so the
                # sequence stays worker-count-invariant.  (Traced runs
                # disable the phase cache, so live counts here are zero;
                # the events exist so absorbed pre-recorded payloads and
                # future always-on consumers see a stable shape.)
                for tier in PHASE_TIERS:
                    tracer.event(
                        "cache.tier.hit",
                        tier=tier,
                        count=stats.tier_hits.get(tier, 0),
                    )
                    tracer.event(
                        "cache.tier.miss",
                        tier=tier,
                        count=stats.tier_misses.get(tier, 0),
                    )
    finally:
        if journal is not None:
            journal.close()
    return results, stats
