"""The evaluation engine: parallel, memoized experiment execution.

The paper's evaluation (§9) is a cross-product of workloads × machines ×
compilers, re-run constantly while reproducing figures.  Three
cooperating layers make that cheap:

1. the LIR interpreter's pre-decoded fast path and the executor's static
   per-block accounting (:mod:`repro.sim.lir_interp`,
   :mod:`repro.sim.executor`) cut per-experiment cost;
2. this module fans independent experiments out over a
   ``ProcessPoolExecutor`` — experiments are deterministic pure
   functions of their spec, so results are collected back in submission
   order and are byte-identical to a serial run;
3. an on-disk content-addressed cache (:mod:`repro.harness.expcache`)
   memoizes each :class:`~repro.harness.experiment.ExperimentResult`,
   so warm figure/sweep re-runs are near-instant.

:func:`run_experiments` is the single entry point; ``run_suite``,
``run_sweep`` and the figure harness all route through it.  Defaults
(worker count, cache on/off, cache directory) come from a module-level
:class:`EngineConfig`, overridable per call or temporarily via
:func:`engine_defaults` (how the CLI's ``--workers``/``--no-cache``
flags reach the figure suite without threading knobs through every
figure function).

``ENGINE_VERSION`` participates in every cache key.  Bump it whenever a
change anywhere in the pipeline (transforms, backend, simulator
accounting) can alter experiment results, or stale entries will be
served.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from contextlib import contextmanager
from dataclasses import dataclass, field, replace
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.backend.compiler import CompilerConfig
from repro.core.slms import SLMSOptions
from repro.harness.expcache import ExperimentCache, experiment_key
from repro.harness.experiment import ExperimentResult, run_experiment
from repro.machines.model import MachineModel
from repro.workloads.base import Workload

# Version of the whole evaluation pipeline as far as results are
# concerned.  "2" = PR 2's fast-path interpreter + static block
# accounting (bit-identical to "1", but keyed separately on principle).
ENGINE_VERSION = "2"

PHASES = ("parse", "transform", "compile", "simulate", "verify", "total")


@dataclass(frozen=True)
class EngineConfig:
    """How :func:`run_experiments` schedules and memoizes work.

    ``workers=None`` means "one per CPU" (capped by the number of
    uncached experiments); ``workers=1`` is the serial fallback that
    never spawns processes.
    """

    workers: Optional[int] = None
    use_cache: bool = True
    cache_dir: Optional[str] = None


_default_config = EngineConfig()


def get_default_engine() -> EngineConfig:
    return _default_config


def set_default_engine(config: EngineConfig) -> EngineConfig:
    """Install ``config`` as the process-wide default; returns the old."""
    global _default_config
    previous = _default_config
    _default_config = config
    return previous


@contextmanager
def engine_defaults(**overrides) -> Iterator[EngineConfig]:
    """Temporarily override fields of the default engine config."""
    previous = set_default_engine(replace(_default_config, **overrides))
    try:
        yield _default_config
    finally:
        set_default_engine(previous)


@dataclass(frozen=True)
class ExperimentSpec:
    """One experiment's full input tuple (picklable, hashable)."""

    workload: Workload
    machine: MachineModel
    compiler: CompilerConfig
    options: Optional[SLMSOptions] = None
    verify: bool = True

    def cache_key(self) -> str:
        return experiment_key(
            self.workload,
            self.machine,
            self.compiler,
            self.options,
            self.verify,
            ENGINE_VERSION,
        )


@dataclass
class EngineStats:
    """What one :func:`run_experiments` call did and cost."""

    experiments: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    workers: int = 1
    wall_s: float = 0.0
    phase_totals: Dict[str, float] = field(default_factory=dict)

    @property
    def hit_rate(self) -> float:
        return self.cache_hits / self.experiments if self.experiments else 0.0

    def to_dict(self) -> Dict[str, object]:
        return {
            "engine_version": ENGINE_VERSION,
            "experiments": self.experiments,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_hit_rate": round(self.hit_rate, 4),
            "workers": self.workers,
            "wall_s": round(self.wall_s, 3),
            "phase_totals_s": {
                phase: round(seconds, 3)
                for phase, seconds in self.phase_totals.items()
            },
        }


def _run_spec(spec: ExperimentSpec) -> ExperimentResult:
    """Top-level worker entry point (must stay picklable)."""
    return run_experiment(
        spec.workload,
        spec.machine,
        spec.compiler,
        spec.options,
        verify=spec.verify,
    )


def _resolve_workers(requested: Optional[int], n_tasks: int) -> int:
    if requested is None:
        requested = os.cpu_count() or 1
    if requested < 1:
        raise ValueError(f"workers must be >= 1, got {requested}")
    return max(1, min(requested, n_tasks))


def run_experiments(
    specs: Sequence[ExperimentSpec],
    config: Optional[EngineConfig] = None,
    workers: Optional[int] = None,
    use_cache: Optional[bool] = None,
    cache_dir: Optional[str] = None,
) -> Tuple[List[ExperimentResult], EngineStats]:
    """Run every spec; returns results in spec order plus stats.

    Cached results are filled in first (no process overhead for hits);
    the remaining specs run on a process pool — or serially when one
    worker suffices.  Result order, and result *content*, never depend
    on the worker count or the cache state: the pipeline is
    deterministic and the cache key covers every input.
    """
    base = config or get_default_engine()
    if workers is not None or use_cache is not None or cache_dir is not None:
        base = replace(
            base,
            workers=base.workers if workers is None else workers,
            use_cache=base.use_cache if use_cache is None else use_cache,
            cache_dir=base.cache_dir if cache_dir is None else cache_dir,
        )

    t_start = time.perf_counter()
    stats = EngineStats(experiments=len(specs))
    cache = ExperimentCache(base.cache_dir) if base.use_cache else None

    results: List[Optional[ExperimentResult]] = [None] * len(specs)
    pending: List[Tuple[int, ExperimentSpec, Optional[str]]] = []
    for index, spec in enumerate(specs):
        key = spec.cache_key() if cache is not None else None
        hit = cache.get(key) if cache is not None else None
        if hit is not None:
            results[index] = hit
            stats.cache_hits += 1
        else:
            pending.append((index, spec, key))
    stats.cache_misses = len(pending)

    n_workers = _resolve_workers(base.workers, len(pending))
    stats.workers = n_workers
    if pending:
        todo = [spec for _, spec, _ in pending]
        if n_workers == 1:
            computed = [_run_spec(spec) for spec in todo]
        else:
            chunksize = max(1, len(todo) // (n_workers * 4))
            with ProcessPoolExecutor(max_workers=n_workers) as pool:
                computed = list(
                    pool.map(_run_spec, todo, chunksize=chunksize)
                )
        for (index, _spec, key), result in zip(pending, computed):
            results[index] = result
            if cache is not None and key is not None:
                cache.put(key, result)

    totals: Dict[str, float] = {}
    for result in results:
        for phase, seconds in (result.phase_times or {}).items():  # type: ignore[union-attr]
            totals[phase] = totals.get(phase, 0.0) + seconds
    stats.phase_totals = totals
    stats.wall_s = time.perf_counter() - t_start
    return results, stats  # type: ignore[return-value]
