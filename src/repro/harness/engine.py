"""The evaluation engine: parallel, memoized experiment execution.

The paper's evaluation (§9) is a cross-product of workloads × machines ×
compilers, re-run constantly while reproducing figures.  Three
cooperating layers make that cheap:

1. the LIR interpreter's pre-decoded fast path and the executor's static
   per-block accounting (:mod:`repro.sim.lir_interp`,
   :mod:`repro.sim.executor`) cut per-experiment cost;
2. this module fans independent experiments out over a
   ``ProcessPoolExecutor`` — experiments are deterministic pure
   functions of their spec, so results are collected back in submission
   order and are byte-identical to a serial run;
3. an on-disk content-addressed cache (:mod:`repro.harness.expcache`)
   memoizes each :class:`~repro.harness.experiment.ExperimentResult`,
   so warm figure/sweep re-runs are near-instant.

:func:`run_experiments` is the single entry point; ``run_suite``,
``run_sweep`` and the figure harness all route through it.  Defaults
(worker count, cache on/off, cache directory) come from a module-level
:class:`EngineConfig`, overridable per call or temporarily via
:func:`engine_defaults` (how the CLI's ``--workers``/``--no-cache``
flags reach the figure suite without threading knobs through every
figure function).

``ENGINE_VERSION`` participates in every cache key.  Bump it whenever a
change anywhere in the pipeline (transforms, backend, simulator
accounting) can alter experiment results, or stale entries will be
served.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from contextlib import contextmanager
from dataclasses import dataclass, field, replace
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.backend.compiler import CompilerConfig
from repro.core.slms import SLMSOptions
from repro.harness.expcache import ExperimentCache, experiment_key
from repro.harness.experiment import ExperimentResult, run_experiment
from repro.machines.model import MachineModel
from repro.obs import (
    MetricsRegistry,
    Tracer,
    get_metrics,
    get_tracer,
    metrics_scope,
    tracing,
)
from repro.workloads.base import Workload

# Version of the whole evaluation pipeline as far as results are
# concerned.  "2" = PR 2's fast-path interpreter + static block
# accounting (bit-identical to "1", but keyed separately on principle).
ENGINE_VERSION = "2"

PHASES = ("parse", "transform", "compile", "simulate", "verify", "total")


@dataclass(frozen=True)
class EngineConfig:
    """How :func:`run_experiments` schedules and memoizes work.

    ``workers=None`` means "one per CPU" (capped by the number of
    uncached experiments); ``workers=1`` is the serial fallback that
    never spawns processes.
    """

    workers: Optional[int] = None
    use_cache: bool = True
    cache_dir: Optional[str] = None


_default_config = EngineConfig()


def get_default_engine() -> EngineConfig:
    return _default_config


def set_default_engine(config: EngineConfig) -> EngineConfig:
    """Install ``config`` as the process-wide default; returns the old."""
    global _default_config
    previous = _default_config
    _default_config = config
    return previous


@contextmanager
def engine_defaults(**overrides) -> Iterator[EngineConfig]:
    """Temporarily override fields of the default engine config."""
    previous = set_default_engine(replace(_default_config, **overrides))
    try:
        yield _default_config
    finally:
        set_default_engine(previous)


@dataclass(frozen=True)
class ExperimentSpec:
    """One experiment's full input tuple (picklable, hashable)."""

    workload: Workload
    machine: MachineModel
    compiler: CompilerConfig
    options: Optional[SLMSOptions] = None
    verify: bool = True

    def cache_key(self) -> str:
        return experiment_key(
            self.workload,
            self.machine,
            self.compiler,
            self.options,
            self.verify,
            ENGINE_VERSION,
        )


@dataclass
class EngineStats:
    """What one :func:`run_experiments` call did and cost.

    ``cache_hits``/``cache_misses``/``cache_evictions`` mirror the
    :class:`~repro.harness.expcache.ExperimentCache` session counters
    for the run (evictions are nonzero only if the cache was cleared
    mid-run, but the field keeps the stats aligned with the cache's
    counter triple).
    """

    experiments: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    cache_evictions: int = 0
    workers: int = 1
    wall_s: float = 0.0
    phase_totals: Dict[str, float] = field(default_factory=dict)

    @property
    def hit_rate(self) -> float:
        return self.cache_hits / self.experiments if self.experiments else 0.0

    @property
    def utilization(self) -> float:
        """Busy-fraction of the worker pool: Σ experiment wall / (wall × N)."""
        busy = self.phase_totals.get("total", 0.0)
        capacity = self.wall_s * self.workers
        return busy / capacity if capacity else 0.0

    def to_dict(self) -> Dict[str, object]:
        return {
            "engine_version": ENGINE_VERSION,
            "experiments": self.experiments,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_evictions": self.cache_evictions,
            "cache_hit_rate": round(self.hit_rate, 4),
            "workers": self.workers,
            "worker_utilization": round(self.utilization, 4),
            "wall_s": round(self.wall_s, 3),
            "phase_totals_s": {
                phase: round(seconds, 3)
                for phase, seconds in self.phase_totals.items()
            },
        }


def _run_spec(spec: ExperimentSpec) -> ExperimentResult:
    """Top-level worker entry point (must stay picklable)."""
    return run_experiment(
        spec.workload,
        spec.machine,
        spec.compiler,
        spec.options,
        verify=spec.verify,
    )


def _run_spec_traced(spec: ExperimentSpec) -> Tuple[ExperimentResult, dict, dict]:
    """Worker entry point when the parent is tracing.

    Collects the experiment's spans/events and metrics into fresh
    per-task instances and ships their JSON forms back; the parent
    absorbs them in spec order, so the merged sequence is independent
    of worker count (see :meth:`repro.obs.Tracer.absorb`).
    """
    with tracing(Tracer()) as tracer, metrics_scope(MetricsRegistry()) as reg:
        result = _run_spec(spec)
    return result, tracer.to_dict(), reg.to_dict()


def _run_task(payload: Tuple) -> object:
    """Top-level worker entry point for :func:`run_tasks`."""
    fn, arg = payload
    return fn(arg)


def _run_task_traced(payload: Tuple) -> Tuple[object, dict, dict]:
    """Traced variant: per-task tracer/registry shipped back as JSON."""
    fn, arg = payload
    with tracing(Tracer()) as tracer, metrics_scope(MetricsRegistry()) as reg:
        result = fn(arg)
    return result, tracer.to_dict(), reg.to_dict()


def run_tasks(
    fn,
    items: Sequence,
    workers: Optional[int] = None,
) -> List:
    """Deterministic parallel map: ``[fn(item) for item in items]``.

    The generic sibling of :func:`run_experiments` for work that is not
    an experiment (the fuzzer's case evaluation, batch validation).
    ``fn`` must be a picklable module-level function of one argument and
    a *pure* one — results are collected in item order and must not
    depend on scheduling.  When the parent is tracing, each task runs
    under its own tracer/metrics registry and payloads are absorbed in
    item order, so traces and metrics are worker-count-invariant
    exactly like the experiment path.
    """
    tracer = get_tracer()
    payloads = [(fn, item) for item in items]
    n_workers = _resolve_workers(workers, len(payloads))
    if not payloads:
        return []
    if tracer.enabled:
        if n_workers == 1:
            traced = [_run_task_traced(p) for p in payloads]
        else:
            chunksize = max(1, len(payloads) // (n_workers * 4))
            with ProcessPoolExecutor(max_workers=n_workers) as pool:
                traced = list(
                    pool.map(_run_task_traced, payloads, chunksize=chunksize)
                )
        registry = get_metrics()
        results = []
        for result, trace_data, metrics_data in traced:
            tracer.absorb(trace_data)
            registry.merge(metrics_data)
            results.append(result)
        return results
    if n_workers == 1:
        return [_run_task(p) for p in payloads]
    chunksize = max(1, len(payloads) // (n_workers * 4))
    with ProcessPoolExecutor(max_workers=n_workers) as pool:
        return list(pool.map(_run_task, payloads, chunksize=chunksize))


def _resolve_workers(requested: Optional[int], n_tasks: int) -> int:
    if requested is None:
        requested = os.cpu_count() or 1
    if requested < 1:
        raise ValueError(f"workers must be >= 1, got {requested}")
    return max(1, min(requested, n_tasks))


def run_experiments(
    specs: Sequence[ExperimentSpec],
    config: Optional[EngineConfig] = None,
    workers: Optional[int] = None,
    use_cache: Optional[bool] = None,
    cache_dir: Optional[str] = None,
) -> Tuple[List[ExperimentResult], EngineStats]:
    """Run every spec; returns results in spec order plus stats.

    Cached results are filled in first (no process overhead for hits);
    the remaining specs run on a process pool — or serially when one
    worker suffices.  Result order, and result *content*, never depend
    on the worker count or the cache state: the pipeline is
    deterministic and the cache key covers every input.
    """
    base = config or get_default_engine()
    if workers is not None or use_cache is not None or cache_dir is not None:
        base = replace(
            base,
            workers=base.workers if workers is None else workers,
            use_cache=base.use_cache if use_cache is None else use_cache,
            cache_dir=base.cache_dir if cache_dir is None else cache_dir,
        )

    t_start = time.perf_counter()
    stats = EngineStats(experiments=len(specs))
    cache = ExperimentCache(base.cache_dir) if base.use_cache else None
    tracer = get_tracer()

    with tracer.span("engine.run", specs=len(specs)) as engine_span:
        results: List[Optional[ExperimentResult]] = [None] * len(specs)
        pending: List[Tuple[int, ExperimentSpec, Optional[str]]] = []
        for index, spec in enumerate(specs):
            key = spec.cache_key() if cache is not None else None
            t_lookup = time.perf_counter()
            hit = cache.get(key) if cache is not None else None
            if hit is not None:
                # A hit's stored phase times describe the *original*
                # computation; report what this run actually did instead.
                hit.phase_times = {
                    "cache": time.perf_counter() - t_lookup
                }
                results[index] = hit
                if tracer.enabled:
                    tracer.event(
                        "engine.cache.hit",
                        workload=spec.workload.name,
                        machine=spec.machine.name,
                        compiler=spec.compiler.name,
                    )
            else:
                pending.append((index, spec, key))
                if tracer.enabled and cache is not None:
                    tracer.event(
                        "engine.cache.miss",
                        workload=spec.workload.name,
                        machine=spec.machine.name,
                        compiler=spec.compiler.name,
                    )
        stats.cache_hits = cache.hits if cache is not None else 0
        stats.cache_misses = len(pending)

        n_workers = _resolve_workers(base.workers, len(pending))
        stats.workers = n_workers
        if pending:
            todo = [spec for _, spec, _ in pending]
            if tracer.enabled:
                # Trace-collecting path: each task runs under its own
                # tracer/registry (in-process for the serial case too, so
                # the merged sequence matches the pooled one exactly) and
                # the parent absorbs payloads in spec order.
                if n_workers == 1:
                    traced = [_run_spec_traced(spec) for spec in todo]
                else:
                    chunksize = max(1, len(todo) // (n_workers * 4))
                    with ProcessPoolExecutor(max_workers=n_workers) as pool:
                        traced = list(
                            pool.map(
                                _run_spec_traced, todo, chunksize=chunksize
                            )
                        )
                registry = get_metrics()
                computed = []
                for result, trace_data, metrics_data in traced:
                    tracer.absorb(trace_data)
                    registry.merge(metrics_data)
                    computed.append(result)
            elif n_workers == 1:
                computed = [_run_spec(spec) for spec in todo]
            else:
                chunksize = max(1, len(todo) // (n_workers * 4))
                with ProcessPoolExecutor(max_workers=n_workers) as pool:
                    computed = list(
                        pool.map(_run_spec, todo, chunksize=chunksize)
                    )
            for (index, _spec, key), result in zip(pending, computed):
                results[index] = result
                if cache is not None and key is not None:
                    cache.put(key, result)

        totals: Dict[str, float] = {}
        for result in results:
            for phase, seconds in (result.phase_times or {}).items():  # type: ignore[union-attr]
                totals[phase] = totals.get(phase, 0.0) + seconds
        stats.phase_totals = totals
        if cache is not None:
            stats.cache_evictions = cache.evictions
            cache.flush_counters()
        stats.wall_s = time.perf_counter() - t_start

        # Engine-side metrics: coarse, once per run.
        registry = get_metrics()
        registry.counter("engine.runs").inc()
        registry.counter("engine.experiments").inc(len(specs))
        registry.counter("engine.cache.hits").inc(stats.cache_hits)
        registry.counter("engine.cache.misses").inc(stats.cache_misses)
        registry.gauge("engine.workers").set(stats.workers)
        registry.gauge("engine.worker_utilization").set(stats.utilization)
        for phase, seconds in totals.items():
            registry.histogram(f"engine.phase.{phase}_s").observe(seconds)
        if tracer.enabled:
            engine_span.set(
                workers=stats.workers,
                cache_hits=stats.cache_hits,
                cache_misses=stats.cache_misses,
            )
    return results, stats  # type: ignore[return-value]
