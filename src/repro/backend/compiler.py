"""The final compiler: configurable pass pipeline + presets.

``FinalCompiler(machine, config)`` lowers a source program through
codegen → register allocation → list scheduling → (optionally)
machine-level modulo scheduling, returning a :class:`CompiledProgram`
ready for the cycle simulator.

Presets map to the paper's compilers:

=============  ==========================================================
``gcc_O0``     no scheduling at all (one op per cycle) — the "weak
               compiler without -O3" side of Fig. 16
``gcc_O3``     list scheduling only.  The paper found GCC's Swing MS
               ineffective ("scheduling optimizations such as MVE and
               unrolling were not performed"), so the GCC model runs no
               machine-level MS — the Figs. 14/15/17 baseline
``icc_O3``     list scheduling + IMS + predication (EPIC) — Figs. 18/19
``icc_O0``     ICC with optimization disabled (Fig. 16's gap)
``xlc_O3``     list scheduling + IMS, no predication — Fig. 20
``arm_gcc``    list scheduling on a single-issue core — Figs. 21/22
=============  ==========================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional

from repro.backend.codegen import compile_to_lir
from repro.backend.ims import IMSReport, run_ims
from repro.backend.listsched import schedule_module, sequential_lengths
from repro.backend.lir import Module
from repro.backend.regalloc import AllocationResult, allocate
from repro.backend.rotate import rotate_loops
from repro.lang.ast_nodes import Program
from repro.lang.parser import parse_program_cached
from repro.machines.model import MachineModel


@dataclass(frozen=True)
class CompilerConfig:
    """Which passes the final compiler runs."""

    name: str
    list_schedule: bool = True
    ims: bool = False
    predication: bool = False
    regalloc: bool = True
    # Bottom-test loop rotation; off models a compiler that schedules
    # straight-line code but leaves loop control naive.
    rotate: bool = True
    # Fuse float multiply-add into one op (Itanium/POWER4 FMA pipes).
    fma: bool = False


COMPILER_PRESETS: Dict[str, CompilerConfig] = {
    "gcc_O0": CompilerConfig(name="gcc_O0", list_schedule=False),
    "gcc_O3": CompilerConfig(name="gcc_O3", list_schedule=True),
    "icc_O0": CompilerConfig(name="icc_O0", list_schedule=True, rotate=False),
    "icc_O3": CompilerConfig(
        name="icc_O3", list_schedule=True, ims=True, predication=True,
        fma=True,
    ),
    "xlc_O3": CompilerConfig(
        name="xlc_O3", list_schedule=True, ims=True, fma=True
    ),
    "arm_gcc": CompilerConfig(name="arm_gcc", list_schedule=True),
}


@dataclass
class CompiledProgram:
    """Output of the final compiler, ready to execute."""

    module: Module
    machine: MachineModel
    config: CompilerConfig
    alloc: Optional[AllocationResult] = None
    ims_reports: List[IMSReport] = field(default_factory=list)

    @property
    def ims_applied(self) -> bool:
        return any(r.success for r in self.ims_reports)

    def loop_bundle_counts(self) -> Dict[str, int]:
        """Bundles (cycles) per loop-body execution — the paper's IA-64
        "bundles in the loop body" metric."""
        out: Dict[str, int] = {}
        for loop in self.module.loops:
            block = self.module.blocks[loop.body_block]
            out[loop.body_block] = (
                block.ims_ii
                if block.ims_ii is not None
                else (block.schedule_length or len(block.instrs))
            )
        return out


class FinalCompiler:
    """Compile source programs for a machine at a given preset."""

    def __init__(self, machine: MachineModel, config: CompilerConfig | str):
        self.machine = machine
        if isinstance(config, str):
            config = COMPILER_PRESETS[config]
        self.config = config

    def compile(self, program: Program | str) -> CompiledProgram:
        from repro.obs import get_tracer

        tracer = get_tracer()
        if isinstance(program, str):
            program = parse_program_cached(program)
        with tracer.span(
            "backend.compile",
            machine=self.machine.name,
            preset=self.config.name,
        ):
            return self._compile(program, tracer)

    def _compile(self, program: Program, tracer) -> CompiledProgram:
        module = compile_to_lir(
            program,
            use_predication=self.config.predication,
            use_fma=self.config.fma,
        )
        ims_reports: List[IMSReport] = []
        if self.config.list_schedule:
            if self.config.rotate:
                rotate_loops(module)
            # Schedule (and modulo-schedule) on virtual registers — the
            # compiler's view before allocation, free of the false
            # WAW/WAR chains register reuse would inject.
            schedule_module(module, self.machine)
            if self.config.ims:
                ims_reports = run_ims(module, self.machine)
                if tracer.enabled:
                    for report in ims_reports:
                        tracer.event(
                            "backend.ims",
                            loop=report.loop,
                            success=report.success,
                            ii=report.ii,
                            reason=report.reason or "",
                        )
        alloc = None
        if self.config.regalloc:
            alloc = allocate(module, self.machine.num_registers)
            # Spill code invalidates the affected blocks' schedules (and
            # any modulo schedule): rebuild them on the physical code so
            # spill serialization is priced in.
            for name in alloc.touched_blocks:
                block = module.blocks[name]
                if block.ims_ii is not None:
                    block.ims_ii = None
                    for report in ims_reports:
                        if report.loop == name and report.success:
                            report.success = False
                            report.ii = None
                            report.reason = (
                                "register pressure: spill code invalidated "
                                "the modulo schedule"
                            )
                if self.config.list_schedule:
                    from repro.backend.listsched import schedule_block

                    schedule_block(block, self.machine)
        if not self.config.list_schedule:
            sequential_lengths(module, self.machine)
        return CompiledProgram(
            module=module,
            machine=self.machine,
            config=self.config,
            alloc=alloc,
            ims_reports=ims_reports,
        )


def compile_and_run(
    program: Program | str,
    machine: MachineModel,
    config: CompilerConfig | str,
    env: Optional[Mapping[str, Any]] = None,
):
    """Convenience: compile then execute; returns (CompiledProgram,
    ExecutionResult)."""
    from repro.sim.executor import execute

    compiled = FinalCompiler(machine, config).compile(program)
    result = execute(compiled.module, machine, env=env)
    return compiled, result
