"""Low-level IR: three-address code over virtual registers.

Instructions
------------

===========  =======================  =============================
op           operands                 meaning
===========  =======================  =============================
``movi``     dst, imm                 dst ← constant
``mov``      dst, (a,)                dst ← a
``add…mod``  dst, (a, b)              integer arithmetic (C semantics)
``fadd…``    dst, (a, b)              IEEE double arithmetic
``fma``      dst, (a, b, c)           dst ← a·b + c (same rounding as
                                      the unfused pair — see codegen)
``neg/fneg`` dst, (a,)                negation
``lt…ne``    dst, (a, b)              comparison, yields 0/1
``and/or``   dst, (a, b)              logical on 0/1 values
``not``      dst, (a,)                logical negation
``ld``       dst, (idx?,), array+disp dst ← array[idx + disp]
``st``       (val, idx?), array+disp  array[idx + disp] ← val
``select``   dst, (c, a, b)           dst ← c ? a : b
``sqrt`` …   dst, (a,…)               math intrinsics
``br``       label                    unconditional jump
``brf``      (c,), label              jump when c == 0
``call``     dst?, (args…), name      opaque call (barrier)
===========  =======================  =============================

``ld``/``st`` may omit the index register (``None``) for a constant
address (``disp`` only).  ``iv`` annotations carry the induction
variable affinity (coefficient, offset) of the address when the codegen
could prove it — the machine-level modulo scheduler depends on them.

A :class:`Module` is a list of named :class:`Block`\\ s with fallthrough
order plus array metadata and the scalar→register binding map.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

INT_ARITH = ("add", "sub", "mul", "div", "mod")
FLOAT_ARITH = ("fadd", "fsub", "fmul", "fdiv")
COMPARES = ("lt", "le", "gt", "ge", "eq", "ne")
LOGICALS = ("and", "or", "not")
INTRINSICS = (
    "sqrt",
    "fabs",
    "iabs",
    "fmin",
    "fmax",
    "imin",
    "imax",
    "exp",
    "log",
    "sin",
    "cos",
    "powr",
    "floorr",
    "ceilr",
)
ALL_OPS = (
    ("movi", "mov", "neg", "fneg", "ld", "st", "select", "br", "brf", "call")
    + INT_ARITH
    + FLOAT_ARITH
    + COMPARES
    + LOGICALS
    + INTRINSICS
)


# op → functional-unit class; ops absent here are "alu".  Integer
# multiply shares the multiplier with the float ops.
_OP_CLASS = {
    "ld": "mem", "st": "mem",
    "fadd": "fadd", "fsub": "fadd", "fneg": "fadd",
    "fmul": "fmul", "fma": "fmul", "mul": "fmul",
    "fdiv": "div", "div": "div", "mod": "div", "sqrt": "div",
    "exp": "div", "log": "div", "sin": "div", "cos": "div",
    "powr": "div",
    "br": "branch", "brf": "branch", "brt": "branch", "call": "branch",
}


@dataclass
class IVInfo:
    """Address affinity: ``address = coeff · iv + offset`` (elements,
    row-major flattened); ``iv`` is the loop variable's register."""

    iv: str
    coeff: int
    offset: int


@dataclass
class Instr:
    """One LIR instruction."""

    op: str
    dst: Optional[str] = None
    srcs: Tuple[str, ...] = ()
    imm: Optional[object] = None  # int or float constant
    array: Optional[str] = None
    disp: int = 0
    label: Optional[str] = None
    name: Optional[str] = None  # call target
    iv: Optional[IVInfo] = None

    def op_class(self) -> str:
        """Functional-unit class for scheduling and energy accounting."""
        return _OP_CLASS.get(self.op, "alu")

    def reads(self) -> Tuple[str, ...]:
        return self.srcs

    def writes(self) -> Optional[str]:
        return self.dst

    def is_branch(self) -> bool:
        return self.op in ("br", "brf", "brt")

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        parts = [self.op]
        if self.dst:
            parts.append(self.dst)
        if self.srcs:
            parts.append("(" + ", ".join(self.srcs) + ")")
        if self.imm is not None:
            parts.append(f"#{self.imm}")
        if self.array:
            parts.append(f"{self.array}+{self.disp}")
        if self.label:
            parts.append(f"-> {self.label}")
        if self.name:
            parts.append(f"@{self.name}")
        return " ".join(parts)


@dataclass
class Block:
    """A basic block; control leaves via the trailing branch(es) or by
    falling through to the next block in module order."""

    name: str
    instrs: List[Instr] = field(default_factory=list)
    # Filled by the scheduler:
    schedule: Optional[List[List[int]]] = None  # cycles -> instr indices
    schedule_length: int = 0
    # Filled by IMS when this block is a pipelined loop body:
    ims_ii: Optional[int] = None

    def emit(self, instr: Instr) -> Instr:
        self.instrs.append(instr)
        return instr

    def successors(self, next_block: Optional[str]) -> List[str]:
        succs: List[str] = []
        for instr in self.instrs:
            if instr.op in ("brf", "brt"):
                succs.append(instr.label)  # type: ignore[arg-type]
            elif instr.op == "br":
                succs.append(instr.label)  # type: ignore[arg-type]
                return succs
        if next_block is not None:
            succs.append(next_block)
        return succs


@dataclass
class LoopDesc:
    """An innermost source loop after codegen (an IMS candidate)."""

    cond_block: str
    body_block: str
    iv_reg: str
    step: int


@dataclass
class Module:
    """A compiled program."""

    blocks: Dict[str, Block] = field(default_factory=dict)
    order: List[str] = field(default_factory=list)
    entry: str = "entry"
    arrays: Dict[str, Tuple[Tuple[int, ...], str]] = field(default_factory=dict)
    scalar_regs: Dict[str, str] = field(default_factory=dict)
    scalar_types: Dict[str, str] = field(default_factory=dict)
    # Filled by register allocation for scalars living in spill slots.
    scalar_slots: Dict[str, int] = field(default_factory=dict)
    loops: List[LoopDesc] = field(default_factory=list)
    n_vregs: int = 0

    def new_block(self, name: str, after: Optional[str] = None) -> Block:
        """Create a block; ``after`` positions it in fallthrough order
        (immediately after the named block) instead of at the end."""
        if name in self.blocks:
            raise ValueError(f"duplicate block {name!r}")
        block = Block(name)
        self.blocks[name] = block
        if after is None:
            self.order.append(name)
        else:
            self.order.insert(self.order.index(after) + 1, name)
        return block

    def next_of(self, name: str) -> Optional[str]:
        idx = self.order.index(name)
        return self.order[idx + 1] if idx + 1 < len(self.order) else None

    def all_instrs(self) -> List[Instr]:
        out: List[Instr] = []
        for name in self.order:
            out.extend(self.blocks[name].instrs)
        return out

    def dump(self) -> str:  # pragma: no cover - debugging aid
        lines = []
        for name in self.order:
            lines.append(f"{name}:")
            for instr in self.blocks[name].instrs:
                lines.append(f"    {instr}")
        return "\n".join(lines)
