"""AST → LIR code generation.

Conventions:

* every scalar gets a dedicated virtual register (``Module.scalar_regs``);
* multi-dimensional arrays are flattened row-major; constant parts of a
  subscript fold into the load/store displacement (modelling addressing
  modes — the paper notes SLMS's shifted indices cost nothing because
  ``A[i+1]`` is an addressing-mode displacement);
* memory ops inside a counted loop are annotated with their induction
  variable affinity when provable, which machine-level modulo
  scheduling (:mod:`repro.backend.ims`) uses for dependence distances;
* ``if`` statements lower to branches by default, or to select/
  predicated-store form when the compiler config enables predication
  (EPIC-style targets) — predication keeps SLMSed kernels straight-line.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.analysis.affine import analyze_subscript
from repro.lang.ast_nodes import (
    ArrayRef,
    Assign,
    BinOp,
    Break,
    Call,
    Continue,
    Decl,
    Expr,
    ExprStmt,
    FloatLit,
    For,
    If,
    IntLit,
    ParGroup,
    Program,
    Stmt,
    Ternary,
    UnaryOp,
    Var,
    While,
)
from repro.backend.lir import Block, Instr, IVInfo, LoopDesc, Module

_CMP_OPS = {"<": "lt", "<=": "le", ">": "gt", ">=": "ge", "==": "eq", "!=": "ne"}
_INTRINSIC_MAP = {
    "min": "vmin",
    "max": "vmax",
    "abs": "vabs",
    "sqrt": "sqrt",
    "exp": "exp",
    "log": "log",
    "sin": "sin",
    "cos": "cos",
    "pow": "powr",
    "floor": "floorr",
    "ceil": "ceilr",
}


class CodegenError(Exception):
    """Source construct the backend cannot lower."""


@dataclass
class _LoopCtx:
    iv: Optional[str]  # source name of the induction variable
    iv_reg: Optional[str]
    break_label: str
    continue_label: str


class Codegen:
    """One-shot code generator; use :func:`compile_to_lir`."""

    def __init__(
        self,
        program: Program,
        use_predication: bool = False,
        use_fma: bool = False,
    ):
        self.program = program
        self.use_predication = use_predication
        self.use_fma = use_fma
        self.module = Module()
        self.current: Block = self.module.new_block("entry")
        self.counter = 0
        self.block_counter = 0
        self.types: Dict[str, str] = {}
        self.loop_stack: List[_LoopCtx] = []
        self._infer_types()

    # ------------------------------------------------------------------
    # setup
    # ------------------------------------------------------------------
    def _infer_types(self) -> None:
        from repro.lang.visitors import walk

        for node in walk(self.program):
            if isinstance(node, Decl):
                self.types[node.name] = node.type
        # Loop induction variables and subscript scalars default to int.
        for node in walk(self.program):
            if isinstance(node, For) and isinstance(node.init, Assign):
                target = node.init.target
                if isinstance(target, Var):
                    self.types.setdefault(target.name, "int")
            if isinstance(node, ArrayRef):
                for idx in node.indices:
                    for sub in walk(idx):
                        if isinstance(sub, Var):
                            self.types.setdefault(sub.name, "int")

    def scalar_type(self, name: str) -> str:
        return self.types.get(name, "float")

    # ------------------------------------------------------------------
    # registers and blocks
    # ------------------------------------------------------------------
    def fresh(self) -> str:
        self.counter += 1
        self.module.n_vregs = self.counter
        return f"v{self.counter}"

    def scalar_reg(self, name: str) -> str:
        reg = self.module.scalar_regs.get(name)
        if reg is None:
            reg = self.fresh()
            self.module.scalar_regs[name] = reg
            self.module.scalar_types[name] = self.scalar_type(name)
        return reg

    def new_block(self, after: Optional[str] = None) -> Block:
        """Create a block positioned after ``after`` (default: after the
        current block) so fallthrough order matches source order."""
        self.block_counter += 1
        return self.module.new_block(
            f"bb{self.block_counter}", after=after or self.current.name
        )

    def emit(self, **kwargs) -> Instr:
        return self.current.emit(Instr(**kwargs))

    # ------------------------------------------------------------------
    # expression typing
    # ------------------------------------------------------------------
    def expr_type(self, expr: Expr) -> str:
        if isinstance(expr, IntLit):
            return "int"
        if isinstance(expr, FloatLit):
            return "float"
        if isinstance(expr, Var):
            return self.scalar_type(expr.name)
        if isinstance(expr, ArrayRef):
            meta = self.module.arrays.get(expr.name)
            return meta[1] if meta else "float"
        if isinstance(expr, UnaryOp):
            if expr.op == "!":
                return "int"
            return self.expr_type(expr.operand)
        if isinstance(expr, BinOp):
            if expr.op in _CMP_OPS or expr.op in ("&&", "||"):
                return "int"
            left = self.expr_type(expr.left)
            right = self.expr_type(expr.right)
            return "float" if "float" in (left, right) else "int"
        if isinstance(expr, Ternary):
            then = self.expr_type(expr.then)
            els = self.expr_type(expr.els)
            return "float" if "float" in (then, els) else "int"
        if isinstance(expr, Call):
            return "float"
        raise CodegenError(f"untypable expression {type(expr).__name__}")

    # ------------------------------------------------------------------
    # addressing
    # ------------------------------------------------------------------
    def _array_meta(self, ref: ArrayRef) -> Tuple[Tuple[int, ...], str]:
        meta = self.module.arrays.get(ref.name)
        if meta is None:
            raise CodegenError(f"use of undeclared array {ref.name!r}")
        dims, typ = meta
        if len(ref.indices) != len(dims):
            raise CodegenError(
                f"array {ref.name!r} rank {len(dims)} indexed with "
                f"{len(ref.indices)} subscripts"
            )
        return dims, typ

    def _flat_address(self, ref: ArrayRef) -> Tuple[Optional[str], int, Optional[IVInfo]]:
        """Lower subscripts to (index register or None, displacement, iv).

        The displacement absorbs every constant contribution; the
        returned register covers the variable part.  ``iv`` is the
        affinity annotation relative to the innermost loop variable.
        """
        dims, _ = self._array_meta(ref)
        strides = []
        acc = 1
        for d in reversed(dims):
            strides.append(acc)
            acc *= d
        strides.reverse()

        disp = 0
        parts: List[str] = []
        iv_coeff = 0
        iv_known = True
        ctx = self.loop_stack[-1] if self.loop_stack else None
        iv_name = ctx.iv if ctx else None

        for idx_expr, stride in zip(ref.indices, strides):
            if isinstance(idx_expr, IntLit):
                disp += idx_expr.value * stride
                continue
            affine = (
                analyze_subscript(idx_expr, iv_name) if iv_name else None
            )
            if affine is not None:
                disp += affine.offset * stride
                if affine.coeff:
                    iv_coeff += affine.coeff * stride
                    # Variable part: coeff * iv (+ symbolic terms below).
                    reg = self._scaled_iv(affine.coeff)
                    if stride != 1:
                        reg = self._scale(reg, stride)
                    parts.append(reg)
                for sym, coeff in affine.syms:
                    iv_known = False
                    reg = self.scalar_reg(sym)
                    if coeff != 1:
                        reg = self._scale(reg, coeff)
                    if stride != 1:
                        reg = self._scale(reg, stride)
                    parts.append(reg)
            else:
                iv_known = False
                reg = self.gen_expr(idx_expr)
                if stride != 1:
                    reg = self._scale(reg, stride)
                parts.append(reg)

        index_reg: Optional[str] = None
        for part in parts:
            if index_reg is None:
                index_reg = part
            else:
                tmp = self.fresh()
                self.emit(op="add", dst=tmp, srcs=(index_reg, part))
                index_reg = tmp

        iv_info = None
        if ctx and ctx.iv_reg and iv_known and iv_coeff:
            iv_info = IVInfo(iv=ctx.iv_reg, coeff=iv_coeff, offset=disp)
        elif ctx and ctx.iv_reg and iv_known and index_reg is None:
            iv_info = IVInfo(iv=ctx.iv_reg, coeff=0, offset=disp)
        return index_reg, disp, iv_info

    def _scaled_iv(self, coeff: int) -> str:
        ctx = self.loop_stack[-1]
        assert ctx.iv_reg is not None
        if coeff == 1:
            return ctx.iv_reg
        return self._scale(ctx.iv_reg, coeff)

    def _scale(self, reg: str, factor: int) -> str:
        if factor == 1:
            return reg
        tmp = self.fresh()
        const = self.fresh()
        self.emit(op="movi", dst=const, imm=factor)
        self.emit(op="mul", dst=tmp, srcs=(reg, const))
        return tmp

    # ------------------------------------------------------------------
    # expressions
    # ------------------------------------------------------------------
    def gen_expr(self, expr: Expr) -> str:
        if isinstance(expr, IntLit):
            reg = self.fresh()
            self.emit(op="movi", dst=reg, imm=expr.value)
            return reg
        if isinstance(expr, FloatLit):
            reg = self.fresh()
            self.emit(op="movi", dst=reg, imm=expr.value)
            return reg
        if isinstance(expr, Var):
            return self.scalar_reg(expr.name)
        if isinstance(expr, ArrayRef):
            index_reg, disp, iv = self._flat_address(expr)
            reg = self.fresh()
            srcs = (index_reg,) if index_reg else ()
            self.emit(op="ld", dst=reg, srcs=srcs, array=expr.name, disp=disp, iv=iv)
            return reg
        if isinstance(expr, UnaryOp):
            inner = self.gen_expr(expr.operand)
            reg = self.fresh()
            if expr.op == "!":
                self.emit(op="not", dst=reg, srcs=(inner,))
            elif self.expr_type(expr.operand) == "float":
                self.emit(op="fneg", dst=reg, srcs=(inner,))
            else:
                self.emit(op="neg", dst=reg, srcs=(inner,))
            return reg
        if isinstance(expr, BinOp):
            return self._gen_binop(expr)
        if isinstance(expr, Ternary):
            cond = self.gen_expr(expr.cond)
            then = self.gen_expr(expr.then)
            els = self.gen_expr(expr.els)
            reg = self.fresh()
            self.emit(op="select", dst=reg, srcs=(cond, then, els))
            return reg
        if isinstance(expr, Call):
            return self._gen_call(expr)
        raise CodegenError(f"cannot lower {type(expr).__name__}")

    def _gen_binop(self, expr: BinOp) -> str:
        if expr.op in ("&&", "||"):
            # Non-short-circuit logical: operands here are side-effect
            # free (the dialect has no assignment expressions), so eager
            # evaluation is sound and keeps blocks straight-line.
            left = self.gen_expr(expr.left)
            right = self.gen_expr(expr.right)
            reg = self.fresh()
            self.emit(
                op="and" if expr.op == "&&" else "or",
                dst=reg,
                srcs=(left, right),
            )
            return reg
        # FMA fusion: float x*y + z (either orientation) in one op.
        if (
            self.use_fma
            and expr.op == "+"
            and "float" in (self.expr_type(expr.left), self.expr_type(expr.right))
        ):
            mul_side, add_side = None, None
            if isinstance(expr.left, BinOp) and expr.left.op == "*":
                mul_side, add_side = expr.left, expr.right
            elif isinstance(expr.right, BinOp) and expr.right.op == "*":
                mul_side, add_side = expr.right, expr.left
            if mul_side is not None:
                a = self.gen_expr(mul_side.left)
                b = self.gen_expr(mul_side.right)
                c = self.gen_expr(add_side)
                reg = self.fresh()
                self.emit(op="fma", dst=reg, srcs=(a, b, c))
                return reg
        left = self.gen_expr(expr.left)
        right = self.gen_expr(expr.right)
        reg = self.fresh()
        if expr.op in _CMP_OPS:
            self.emit(op=_CMP_OPS[expr.op], dst=reg, srcs=(left, right))
            return reg
        is_float = "float" in (self.expr_type(expr.left), self.expr_type(expr.right))
        if expr.op == "%":
            if is_float:
                raise CodegenError("% requires integer operands")
            self.emit(op="mod", dst=reg, srcs=(left, right))
            return reg
        table = {"+": "add", "-": "sub", "*": "mul", "/": "div"}
        op = table[expr.op]
        if is_float:
            op = "f" + op
        self.emit(op=op, dst=reg, srcs=(left, right))
        return reg

    def _gen_call(self, expr: Call) -> str:
        args = [self.gen_expr(a) for a in expr.args]
        reg = self.fresh()
        intrinsic = _INTRINSIC_MAP.get(expr.name)
        if intrinsic is not None:
            self.emit(op=intrinsic, dst=reg, srcs=tuple(args))
        else:
            self.emit(op="call", dst=reg, srcs=tuple(args), name=expr.name)
        return reg

    # ------------------------------------------------------------------
    # statements
    # ------------------------------------------------------------------
    def gen_stmt(self, stmt: Stmt) -> None:
        if isinstance(stmt, Decl):
            if stmt.dims:
                self.module.arrays[stmt.name] = (stmt.dims, stmt.type)
            else:
                reg = self.scalar_reg(stmt.name)
                if stmt.init is not None:
                    value = self.gen_expr(stmt.init)
                    if stmt.type == "int" and self.expr_type(stmt.init) == "float":
                        self.emit(op="trunc", dst=reg, srcs=(value,))
                    else:
                        self.emit(op="mov", dst=reg, srcs=(value,))
            return
        if isinstance(stmt, Assign):
            self._gen_assign(stmt)
            return
        if isinstance(stmt, ExprStmt):
            self.gen_expr(stmt.expr)
            return
        if isinstance(stmt, ParGroup):
            for inner in stmt.stmts:
                self.gen_stmt(inner)
            return
        if isinstance(stmt, If):
            self._gen_if(stmt)
            return
        if isinstance(stmt, For):
            self._gen_for(stmt)
            return
        if isinstance(stmt, While):
            self._gen_while(stmt)
            return
        if isinstance(stmt, Break):
            if not self.loop_stack:
                raise CodegenError("break outside a loop")
            self.emit(op="br", label=self.loop_stack[-1].break_label)
            self.current = self.new_block()
            return
        if isinstance(stmt, Continue):
            if not self.loop_stack:
                raise CodegenError("continue outside a loop")
            self.emit(op="br", label=self.loop_stack[-1].continue_label)
            self.current = self.new_block()
            return
        raise CodegenError(f"cannot lower statement {type(stmt).__name__}")

    def _gen_assign(self, stmt: Assign) -> None:
        value = self.gen_expr(stmt.expanded_value())
        if isinstance(stmt.target, Var):
            reg = self.scalar_reg(stmt.target.name)
            # C semantics: assigning a float expression to an int scalar
            # truncates toward zero — made explicit so register
            # allocation can freely rename registers.
            if (
                self.scalar_type(stmt.target.name) == "int"
                and self.expr_type(stmt.expanded_value()) == "float"
            ):
                self.emit(op="trunc", dst=reg, srcs=(value,))
            else:
                self.emit(op="mov", dst=reg, srcs=(value,))
            return
        index_reg, disp, iv = self._flat_address(stmt.target)
        srcs = (value, index_reg) if index_reg else (value,)
        self.emit(op="st", srcs=srcs, array=stmt.target.name, disp=disp, iv=iv)

    def _single_scalar_assign(self, stmt: If) -> Optional[Assign]:
        if stmt.els or len(stmt.then) != 1:
            return None
        inner = stmt.then[0]
        if isinstance(inner, Assign):
            return inner
        return None

    def _gen_if(self, stmt: If) -> None:
        inner = self._single_scalar_assign(stmt)
        if self.use_predication and inner is not None:
            cond = self.gen_expr(stmt.cond)
            value = self.gen_expr(inner.expanded_value())
            if isinstance(inner.target, Var):
                reg = self.scalar_reg(inner.target.name)
                out = self.fresh()
                self.emit(op="select", dst=out, srcs=(cond, value, reg))
                self.emit(op="mov", dst=reg, srcs=(out,))
            else:
                # Predicated store: read-modify-write the same element.
                index_reg, disp, iv = self._flat_address(inner.target)
                old = self.fresh()
                srcs = (index_reg,) if index_reg else ()
                self.emit(
                    op="ld", dst=old, srcs=srcs, array=inner.target.name,
                    disp=disp, iv=iv,
                )
                out = self.fresh()
                self.emit(op="select", dst=out, srcs=(cond, value, old))
                st_srcs = (out, index_reg) if index_reg else (out,)
                self.emit(
                    op="st", srcs=st_srcs, array=inner.target.name,
                    disp=disp, iv=iv,
                )
            return

        cond = self.gen_expr(stmt.cond)
        then_block = self.new_block()  # right after current
        else_block = self.new_block(after=then_block.name)
        end_block = (
            self.new_block(after=else_block.name) if stmt.els else else_block
        )
        self.emit(op="brf", srcs=(cond,), label=else_block.name)
        self.current = then_block
        for s in stmt.then:
            self.gen_stmt(s)
        if stmt.els:
            self.emit(op="br", label=end_block.name)
            self.current = else_block
            for s in stmt.els:
                self.gen_stmt(s)
            # else falls through to end_block, which must follow the
            # last block the else body created.
            self.module.order.remove(end_block.name)
            self.module.order.insert(
                self.module.order.index(self.current.name) + 1, end_block.name
            )
            self.current = end_block
        else:
            # then falls through to else_block (the join); keep the join
            # after whatever blocks the then body created.
            self.module.order.remove(else_block.name)
            self.module.order.insert(
                self.module.order.index(self.current.name) + 1, else_block.name
            )
            self.current = else_block

    def _gen_for(self, stmt: For) -> None:
        iv_name: Optional[str] = None
        iv_reg: Optional[str] = None
        step_const: Optional[int] = None
        if stmt.init is not None:
            self.gen_stmt(stmt.init)
            if isinstance(stmt.init, Assign) and isinstance(stmt.init.target, Var):
                iv_name = stmt.init.target.name
                iv_reg = self.scalar_reg(iv_name)
        if (
            isinstance(stmt.step, Assign)
            and isinstance(stmt.step.target, Var)
            and stmt.step.target.name == iv_name
        ):
            if isinstance(stmt.step.value, IntLit) and stmt.step.op in ("+", "-"):
                step_const = (
                    stmt.step.value.value
                    if stmt.step.op == "+"
                    else -stmt.step.value.value
                )
            elif (
                stmt.step.op is None
                and isinstance(stmt.step.value, BinOp)
                and isinstance(stmt.step.value.left, Var)
                and stmt.step.value.left.name == iv_name
                and isinstance(stmt.step.value.right, IntLit)
                and stmt.step.value.op in ("+", "-")
            ):
                step_const = (
                    stmt.step.value.right.value
                    if stmt.step.value.op == "+"
                    else -stmt.step.value.right.value
                )

        from repro.lang.visitors import walk as _walk

        has_continue = any(
            isinstance(node, Continue)
            for s in stmt.body
            for node in _walk(s)
        )

        cond_block = self.new_block()
        self.emit(op="br", label=cond_block.name)
        self.current = cond_block
        body_block = self.new_block(after=cond_block.name)
        exit_block = self.new_block(after=body_block.name)
        self.current = cond_block
        if stmt.cond is not None:
            cond = self.gen_expr(stmt.cond)
            self.emit(op="brf", srcs=(cond,), label=exit_block.name)
        self.current = body_block

        # `continue` must still run the step, so it targets a dedicated
        # step block when present; otherwise the step inlines at the
        # body's end (keeping single-block loops IMS-schedulable).
        step_block = None
        if has_continue:
            step_block = self.new_block(after=body_block.name)
            self.current = body_block

        ctx = _LoopCtx(
            iv=iv_name,
            iv_reg=iv_reg,
            break_label=exit_block.name,
            continue_label=step_block.name if step_block else cond_block.name,
        )
        self.loop_stack.append(ctx)
        start_block = self.current
        for s in stmt.body:
            self.gen_stmt(s)
        self.loop_stack.pop()
        if step_block is not None:
            # Fallthrough from the body's last block into the step block:
            # reposition the step block after it.
            self.module.order.remove(step_block.name)
            self.module.order.insert(
                self.module.order.index(self.current.name) + 1,
                step_block.name,
            )
            self.current = step_block
        if stmt.step is not None:
            self.gen_stmt(stmt.step)
        self.emit(op="br", label=cond_block.name)

        if (
            iv_reg is not None
            and step_const is not None
            and self.current is start_block is body_block
        ):
            # Single-block loop body: an IMS candidate.
            self.module.loops.append(
                LoopDesc(
                    cond_block=cond_block.name,
                    body_block=body_block.name,
                    iv_reg=iv_reg,
                    step=step_const,
                )
            )
        self.current = exit_block

    def _gen_while(self, stmt: While) -> None:
        cond_block = self.new_block()
        self.emit(op="br", label=cond_block.name)
        self.current = cond_block
        body_block = self.new_block(after=cond_block.name)
        exit_block = self.new_block(after=body_block.name)
        self.current = cond_block
        cond = self.gen_expr(stmt.cond)
        self.emit(op="brf", srcs=(cond,), label=exit_block.name)
        self.current = body_block
        self.loop_stack.append(
            _LoopCtx(
                iv=None,
                iv_reg=None,
                break_label=exit_block.name,
                continue_label=cond_block.name,
            )
        )
        for s in stmt.body:
            self.gen_stmt(s)
        self.loop_stack.pop()
        self.emit(op="br", label=cond_block.name)
        self.current = exit_block

    # ------------------------------------------------------------------
    def run(self) -> Module:
        for stmt in self.program.body:
            self.gen_stmt(stmt)
        return self.module


def compile_to_lir(
    program: Program,
    use_predication: bool = False,
    use_fma: bool = False,
) -> Module:
    """Lower a program to LIR."""
    return Codegen(
        program, use_predication=use_predication, use_fma=use_fma
    ).run()
