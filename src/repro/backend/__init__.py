"""The "final compiler" — the backend that consumes (SLMSed) source.

The paper's pipeline (Fig. 3/4) is: source → SLC/SLMS → *final
compiler* → hardware.  This package is that final compiler, built so its
optimization level can be dialed to imitate the paper's compilers:

* :mod:`repro.backend.lir` — a three-address, virtual-register IR with
  array load/store addressing and branch/label control flow;
* :mod:`repro.backend.codegen` — AST → LIR with induction-variable
  annotations on memory ops (feeding machine-level dependence checks);
* :mod:`repro.backend.regalloc` — linear-scan register allocation with
  spilling to stack slots (register pressure becomes memory traffic);
* :mod:`repro.backend.listsched` — basic-block list scheduling into
  machine "bundles" (VLIW rows / superscalar issue groups);
* :mod:`repro.backend.ims` — Rau-style machine-level Iterative Modulo
  Scheduling of innermost loop bodies, with the documented real-world
  limitations SLMS exploits (§7): a loop-size cap, no index rewriting,
  and abort on register pressure;
* :mod:`repro.backend.compiler` — presets: ``gcc_O0``, ``gcc_O3`` (list
  scheduling, no MS), ``icc_O3``/``xlc_O3`` (list scheduling + IMS).
"""

from repro.backend.compiler import (
    COMPILER_PRESETS,
    CompiledProgram,
    CompilerConfig,
    FinalCompiler,
)
from repro.backend.lir import Block, Instr, Module

__all__ = [
    "Block",
    "COMPILER_PRESETS",
    "CompiledProgram",
    "CompilerConfig",
    "FinalCompiler",
    "Instr",
    "Module",
]
