"""Loop rotation (bottom-testing loops).

Naive codegen emits ``br cond; cond: test; brf exit; body: …; br cond``,
which charges the test block as a separate (serially scheduled) block
every iteration.  Optimizing compilers rotate counted loops so the test
sits at the *bottom* of the body and the body branches back to itself:

.. code-block:: text

    entry:  br cond
    cond:   test; brf exit        (runs once: the zero-trip guard)
    body:   …step…; test'; brt body
    exit:

After rotation a single-block loop body contains the whole recurrence —
including the induction-variable update and the test — so both the list
scheduler and the machine-level modulo scheduler see (and overlap) the
loop control, exactly like real -O2/-O3 code.

The pass runs on virtual registers before allocation; the duplicated
test instructions reuse the cond block's registers (plain WAW reuse the
allocator understands).
"""

from __future__ import annotations

from typing import List

from repro.backend.lir import Instr, Module


def rotate_loops(module: Module) -> int:
    """Rotate every recorded single-block counted loop; returns count."""
    rotated = 0
    for loop in module.loops:
        cond = module.blocks.get(loop.cond_block)
        body = module.blocks.get(loop.body_block)
        if cond is None or body is None:
            continue
        if not body.instrs or not cond.instrs:
            continue
        # The body must be a self-contained latch: ends with br -> cond.
        last = body.instrs[-1]
        if last.op != "br" or last.label != loop.cond_block:
            continue
        # The cond block must end with brf -> exit and contain only
        # straight-line test computation before it.
        if not cond.instrs or cond.instrs[-1].op != "brf":
            continue
        if any(ins.is_branch() for ins in cond.instrs[:-1]):
            continue
        brf = cond.instrs[-1]

        test_copy: List[Instr] = [
            Instr(
                op=ins.op,
                dst=ins.dst,
                srcs=ins.srcs,
                imm=ins.imm,
                array=ins.array,
                disp=ins.disp,
                label=ins.label,
                name=ins.name,
                iv=ins.iv,
            )
            for ins in cond.instrs[:-1]
        ]
        body.instrs = body.instrs[:-1] + test_copy + [
            Instr(op="brt", srcs=brf.srcs, label=loop.body_block)
        ]
        rotated += 1
    return rotated
