"""Basic-block list scheduling into machine bundles.

This is the paper's "final compiler" scheduler (Fig. 3): after SLMS the
backend only needs classic list scheduling of basic blocks to pack
independent operations — including operations SLMS hoisted from other
iterations — into the same cycle (VLIW bundle / superscalar issue
group).

Dependences within a block:

* register RAW with the producer's latency, WAR at latency 0 (operands
  read at issue), WAW at latency 1;
* memory ops on the same array serialize unless their addresses are
  provably distinct (same index register with different displacements,
  or both constant-addressed) — loads never conflict with loads;
* calls are barriers; the terminating branch issues last.

The scheduler is greedy critical-path list scheduling constrained by
``issue_width`` and per-class unit counts.  The resulting
``schedule_length`` in cycles is the block's contribution to execution
time; for loop bodies it is the paper's "bundles per iteration" metric.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.backend.lir import Block, Instr, Module
from repro.machines.model import MachineModel


@dataclass
class DepEdge:
    src: int
    dst: int
    latency: int


def _same_address(a: Instr, b: Instr) -> Optional[bool]:
    """True/False when provable, None when unknown."""
    a_idx = a.srcs[1] if a.op == "st" and len(a.srcs) > 1 else (
        a.srcs[0] if a.op == "ld" and a.srcs else None
    )
    b_idx = b.srcs[1] if b.op == "st" and len(b.srcs) > 1 else (
        b.srcs[0] if b.op == "ld" and b.srcs else None
    )
    if a_idx is None and b_idx is None:
        return a.disp == b.disp
    if a_idx == b_idx and a_idx is not None:
        return a.disp == b.disp
    if a.iv is not None and b.iv is not None and a.iv.iv == b.iv.iv:
        if a.iv.coeff == b.iv.coeff:
            return a.iv.offset == b.iv.offset
    return None


def build_dependences(instrs: List[Instr]) -> List[DepEdge]:
    """Intra-block dependence edges (indices into ``instrs``)."""
    edges: List[DepEdge] = []
    last_def: Dict[str, int] = {}
    uses_since_def: Dict[str, List[int]] = {}
    mem_ops: List[int] = []
    call_ops: List[int] = []
    edge_at: Dict[Tuple[int, int], DepEdge] = {}

    def add(src: int, dst: int, latency: int) -> None:
        if src == dst:
            return
        prev = edge_at.get((src, dst))
        if prev is not None:
            # Keep the max latency for duplicate edges.
            if latency > prev.latency:
                prev.latency = latency
            return
        edge = DepEdge(src, dst, latency)
        edge_at[(src, dst)] = edge
        edges.append(edge)

    def latency_of(j: int) -> int:
        return max(1, _latency_cache.get(instrs[j].op_class(), 1))

    for idx, instr in enumerate(instrs):
        # Register dependences.
        for src_reg in instr.srcs:
            if src_reg in last_def:
                add(last_def[src_reg], idx, latency_of(last_def[src_reg]))
        if instr.dst is not None:
            for use_idx in uses_since_def.get(instr.dst, []):
                add(use_idx, idx, 0)  # WAR
            if instr.dst in last_def:
                add(last_def[instr.dst], idx, 1)  # WAW
            last_def[instr.dst] = idx
            uses_since_def[instr.dst] = []
        for src_reg in instr.srcs:
            uses_since_def.setdefault(src_reg, []).append(idx)

        # Memory dependences.
        if instr.op in ("ld", "st"):
            for prev in mem_ops:
                prev_instr = instrs[prev]
                if instr.op == "ld" and prev_instr.op == "ld":
                    continue
                if prev_instr.array != instr.array:
                    continue
                same = _same_address(prev_instr, instr)
                if same is False:
                    continue
                add(prev, idx, 1)
            mem_ops.append(idx)

        # Calls are barriers.
        if instr.op == "call":
            for prev in mem_ops:
                add(prev, idx, 1)
            for prev in call_ops:
                add(prev, idx, 1)
            call_ops.append(idx)
        elif instr.op in ("ld", "st") and call_ops:
            add(call_ops[-1], idx, 1)

        # Branches issue after everything else in the block.
        if instr.is_branch():
            for prev in range(idx):
                add(prev, idx, 0)

    return edges


# Latencies are machine-specific; build_dependences uses this module
# cache set by schedule_block (keeps the edge builder signature simple).
_latency_cache: Dict[str, int] = {}


def schedule_block(block: Block, machine: MachineModel) -> int:
    """Greedy list scheduling; fills ``block.schedule`` and returns its
    length in cycles."""
    instrs = block.instrs
    n = len(instrs)
    if n == 0:
        block.schedule = []
        block.schedule_length = 0
        return 0

    global _latency_cache
    _latency_cache = dict(machine.latencies)
    edges = build_dependences(instrs)

    preds: Dict[int, List[Tuple[int, int]]] = {i: [] for i in range(n)}
    succs: Dict[int, List[Tuple[int, int]]] = {i: [] for i in range(n)}
    for e in edges:
        preds[e.dst].append((e.src, e.latency))
        succs[e.src].append((e.dst, e.latency))

    # Critical-path heights (priority).
    height = [1] * n
    for i in range(n - 1, -1, -1):
        for (j, lat) in succs[i]:
            height[i] = max(height[i], height[j] + max(lat, 1))

    indegree = [len(preds[i]) for i in range(n)]
    earliest = [0] * n
    scheduled: Dict[int, int] = {}
    ready = [i for i in range(n) if indegree[i] == 0]
    cycle = 0
    schedule: List[List[int]] = []

    remaining = n
    while remaining > 0:
        issued: List[int] = []
        used: Dict[str, int] = {}
        total = 0
        # Highest priority first among ops whose operands are ready.
        for i in sorted(ready, key=lambda k: (-height[k], k)):
            if earliest[i] > cycle:
                continue
            cls = instrs[i].op_class()
            if total >= machine.issue_width:
                break
            if used.get(cls, 0) >= machine.unit_count(cls):
                continue
            used[cls] = used.get(cls, 0) + 1
            total += 1
            issued.append(i)
        for i in issued:
            ready.remove(i)
            scheduled[i] = cycle
            remaining -= 1
            for (j, lat) in succs[i]:
                indegree[j] -= 1
                earliest[j] = max(earliest[j], cycle + lat)
                if indegree[j] == 0:
                    ready.append(j)
        schedule.append(issued)
        cycle += 1
        if cycle > 10000 + n * 64:
            raise RuntimeError("list scheduler failed to converge")

    # Trim trailing empty cycles (can't happen, but keep invariant tight).
    while schedule and not schedule[-1]:
        schedule.pop()
    block.schedule = schedule
    block.schedule_length = len(schedule)
    return block.schedule_length


def schedule_module(module: Module, machine: MachineModel) -> None:
    """Schedule every block; unscheduled (-O0 style) callers skip this."""
    for name in module.order:
        schedule_block(module.blocks[name], machine)


def sequential_lengths(module: Module, machine: Optional[MachineModel] = None) -> None:
    """-O0 model: fully serialized issue — each operation completes
    (pays its full latency) before the next issues.  Strictly no faster
    than any list schedule on the same machine."""
    for name in module.order:
        block = module.blocks[name]
        block.schedule = [[i] for i in range(len(block.instrs))]
        if machine is None:
            block.schedule_length = len(block.instrs)
        else:
            block.schedule_length = sum(
                max(1, machine.latency(ins.op_class())) for ins in block.instrs
            )
