"""Linear-scan register allocation with spilling.

Virtual registers are mapped onto the machine's architected register
file (minus a small scratch reserve used by spill reloads).  Intervals
come from block-level liveness (so values live around loop back edges
get whole-loop intervals), allocation is Poletto–Sarkar linear scan,
and spilled values live in the ``__spill`` pseudo-array — which means
spill traffic shows up as *memory operations* in the scheduler, cache
model and energy accounting.  That is precisely the mechanism behind
the paper's Pentium kernel-10 regression: MVE raises live-range counts
past 8 registers and the spill loads/stores eat the SLMS gain.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.backend.lir import Instr, Module

# Registers reserved for spill-reload scratch (cycled within one instr).
SCRATCH_COUNT = 3


class RegAllocError(Exception):
    """The machine has too few registers even for scratch."""


@dataclass
class AllocationResult:
    """Statistics for reporting and tests."""

    n_vregs: int
    n_spilled: int
    spill_slots: int
    max_pressure: int
    # Blocks where spill loads/stores were inserted: their pre-RA
    # schedules are stale and must be rebuilt.
    touched_blocks: List[str] = field(default_factory=list)


def _block_liveness(module: Module) -> Dict[str, Tuple[Set[str], Set[str]]]:
    """Per-block (live_in, live_out) over virtual registers."""
    use: Dict[str, Set[str]] = {}
    defs: Dict[str, Set[str]] = {}
    for name in module.order:
        block = module.blocks[name]
        u: Set[str] = set()
        d: Set[str] = set()
        for instr in block.instrs:
            for src in instr.srcs:
                if src not in d:
                    u.add(src)
            if instr.dst is not None:
                d.add(instr.dst)
        use[name] = u
        defs[name] = d

    live_in: Dict[str, Set[str]] = {n: set() for n in module.order}
    live_out: Dict[str, Set[str]] = {n: set() for n in module.order}
    changed = True
    while changed:
        changed = False
        for name in reversed(module.order):
            block = module.blocks[name]
            succs = block.successors(module.next_of(name))
            out: Set[str] = set()
            for s in succs:
                out |= live_in[s]
            inn = use[name] | (out - defs[name])
            if out != live_out[name] or inn != live_in[name]:
                live_out[name] = out
                live_in[name] = inn
                changed = True
    return {n: (live_in[n], live_out[n]) for n in module.order}


def _intervals(module: Module) -> Dict[str, Tuple[int, int]]:
    """Live interval per vreg over the linearized instruction index."""
    liveness = _block_liveness(module)
    intervals: Dict[str, Tuple[int, int]] = {}

    def extend(reg: str, pos: int) -> None:
        lo, hi = intervals.get(reg, (pos, pos))
        intervals[reg] = (min(lo, pos), max(hi, pos))

    index = 0
    for name in module.order:
        block = module.blocks[name]
        start = index
        end = index + max(0, len(block.instrs) - 1)
        live_in, live_out = liveness[name]
        for reg in live_in:
            extend(reg, start)
        for reg in live_out:
            extend(reg, end + 1)
        for instr in block.instrs:
            for src in instr.srcs:
                extend(src, index)
            if instr.dst is not None:
                extend(instr.dst, index)
            index += 1

    # Source scalars are observable program state (and may carry initial
    # values injected from the environment): pin their intervals to the
    # whole program so no other value ever shares their location.
    for vreg in module.scalar_regs.values():
        extend(vreg, 0)
        extend(vreg, index)
    return intervals


def _max_pressure(intervals: Dict[str, Tuple[int, int]]) -> int:
    events: List[Tuple[int, int]] = []
    for lo, hi in intervals.values():
        events.append((lo, 1))
        events.append((hi + 1, -1))
    events.sort()
    current = peak = 0
    for _pos, delta in events:
        current += delta
        peak = max(peak, current)
    return peak


def allocate(module: Module, num_registers: int) -> AllocationResult:
    """Allocate in place: rewrites every block's instructions.

    Scalars whose vreg is spilled are recorded in
    ``module.scalar_slots`` so the interpreter can still extract their
    final values (and inject env bindings).
    """
    if num_registers < SCRATCH_COUNT + 2:
        raise RegAllocError(
            f"need at least {SCRATCH_COUNT + 2} registers, got {num_registers}"
        )
    allocatable = num_registers - SCRATCH_COUNT
    scratch = [f"s{k}" for k in range(SCRATCH_COUNT)]

    intervals = _intervals(module)
    max_pressure = _max_pressure(intervals)

    order = sorted(intervals.items(), key=lambda kv: kv[1][0])
    free = [f"r{k}" for k in range(allocatable)]
    active: List[Tuple[int, str, str]] = []  # (end, vreg, phys)
    assignment: Dict[str, str] = {}
    spilled: Dict[str, int] = {}
    next_slot = 0

    for vreg, (start, end) in order:
        # Expire intervals that ended before this one starts.
        still_active: List[Tuple[int, str, str]] = []
        for entry in active:
            if entry[0] < start:
                free.append(entry[2])
            else:
                still_active.append(entry)
        active = still_active
        if free:
            phys = free.pop()
            assignment[vreg] = phys
            active.append((end, vreg, phys))
            active.sort()
        else:
            # Spill the interval with the furthest end.
            furthest = active[-1]
            if furthest[0] > end:
                # Steal its register; the old owner goes to memory.
                active.pop()
                spilled[furthest[1]] = next_slot
                next_slot += 1
                assignment.pop(furthest[1], None)
                assignment[vreg] = furthest[2]
                active.append((end, vreg, furthest[2]))
                active.sort()
            else:
                spilled[vreg] = next_slot
                next_slot += 1

    # ---- rewrite ---------------------------------------------------------
    touched: List[str] = []
    for name in module.order:
        block = module.blocks[name]
        new_instrs: List[Instr] = []
        n_before = len(block.instrs)
        for instr in block.instrs:
            scratch_cycle = 0
            new_srcs: List[str] = []
            for src in instr.srcs:
                if src in spilled:
                    reg = scratch[scratch_cycle % SCRATCH_COUNT]
                    scratch_cycle += 1
                    new_instrs.append(
                        Instr(op="ld", dst=reg, array="__spill", disp=spilled[src])
                    )
                    new_srcs.append(reg)
                else:
                    new_srcs.append(assignment.get(src, src))
            store_after: Optional[Instr] = None
            new_dst = instr.dst
            if instr.dst is not None:
                if instr.dst in spilled:
                    new_dst = scratch[scratch_cycle % SCRATCH_COUNT]
                    store_after = Instr(
                        op="st",
                        srcs=(new_dst,),
                        array="__spill",
                        disp=spilled[instr.dst],
                    )
                else:
                    new_dst = assignment.get(instr.dst, instr.dst)
            new_iv = instr.iv
            if new_iv is not None:
                if new_iv.iv in spilled:
                    new_iv = None  # the IV lives in memory: drop the affinity
                else:
                    from repro.backend.lir import IVInfo

                    new_iv = IVInfo(
                        iv=assignment.get(new_iv.iv, new_iv.iv),
                        coeff=new_iv.coeff,
                        offset=new_iv.offset,
                    )
            new_instrs.append(
                Instr(
                    op=instr.op,
                    dst=new_dst,
                    srcs=tuple(new_srcs),
                    imm=instr.imm,
                    array=instr.array,
                    disp=instr.disp,
                    label=instr.label,
                    name=instr.name,
                    iv=new_iv,
                )
            )
            if store_after is not None:
                new_instrs.append(store_after)
        block.instrs = new_instrs
        if len(new_instrs) != n_before:
            touched.append(name)

    # ---- fix scalar bindings ------------------------------------------------
    new_scalar_regs: Dict[str, str] = {}
    for sname, vreg in module.scalar_regs.items():
        if vreg in spilled:
            module.scalar_slots[sname] = spilled[vreg]
            new_scalar_regs[sname] = vreg  # placeholder; slot wins
        else:
            new_scalar_regs[sname] = assignment.get(vreg, vreg)
    module.scalar_regs = new_scalar_regs

    return AllocationResult(
        n_vregs=len(intervals),
        n_spilled=len(spilled),
        spill_slots=next_slot,
        max_pressure=max_pressure,
        touched_blocks=touched,
    )
