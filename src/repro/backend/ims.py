"""Machine-level Iterative Modulo Scheduling (Rau, MICRO'94).

Models the "high performance compiler" half of the paper's comparison:
ICC/XLC run modulo scheduling on the machine code of innermost loops.
We implement the real algorithm — MII = max(ResMII, RecMII), modulo
reservation table, priority-ordered placement with an iteration budget —
*as a timing transformation*: a successfully pipelined loop body is
tagged with its achieved II and the cycle simulator charges II per
iteration instead of the list-scheduled block length.  (Functional
execution keeps the original instruction order; IMS is semantics
preserving, so only the timing claim matters.)

The model deliberately keeps the documented real-world limitations the
paper exploits in §7:

* loops larger than ``machine.ims_max_ops`` are not attempted (§7
  point 1: "compilers restrict MS to small size loops");
* no rewriting of operand iteration indices — placement beyond the
  implied iteration is rejected exactly like Fig. 12's A3/A4 failure;
* an estimated MaxLive above the register file aborts the schedule
  (Fig. 11's register-pressure failure), falling back to list
  scheduling;
* memory ops without provable induction-variable affinity get
  conservative distance-1 dependences, serializing the kernel.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from math import ceil
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.backend.lir import Instr, Module
from repro.machines.model import MachineModel, res_mii_for_counts


@dataclass
class IMSReport:
    """Outcome of one IMS attempt."""

    loop: str
    attempted: bool
    success: bool
    ii: Optional[int] = None
    res_mii: Optional[int] = None
    rec_mii: Optional[int] = None
    max_live: Optional[int] = None
    reason: str = ""


@dataclass
class _Edge:
    src: int
    dst: int
    latency: int
    distance: int


def _loop_carried_mem_distance(
    first: Instr, second: Instr, step: int
) -> Optional[int]:
    """Iterations after which ``second`` touches ``first``'s address.

    Both must carry IV affinity on the same induction register.  Returns
    ``None`` when they never collide; a negative value means the
    collision is in the other direction.
    """
    assert first.iv is not None and second.iv is not None
    if first.iv.coeff != second.iv.coeff:
        return None if first.iv.coeff * second.iv.coeff != 0 else 0
    coeff = first.iv.coeff
    if coeff == 0:
        return 0 if first.iv.offset == second.iv.offset else None
    stride = coeff * step
    diff = first.iv.offset - second.iv.offset
    if diff % stride != 0:
        return None
    return diff // stride


def build_loop_dependences(
    instrs: List[Instr], step: int, machine: MachineModel
) -> Tuple[List[_Edge], bool]:
    """Dependence edges with iteration distances for a loop body.

    Returns the edges and a flag saying whether every memory pair was
    analyzable (False means conservative distance-1 serialization was
    injected somewhere).
    """
    n = len(instrs)
    edges: List[_Edge] = []
    precise = True

    def lat(i: int) -> int:
        return machine.latency(instrs[i].op_class())

    def add(src: int, dst: int, latency: int, distance: int) -> None:
        edges.append(_Edge(src, dst, latency, distance))

    # ---- register dependences -------------------------------------------
    defs: Dict[str, List[int]] = {}
    uses: Dict[str, List[int]] = {}
    for i, instr in enumerate(instrs):
        if instr.dst is not None:
            defs.setdefault(instr.dst, []).append(i)
        for s in instr.srcs:
            uses.setdefault(s, []).append(i)

    for reg, def_positions in defs.items():
        for d in def_positions:
            for u in uses.get(reg, []):
                # Reaching definition: nearest def before the use (same
                # iteration) or the last def (previous iteration).
                same_iter_defs = [p for p in def_positions if p < u]
                if same_iter_defs:
                    if d == max(same_iter_defs):
                        add(d, u, lat(d), 0)
                else:
                    if d == max(def_positions):
                        add(d, u, lat(d), 1)
                # Anti back to every later def.
                if u <= d:
                    add(u, d, 0, 1 if u <= d else 0)
            for d2 in def_positions:
                if d < d2:
                    add(d, d2, 1, 0)
            if len(def_positions) >= 1:
                add(max(def_positions), min(def_positions), 1, 1)
        for u in uses.get(reg, []):
            later_defs = [p for p in def_positions if p > u]
            if later_defs:
                add(u, min(later_defs), 0, 0)

    # ---- memory dependences ----------------------------------------------
    mem = [i for i, ins in enumerate(instrs) if ins.op in ("ld", "st")]
    for ai in mem:
        for bi in mem:
            a, b = instrs[ai], instrs[bi]
            if a.op == "ld" and b.op == "ld":
                continue
            if a.array != b.array:
                continue
            if a.array == "__spill":
                if a.disp == b.disp and ai != bi:
                    if ai < bi:
                        add(ai, bi, 1, 0)
                    add(bi, ai, 1, 1)
                continue
            if a.iv is None or b.iv is None:
                precise = False
                if ai < bi:
                    add(ai, bi, 1, 0)
                add(bi, ai, 1, 1)
                continue
            dist = _loop_carried_mem_distance(a, b, step)
            if dist is None:
                continue
            if dist > 0:
                add(ai, bi, 1, dist)
            elif dist == 0 and ai < bi:
                add(ai, bi, 1, 0)

    # Calls serialize everything (shouldn't appear in IMS candidates).
    for i, instr in enumerate(instrs):
        if instr.op == "call":
            precise = False
    return edges, precise


def res_mii(instrs: List[Instr], machine: MachineModel) -> int:
    """Resource-constrained MII: ``max over classes ⌈uses/units⌉``.

    The census is machine-level (LIR instructions); the ceiling formula
    is shared with the source-level resMII in ``core/schedulers``.
    """
    counts: Dict[str, int] = {}
    for instr in instrs:
        if instr.is_branch():
            continue
        cls = instr.op_class()
        counts[cls] = counts.get(cls, 0) + 1
    return res_mii_for_counts(machine, counts)


def _positive_cycle(weights) -> bool:
    """Floyd–Warshall longest-path positive-cycle detection.

    Vectorized max-plus relaxation: one outer iteration per pivot,
    each a whole-matrix ``max(dist, dist[:,mid] + dist[mid,:])``.
    Weights are integers (or -inf), far below 2**53, so float64
    arithmetic is exact and the verdict matches the scalar loop.
    """
    n = len(weights)
    if n == 0:
        return False
    dist = np.array(weights, dtype=np.float64)
    diag = np.diagonal(dist)
    for mid in range(n):
        # -inf propagates correctly through max-plus (no +inf entries
        # exist, so no NaN can appear).
        via = dist[:, mid : mid + 1] + dist[mid : mid + 1, :]
        np.maximum(dist, via, out=dist)
        # Relaxation only ever raises entries, so a positive diagonal
        # is permanent: returning early gives the exact final verdict.
        if (diag > 0).any():
            return True
    return False


def rec_mii(edges: List[_Edge], n: int) -> int:
    """Recurrence-constrained MII: the smallest II with no positive
    cycle under edge weight ``latency − II·distance`` (polynomial; the
    dense anti/output edge sets make cycle enumeration explode)."""
    if n == 0:
        return 1
    # Tightest label per node pair under the candidate II is the one
    # maximizing latency − II·distance; since II varies, keep the best
    # per (pair, distance) and take the max weight at query time.
    best_lat: Dict[Tuple[int, int, int], int] = {}
    for e in edges:
        key = (e.src, e.dst, e.distance)
        if e.latency > best_lat.get(key, -1):
            best_lat[key] = e.latency

    upper = max(
        (lat for lat in best_lat.values()), default=1
    ) * max(1, n)

    srcs = np.array([k[0] for k in best_lat], dtype=np.intp)
    dsts = np.array([k[1] for k in best_lat], dtype=np.intp)
    dists = np.array([k[2] for k in best_lat], dtype=np.float64)
    lats = np.array(list(best_lat.values()), dtype=np.float64)

    def feasible(ii: int) -> bool:
        weights = np.full((n, n), float("-inf"))
        if len(lats):
            np.maximum.at(weights, (srcs, dsts), lats - ii * dists)
        return not _positive_cycle(weights)

    lo, hi = 1, 1
    while not feasible(hi):
        lo = hi + 1
        hi *= 2
        if hi > upper:
            hi = upper
            break
    # Binary search the smallest feasible II in [lo, hi].
    while lo < hi:
        mid = (lo + hi) // 2
        if feasible(mid):
            hi = mid
        else:
            lo = mid + 1
    return lo


def modulo_schedule(
    instrs: List[Instr],
    edges: List[_Edge],
    machine: MachineModel,
    ii: int,
    budget_factor: int = 8,
) -> Optional[Dict[int, int]]:
    """Try to place all ops in a modulo reservation table at the given II.

    Returns op→cycle on success.  Placement follows Rau's iterative
    scheme: height-priority order, earliest legal start from scheduled
    predecessors, at most II candidate rows, eviction of conflicting
    ops with a bounded budget.
    """
    n = len(instrs)
    preds: Dict[int, List[_Edge]] = {i: [] for i in range(n)}
    succs: Dict[int, List[_Edge]] = {i: [] for i in range(n)}
    for e in edges:
        preds[e.dst].append(e)
        succs[e.src].append(e)

    # Height priority (longest latency path to any leaf, distances relax).
    height = [0] * n
    for _ in range(n):
        changed = False
        for i in range(n):
            for e in succs[i]:
                candidate = height[e.dst] + e.latency - ii * e.distance
                if candidate > height[i]:
                    height[i] = candidate
                    changed = True
        if not changed:
            break

    order = sorted(range(n), key=lambda i: (-height[i], i))
    placement: Dict[int, int] = {}
    # Reservation table: row -> {class: count}, plus per-row totals so
    # the issue-width check is O(1) instead of summing the row.
    table: List[Dict[str, int]] = [dict() for _ in range(ii)]
    row_total = [0] * ii
    cls_of = [instr.op_class() for instr in instrs]
    units = {cls: machine.unit_count(cls) for cls in set(cls_of)}
    issue_width = machine.issue_width
    budget = budget_factor * n

    def fits(op: int, cycle: int) -> bool:
        slot = cycle % ii
        cls = cls_of[op]
        if table[slot].get(cls, 0) >= units[cls]:
            return False
        if row_total[slot] >= issue_width:
            return False
        return True

    def occupy(op: int, cycle: int) -> None:
        slot = cycle % ii
        row = table[slot]
        cls = cls_of[op]
        row[cls] = row.get(cls, 0) + 1
        row_total[slot] += 1
        placement[op] = cycle

    def release(op: int) -> None:
        cycle = placement.pop(op)
        slot = cycle % ii
        table[slot][cls_of[op]] -= 1
        row_total[slot] -= 1

    worklist = deque(order)
    while worklist:
        if budget <= 0:
            return None
        budget -= 1
        op = worklist.popleft()
        est = 0
        for e in preds[op]:
            if e.src in placement:
                est = max(est, placement[e.src] + e.latency - ii * e.distance)
        est = max(est, 0)
        chosen: Optional[int] = None
        for cycle in range(est, est + ii):
            ok = fits(op, cycle)
            if not ok:
                continue
            # Successor constraints against already-placed ops.
            legal = True
            for e in succs[op]:
                if e.dst in placement:
                    if cycle + e.latency - ii * e.distance > placement[e.dst]:
                        legal = False
                        break
            if legal:
                chosen = cycle
                break
        if chosen is None:
            # Evict: force placement at est, kicking conflicting ops.
            cycle = est
            victims = [
                other
                for other, at in placement.items()
                if at % ii == cycle % ii and cls_of[other] == cls_of[op]
            ]
            # Also evict successor-violating ops.
            for e in succs[op]:
                if e.dst in placement and cycle + e.latency - ii * e.distance > placement[e.dst]:
                    victims.append(e.dst)
            if not victims:
                return None
            for victim in set(victims):
                if victim in placement:
                    release(victim)
                    worklist.append(victim)
            if not fits(op, cycle):
                return None
            occupy(op, cycle)
        else:
            occupy(op, chosen)
    return placement


def estimate_max_live(
    instrs: List[Instr],
    edges: List[_Edge],
    placement: Dict[int, int],
    ii: int,
) -> int:
    """Rau's MaxLive estimate: Σ value lifetimes / II (rounded up per
    value).  A value consumed d iterations later lives ``d·II`` extra
    cycles — the Fig. 11 pressure mechanism."""
    lifetime: Dict[int, int] = {}
    for e in edges:
        if e.latency == 0:
            continue  # anti edges don't extend value lifetimes
        if instrs[e.src].dst is None:
            continue
        if e.src not in placement or e.dst not in placement:
            continue
        span = placement[e.dst] + ii * e.distance - placement[e.src]
        if span > lifetime.get(e.src, 0):
            lifetime[e.src] = span
    total = 0
    for span in lifetime.values():
        total += max(1, ceil(span / ii))
    return total


def run_ims(
    module: Module,
    machine: MachineModel,
    max_ii_factor: int = 4,
) -> List[IMSReport]:
    """Attempt IMS on every single-block innermost loop in the module."""
    reports: List[IMSReport] = []
    for loop in module.loops:
        block = module.blocks.get(loop.body_block)
        if block is None:
            continue
        report = IMSReport(loop=loop.body_block, attempted=False, success=False)
        reports.append(report)
        body = [ins for ins in block.instrs]
        if not body:
            report.reason = "empty body"
            continue
        if len(body) > machine.ims_max_ops:
            report.reason = (
                f"loop too large for machine-level MS "
                f"({len(body)} > {machine.ims_max_ops} ops)"
            )
            continue
        report.attempted = True
        edges, _precise = build_loop_dependences(body, loop.step, machine)
        resource = res_mii(body, machine)
        recurrence = rec_mii(edges, len(body))
        report.res_mii = resource
        report.rec_mii = recurrence
        mii = max(resource, recurrence)
        sequential = block.schedule_length or len(body)
        placed: Optional[Dict[int, int]] = None
        ii = mii
        while ii <= max(mii * max_ii_factor, mii + 8):
            placed = modulo_schedule(body, edges, machine, ii)
            if placed is not None:
                break
            ii += 1
        if placed is None:
            report.reason = "no schedule found within II budget"
            continue
        max_live = estimate_max_live(body, edges, placed, ii)
        report.max_live = max_live
        if max_live > machine.num_registers:
            report.reason = (
                f"register pressure: MaxLive {max_live} exceeds "
                f"{machine.num_registers} registers"
            )
            continue
        if ii >= sequential:
            report.reason = (
                f"II {ii} not better than list schedule {sequential}"
            )
            continue
        block.ims_ii = ii
        report.success = True
        report.ii = ii
    return reports
