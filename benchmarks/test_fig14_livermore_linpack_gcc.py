"""Figure 14: Livermore & Linpack speedups over GCC -O3 on Itanium II.

The paper's weak-compiler case: SLMS compensates for the missing
unrolling/MVE in the final compiler.  Expectation: clear speedups on
parallel-body kernels, mild regressions on recurrence-bound loops.
"""

from benchmarks.conftest import attach_series
from repro.harness.figures import run_figure
from repro.harness.report import render_figure


def test_fig14(benchmark, quick):
    result = benchmark.pedantic(
        run_figure, args=("fig14",), kwargs={"quick": quick},
        iterations=1, rounds=1,
    )
    attach_series(benchmark, result)
    print()
    print(render_figure(result))
    series = result.series["slms_speedup"]
    assert all(v > 0 for v in series.values())
    # Shape: at least half the loops benefit, and the best gains are
    # substantial (the paper reports up to ~1.5-2x on the weak compiler).
    wins = [v for v in series.values() if v > 1.0]
    assert len(wins) >= len(series) // 2
    assert max(series.values()) > 1.3