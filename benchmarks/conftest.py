"""Shared helpers for the figure-regeneration benchmarks.

Each benchmark regenerates one paper figure through the harness and
records the series in ``benchmark.extra_info`` so the saved benchmark
JSON doubles as the reproduced dataset.  Set ``REPRO_FULL=1`` to run
the full workload lists (the default trims each suite to three
workloads so ``pytest benchmarks/`` stays in minutes).
"""

import os

import pytest


def full_mode() -> bool:
    return os.environ.get("REPRO_FULL", "0") == "1"


@pytest.fixture(scope="session")
def quick() -> bool:
    return not full_mode()


def attach_series(benchmark, result) -> None:
    """Record the reproduced figure data on the benchmark entry."""
    benchmark.extra_info["figure"] = result.figure
    benchmark.extra_info["title"] = result.title
    for label, values in result.series.items():
        benchmark.extra_info[label] = {
            name: round(value, 4) for name, value in values.items()
        }
    if result.notes:
        benchmark.extra_info["notes"] = list(result.notes)
