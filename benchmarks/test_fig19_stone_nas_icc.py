"""Figure 19: STONE & NAS over ICC -O3 (machine-level MS ON).

Same protocol as Fig. 18 over STONE and NAS.
"""

from benchmarks.conftest import attach_series
from repro.harness.figures import run_figure
from repro.harness.report import render_figure


def test_fig19(benchmark, quick):
    result = benchmark.pedantic(
        run_figure, args=("fig19",), kwargs={"quick": quick},
        iterations=1, rounds=1,
    )
    attach_series(benchmark, result)
    print()
    print(render_figure(result))
    series = result.series["slms_speedup"]
    assert any(v > 1.05 for v in series.values())