"""Figure 22: ARM7TDMI total cycles improvement.

Cycle counts correlate with the Fig. 21 power results.
"""

from benchmarks.conftest import attach_series
from repro.harness.figures import run_figure
from repro.harness.report import render_figure


def test_fig22(benchmark, quick):
    result = benchmark.pedantic(
        run_figure, args=("fig22",), kwargs={"quick": quick},
        iterations=1, rounds=1,
    )
    attach_series(benchmark, result)
    print()
    print(render_figure(result))
    series = result.series["cycle_improvement_pct"]
    assert any(v > 0 for v in series.values())