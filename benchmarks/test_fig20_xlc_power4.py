"""Figure 20: Livermore & Linpack + NAS over XLC on POWER4.

The third compiler/machine pair; includes the negative cases where
SLMS raises MaxLive past 32 registers and blocks machine MS
(the paper's idamax2 effect).
"""

from benchmarks.conftest import attach_series
from repro.harness.figures import run_figure
from repro.harness.report import render_figure


def test_fig20(benchmark, quick):
    result = benchmark.pedantic(
        run_figure, args=("fig20",), kwargs={"quick": quick},
        iterations=1, rounds=1,
    )
    attach_series(benchmark, result)
    print()
    print(render_figure(result))
    series = result.series["slms_speedup"]
    assert any(v > 1.1 for v in series.values())
    assert any(v < 1.0 for v in series.values())