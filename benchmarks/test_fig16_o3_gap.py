"""Figure 16: SLMS without -O3 closes the gap to -O3 (ICC, Itanium II).

The retargetability claim: a source-level compiler running SLMS can
recover a meaningful fraction of what -O3 buys.
"""

from benchmarks.conftest import attach_series
from repro.harness.figures import run_figure
from repro.harness.report import render_figure


def test_fig16(benchmark, quick):
    result = benchmark.pedantic(
        run_figure, args=("fig16",), kwargs={"quick": quick},
        iterations=1, rounds=1,
    )
    attach_series(benchmark, result)
    print()
    print(render_figure(result))
    closure = result.series["gap_closed_fraction"]
    gaps = result.series["O3_speedup"]
    # -O3 is a real gap (scheduling + rotation + IMS beats -O0)...
    assert sum(gaps.values()) / len(gaps) > 1.1
    # ...and SLMS at -O0 recovers a visible fraction of it somewhere.
    assert max(closure.values()) > 0.25