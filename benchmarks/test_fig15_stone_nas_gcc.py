"""Figure 15: STONE & NAS speedups over GCC -O3 on Itanium II.

Same protocol as Fig. 14 over the STONE and NAS corpora.
"""

from benchmarks.conftest import attach_series
from repro.harness.figures import run_figure
from repro.harness.report import render_figure


def test_fig15(benchmark, quick):
    result = benchmark.pedantic(
        run_figure, args=("fig15",), kwargs={"quick": quick},
        iterations=1, rounds=1,
    )
    attach_series(benchmark, result)
    print()
    print(render_figure(result))
    series = result.series["slms_speedup"]
    assert max(series.values()) > 1.3
    wins = [v for v in series.values() if v > 1.0]
    assert len(wins) >= len(series) // 2