"""Ablation benchmarks for the reproduction's design choices.

These isolate the knobs the paper discusses qualitatively:

* **expansion policy** — §3.3 vs §3.4: MVE (code growth, registers) vs
  scalar expansion (memory traffic) vs no expansion (serializing
  anti-dependences) on the same decomposed loop;
* **filter threshold** — §4's 0.85 memory-ref-ratio cut-off, swept to
  show it separates the winners from the losers;
* **predication** — §3.1's motivation: the EPIC backend keeps
  if-converted kernels straight-line;
* **loop rotation** — backend design choice: bottom-tested loops are the
  baseline every speedup is measured against.
"""

from repro.core.slms import SLMSOptions
from repro.backend.compiler import CompilerConfig, compile_and_run
from repro.harness.experiment import run_experiment
from repro.machines import itanium2, pentium
from repro.workloads import by_suite, get_workload
from repro.workloads.base import Workload


RECURRENCE_LOOP = Workload(
    name="ablate_expansion",
    suite="ablation",
    setup=(
        "float a[320];\n"
        "for (i = 0; i < 320; i++) a[i] = 0.25 * i + 1.0;\n"
    ),
    kernel=(
        "for (i = 2; i < 300; i++)\n"
        "    a[i] = a[i-1] + a[i-2] + a[i+1] + a[i+2];\n"
    ),
    description="§3.2's loop: needs decomposition, then expansion",
)


def test_expansion_policy(benchmark):
    """MVE vs scalar expansion vs plain schedule on the §3.2 loop."""

    def run():
        cycles = {}
        for mode in ("mve", "scalar", "none"):
            res = run_experiment(
                RECURRENCE_LOOP,
                itanium2(),
                "gcc_O3",
                SLMSOptions(expansion=mode),
            )
            assert res.slms_applied
            cycles[mode] = res.slms_cycles
        baseline = run_experiment(
            RECURRENCE_LOOP, itanium2(), "gcc_O3",
            SLMSOptions(expansion="none"),
        ).base_cycles
        cycles["original"] = baseline
        return cycles

    cycles = benchmark.pedantic(run, iterations=1, rounds=1)
    benchmark.extra_info["cycles"] = cycles
    # The paper's trade-off: MVE should be the fastest expansion (no
    # extra memory traffic), and scalar expansion must cost memory ops
    # but still beat the un-expanded schedule's serialization... or at
    # minimum both must be real schedules within 2x of each other.
    assert cycles["mve"] <= cycles["scalar"] * 1.05
    assert cycles["mve"] <= cycles["none"] * 1.05


def test_filter_threshold(benchmark):
    """Sweep the §4 threshold over Livermore: 0.85 keeps the winners."""

    corpus = by_suite("livermore")[:12]

    def run():
        table = {}
        for threshold in (0.55, 0.70, 0.85, 1.01):
            options = SLMSOptions(ratio_threshold=threshold)
            applied = 0
            speedups = []
            for wl in corpus:
                res = run_experiment(wl, itanium2(), "gcc_O3", options)
                if res.slms_applied:
                    applied += 1
                    speedups.append(res.speedup)
            geo = 1.0
            for s in speedups:
                geo *= s
            geo = geo ** (1 / len(speedups)) if speedups else 1.0
            table[threshold] = {
                "applied": applied,
                "geomean_applied": round(geo, 4),
            }
        return table

    table = benchmark.pedantic(run, iterations=1, rounds=1)
    benchmark.extra_info["sweep"] = {str(k): v for k, v in table.items()}
    # Raising the threshold admits more loops...
    assert table[1.01]["applied"] >= table[0.85]["applied"] >= table[0.55]["applied"]
    # ...and the loops the 0.85 cut admits are (weakly) better on
    # average than the indiscriminate set.
    assert table[0.85]["geomean_applied"] >= table[1.01]["geomean_applied"] - 0.05


def test_predication(benchmark):
    """§3.1: predication keeps if-converted kernels profitable on EPIC."""

    wl = get_workload("kernel17")  # the conditional-computation kernel

    def run():
        machine = itanium2()
        pred_on = CompilerConfig(name="epic_pred", list_schedule=True,
                                 ims=True, predication=True)
        pred_off = CompilerConfig(name="epic_nopred", list_schedule=True,
                                  ims=True, predication=False)
        out = {}
        for tag, config in (("pred", pred_on), ("branch", pred_off)):
            res = run_experiment(wl, machine, config)
            out[f"{tag}_speedup"] = round(res.speedup, 4)
            out[f"{tag}_slms_cycles"] = res.slms_cycles
        return out

    out = benchmark.pedantic(run, iterations=1, rounds=1)
    benchmark.extra_info.update(out)
    # With predication the SLMSed conditional kernel must not lose to
    # its branchy compilation.
    assert out["pred_slms_cycles"] <= out["branch_slms_cycles"]


def test_loop_rotation(benchmark):
    """Backend ablation: bottom-testing is worth real cycles."""

    wl = get_workload("daxpy")

    def run():
        machine = itanium2()
        rotated = CompilerConfig(name="rot", list_schedule=True)
        naive = CompilerConfig(name="norot", list_schedule=True, rotate=False)
        out = {}
        for tag, config in (("rotated", rotated), ("naive", naive)):
            _, res = compile_and_run(wl.full_program(), machine, config)
            out[tag] = res.metrics.cycles
        return out

    out = benchmark.pedantic(run, iterations=1, rounds=1)
    benchmark.extra_info["cycles"] = out
    assert out["rotated"] < out["naive"]


def test_slms_robust_against_spill_heavy_machine(benchmark):
    """The kernel-10 mechanism: MVE on 8 registers spills."""

    wl = get_workload("kernel10")

    def run():
        wide = run_experiment(wl, itanium2(), "gcc_O3")
        narrow = run_experiment(wl, pentium(), "gcc_O3")
        return {
            "itanium2_speedup": round(wide.speedup, 4),
            "pentium_speedup": round(narrow.speedup, 4),
        }

    out = benchmark.pedantic(run, iterations=1, rounds=1)
    benchmark.extra_info.update(out)
    # The register-rich machine gains far more from kernel 10's many
    # temporaries than the 8-register machine (the paper's Fig. 17
    # kernel-10 contrast).
    assert out["itanium2_speedup"] > out["pentium_speedup"]


def test_reduction_lanes(benchmark):
    """§5 lane splitting: the max loop gains on a wide machine."""

    from repro.workloads.base import Workload

    max_loop = Workload(
        name="ablate_max",
        suite="ablation",
        setup=(
            "float arr[512];\n"
            "float mx;\n"
            "for (i = 0; i < 512; i++) arr[i] = (i * 37) % 509 + 0.5;\n"
            "mx = arr[0];\n"
        ),
        kernel=(
            "for (i = 0; i < 500; i++)\n"
            "    if (mx < arr[i]) mx = arr[i];\n"
        ),
        description="§5 find-max reduction",
    )

    def run():
        out = {}
        for lanes in (0, 2, 4):
            res = run_experiment(
                max_loop,
                itanium2(),
                "icc_O3",
                SLMSOptions(force=True, reduction_lanes=lanes),
            )
            out[f"lanes{lanes}"] = res.slms_cycles
            out[f"lanes{lanes}_applied"] = res.slms_applied
        out["baseline"] = res.base_cycles
        return out

    out = benchmark.pedantic(run, iterations=1, rounds=1)
    benchmark.extra_info.update(
        {k: v for k, v in out.items() if isinstance(v, (int, float, bool))}
    )
    assert out["lanes2_applied"]
    # Lane splitting must beat the un-split SLMS schedule on the
    # serial comparison chain.
    assert out["lanes2"] <= out["lanes0"]
