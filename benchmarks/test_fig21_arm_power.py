"""Figure 21: ARM7TDMI power dissipation improvement.

Sim-Panalyzer-style energy accounting; the paper's conclusion is
that SLMS helps power on some loops and must be applied selectively.
"""

from benchmarks.conftest import attach_series
from repro.harness.figures import run_figure
from repro.harness.report import render_figure


def test_fig21(benchmark, quick):
    result = benchmark.pedantic(
        run_figure, args=("fig21",), kwargs={"quick": quick},
        iterations=1, rounds=1,
    )
    attach_series(benchmark, result)
    print()
    print(render_figure(result))
    series = result.series["power_improvement_pct"]
    assert any(v > 0 for v in series.values())
    assert any(v < 0 for v in series.values())  # selective application