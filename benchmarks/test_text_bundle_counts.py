"""§9.2 in-text evidence: bundles per iteration before/after SLMS.

The paper: kernel 8 went from 23 to 16 bundles; the fma loop from
5.8 to 4 bundles/iteration.  We check the direction on kernel 8 and
no degradation on the recurrence-bound fma loop.
"""

from benchmarks.conftest import attach_series
from repro.harness.figures import run_figure
from repro.harness.report import render_figure


def test_text_bundles(benchmark, quick):
    result = benchmark.pedantic(
        run_figure, args=("text_bundles",), kwargs={"quick": quick},
        iterations=1, rounds=1,
    )
    attach_series(benchmark, result)
    print()
    print(render_figure(result))
    before = result.series["bundles_before"]
    after = result.series["bundles_after"]
    assert after["kernel8"] < before["kernel8"]
    assert after["fma_loop"] <= before["fma_loop"] * 1.05