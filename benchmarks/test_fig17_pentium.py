"""Figure 17: SLMS on a superscalar (Pentium), GCC with and without -O3.

The 8-register x86 model: SLMS gains are smaller and register
pressure (spilling) produces the paper's kernel-10-style regressions.
"""

from benchmarks.conftest import attach_series
from repro.harness.figures import run_figure
from repro.harness.report import render_figure


def test_fig17(benchmark, quick):
    result = benchmark.pedantic(
        run_figure, args=("fig17",), kwargs={"quick": quick},
        iterations=1, rounds=1,
    )
    attach_series(benchmark, result)
    print()
    print(render_figure(result))
    o3 = result.series["speedup_O3"]
    assert all(v > 0 for v in o3.values())
    # The register-starved machine shows at least one SLMS regression
    # across the two series (the paper's kernel-10 effect).
    combined = list(o3.values()) + list(result.series["speedup_O0"].values())
    assert any(v < 1.0 for v in combined)