"""Figure 18: Livermore & Linpack over ICC -O3 (machine-level MS ON).

The co-existence claim: SLMS still finds speedups when the final
compiler runs its own iterative modulo scheduler.
"""

from benchmarks.conftest import attach_series
from repro.harness.figures import run_figure
from repro.harness.report import render_figure


def test_fig18(benchmark, quick):
    result = benchmark.pedantic(
        run_figure, args=("fig18",), kwargs={"quick": quick},
        iterations=1, rounds=1,
    )
    attach_series(benchmark, result)
    print()
    print(render_figure(result))
    series = result.series["slms_speedup"]
    assert any(v > 1.05 for v in series.values())
    # The co-existence evidence: machine MS ran on loops both before and
    # after SLMS (the paper: 26 of 31 loops).
    assert any("both=" in note for note in result.notes)