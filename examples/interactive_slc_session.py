"""An interactive source-level-compiler session (§8).

Run:  python examples/interactive_slc_session.py

§8 demonstrates the SLC workflow: the *user* inspects SLMS's outcome,
understands which dependence limited the II, edits the source, and
re-runs.  This script replays the paper's ``lw``/``temp`` example:

* the original loop gets II = 2 — the cycle through ``lw++`` of the
  current iteration and ``temp -= x[lw] * y[j]`` of the next one;
* the user moves ``lw++`` before the first statement, letting MVE
  rename ``lw`` and SLMS reach II = 1.
"""

from repro import SLMSOptions, slms, to_source
from repro.lang import parse_program
from repro.sim.interp import run_program, state_equal

SETUP = """
float x[128], y[128];
float temp = 100.0;
int lw;
for (i = 0; i < 128; i++) { x[i] = 0.01 * i + 0.5; y[i] = 0.02 * i + 1.0; }
"""

ORIGINAL = """
lw = 6;
for (j = 4; j < 100; j = j + 2) {
    temp -= x[lw] * y[j];
    lw++;
}
"""

# The user's edit (§8): advance lw before its use so MVE can rename it.
EDITED = """
lw = 6;
for (j = 4; j < 100; j = j + 2) {
    lw++;
    temp -= x[lw] * y[j];
}
"""


def report(tag: str, source: str, options: SLMSOptions):
    from repro.core.explain import explain
    from repro.lang.ast_nodes import For

    prog = parse_program(SETUP + source)
    outcome = slms(prog, options)
    kernel = outcome.loops[-1]
    loops = [s for s in prog.body if isinstance(s, For)]
    print(f"--- {tag}: the SLC's report ---")
    print(explain(loops[-1], kernel))
    return outcome


def main() -> None:
    options = SLMSOptions(enable_filter=False)

    print("The user submits the §8 loop to the source level compiler:")
    print(ORIGINAL)
    first = report("original", ORIGINAL, options)

    print()
    print("The SLC's report shows the II is limited by the dependence")
    print("cycle between `temp -= x[lw]*y[j]` (next iteration) and `lw++`")
    print("(current iteration).  The user moves `lw++` up:")
    print(EDITED)
    second = report("after the user's edit", EDITED, options)

    # The semantics of the two user versions differ intentionally (lw is
    # pre-incremented), but each transformed program must match *its own*
    # original bit-for-bit.
    for tag, src, outcome in (
        ("original", ORIGINAL, first),
        ("edited", EDITED, second),
    ):
        base = run_program(parse_program(SETUP + src))
        out = run_program(outcome.program)
        extra = {k for k in out if k not in base}
        assert state_equal(base, out, ignore=extra), tag
        print(f"[oracle] {tag}: transformed output identical ✓")

    print()
    print("final pipelined loop (paper notation):")
    print(to_source(second.program, style="paper"))


if __name__ == "__main__":
    main()
