"""Quickstart: pipeline a dot product with SLMS and measure it.

Run:  python examples/quickstart.py

Walks the full tool path on the paper's opening example (§1):

1. parse a C loop,
2. apply Source Level Modulo Scheduling (II = 1, MVE with two rotating
   temporaries — the exact transformation of the paper's Fig. 1 walk),
3. verify the transformed program computes bit-identical results,
4. compile both versions with the modeled "final compiler" and compare
   simulated cycles on the Itanium II machine model.
"""

from repro import slms, to_source
from repro.backend.compiler import compile_and_run
from repro.lang import parse_program
from repro.machines import itanium2
from repro.sim.interp import run_program, state_equal

SOURCE = """
float A[256], B[256];
float s = 0.0, t;
for (i = 0; i < 256; i++) { A[i] = i * 0.5; B[i] = 256 - i; }
for (i = 0; i < 256; i++) {
    t = A[i] * B[i];
    s = s + t;
}
"""


def main() -> None:
    print("=== original program ===")
    print(SOURCE)

    outcome = slms(SOURCE)
    kernel_report = outcome.loops[-1]
    print("=== SLMS report ===")
    print(f"applied:        {kernel_report.applied}")
    print(f"II:             {kernel_report.ii}")
    print(f"stages:         {kernel_report.stages}")
    print(f"expansion:      {kernel_report.expansion}"
          f" (unroll {kernel_report.unroll})")
    print()

    print("=== transformed program (paper notation) ===")
    print(to_source(outcome.program, style="paper"))

    # Correctness: the oracle interpreter must agree bit-for-bit.
    base = run_program(parse_program(SOURCE))
    transformed = run_program(outcome.program)
    new_names = {n for r in outcome.loops for n in r.new_scalars}
    assert state_equal(base, transformed, ignore=new_names)
    print("oracle check:   transformed program is bit-identical  ✓")
    print()

    # Performance: compile both with the same final compiler and machine.
    machine = itanium2()
    _, base_run = compile_and_run(SOURCE, machine, "gcc_O3")
    _, slms_run = compile_and_run(outcome.program, machine, "gcc_O3")
    print("=== simulated on the Itanium II model (gcc_O3 final compiler) ===")
    print(f"original cycles: {base_run.metrics.cycles}")
    print(f"SLMS cycles:     {slms_run.metrics.cycles}")
    print(f"speedup:         "
          f"{base_run.metrics.cycles / slms_run.metrics.cycles:.3f}x")


if __name__ == "__main__":
    main()
