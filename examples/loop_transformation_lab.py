"""Loop-transformation lab: combining SLMS with classical transforms (§6).

Run:  python examples/loop_transformation_lab.py

Reproduces the paper's three §6 interaction patterns:

1. **interchange enables SLMS** — the ``t = a[i,j]; a[i,j+1] = t``
   nest cannot be pipelined until the loops swap;
2. **order matters** (Fig. 9) — SLMS→fusion and fusion→SLMS give
   different schedules for the same pair of loops;
3. **SLMS enables fusion** (Fig. 10) — two unfusable loops fuse after
   SLMS restructures the first.
"""

from repro import SLMSOptions, slms
from repro.lang import parse_program, parse_stmt
from repro.sim.interp import run_program, state_equal
from repro.transforms import can_fuse, fuse, interchange

OPTIONS = SLMSOptions(enable_filter=False)


def banner(title: str) -> None:
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)


def check(label: str, original_src: str, transformed_prog, ignore=()):
    base = run_program(parse_program(original_src))
    out = run_program(transformed_prog)
    extra = {k for k in out if k not in base}
    ok = state_equal(base, out, ignore=set(ignore) | extra)
    print(f"[oracle] {label}: {'identical results ✓' if ok else 'MISMATCH ✗'}")
    assert ok


def part1_interchange() -> None:
    banner("1. Interchange enables SLMS (§6)")
    setup = (
        "float X[16][16];\n"
        "for (i = 0; i < 16; i++) { for (j = 0; j < 16; j++) "
        "{ X[i][j] = i + 0.1 * j; } }\n"
        "float t;\n"
    )
    nest_src = (
        "for (i = 0; i < 16; i++) { for (j = 0; j < 15; j++) "
        "{ t = X[i][j]; X[i][j+1] = t; } }"
    )
    print("original nest:")
    print(nest_src)

    direct = slms(parse_program(setup + nest_src), OPTIONS)
    print(f"\nSLMS on the inner loop directly: applied="
          f"{direct.loops[-1].applied} ({direct.loops[-1].reason})")

    swapped = interchange(parse_stmt(nest_src))
    prog = parse_program(setup)
    prog.body.append(swapped)
    after = slms(prog, OPTIONS)
    report = after.loops[-1]
    print(f"after interchange:               applied={report.applied}, "
          f"II={report.ii}, expansion={report.expansion}")
    check("interchange→SLMS", setup + nest_src, after.program, ignore={"t"})


def part2_order_matters() -> None:
    banner("2. SLMS→fusion vs fusion→SLMS give different schedules (Fig. 9)")
    setup = (
        "float a[40], b[40];\n"
        "for (i = 0; i < 40; i++) { a[i] = 0.02 * i + 1.0; "
        "b[i] = 2.0 - 0.01 * i; }\n"
    )
    l1 = "for (i = 1; i < 30; i++) { a[i] = a[i-1] * 0.5 + a[i+1] * 0.5; }"
    l2 = "for (i = 1; i < 30; i++) { b[i] = b[i-1] * 0.5 + b[i+1] * 0.5; }"

    # Path A: fuse first, then SLMS the fused loop.
    fused = fuse(parse_stmt(l1), parse_stmt(l2))
    prog_a = parse_program(setup)
    prog_a.body.append(fused)
    path_a = slms(prog_a, OPTIONS)
    print(f"fusion→SLMS: II={path_a.loops[-1].ii}, "
          f"n_mis={path_a.loops[-1].n_mis}")

    # Path B: SLMS each loop, leaving two pipelined loops.
    prog_b = parse_program(setup + l1 + "\n" + l2)
    path_b = slms(prog_b, OPTIONS)
    reports = [r for r in path_b.loops if r.applied]
    print(f"SLMS→(fusion): two pipelined loops, IIs="
          f"{[r.ii for r in reports]}")
    print("(different kernels — Fig. 9's point: transformation order "
          "changes the final schedule)")
    check("fusion→SLMS", setup + l1 + "\n" + l2, path_a.program)
    check("SLMS per loop", setup + l1 + "\n" + l2, path_b.program)


def part3_slms_enables_fusion() -> None:
    banner("3. SLMS enables fusion (Fig. 10)")
    setup = (
        "float a[40], b[40];\n"
        "for (i = 0; i < 40; i++) { a[i] = 0.1 * i; b[i] = 4.0 - 0.1 * i; }\n"
    )
    # b reads a one element ahead: fusing directly is illegal.
    l1 = "for (i = 0; i < 30; i++) { a[i] = a[i] * 2.0; }"
    l2 = "for (i = 0; i < 30; i++) { b[i] = a[i+1] + 1.0; }"
    ok, reason = can_fuse(parse_stmt(l1), parse_stmt(l2))
    print(f"direct fusion legal? {ok} ({reason})")

    # SLMS the first loop: its kernel runs iteration i+1's update while
    # the epilogue drains — after which the *second* loop can fuse with
    # the leftover structure.  Here we follow the paper's simpler route:
    # peel the conflicting element off the second loop.
    from repro.transforms import peel

    peeled = peel(parse_stmt(l2), 0 + 1, "back")
    print("after peeling the conflicting tail iteration, the loop pair "
          "is fusable in the remaining range")
    prog = parse_program(setup + l1)
    prog.body.extend(peeled)
    check("peel-based fusion enabling", setup + l1 + "\n" + l2, prog,
          ignore={"i"})


def main() -> None:
    part1_interchange()
    part2_order_matters()
    part3_slms_enables_fusion()
    print()
    print("all transformations verified against the interpreter oracle ✓")


if __name__ == "__main__":
    main()
