/* 1-D Jacobi-style relaxation pair from the transformation lab:
 * fusable neighbors with a loop-carried flow dependence each. */
float a[40], b[40];
for (i = 0; i < 40; i++) { a[i] = 0.02 * i + 1.0; b[i] = 2.0 - 0.02 * i; }
for (i = 1; i < 30; i++) { a[i] = a[i-1] * 0.5 + a[i+1] * 0.5; }
for (i = 1; i < 30; i++) { b[i] = b[i-1] * 0.5 + b[i+1] * 0.5; }
