"""Embedded power tuning on the ARM7TDMI model (§9.3, Figs. 21–22).

Run:  python examples/embedded_power_tuning.py

The paper's embedded-systems result: on a scalar ARM core, SLMS's
extracted parallelism can only hide memory latency, so it saves power on
some loops and costs power on others — it must be applied *selectively*.
This example plays the role of the §4 filter-tuning engineer:

1. measure energy for a set of Livermore/Linpack kernels, SLMS on vs
   off, using the Sim-Panalyzer-style energy model;
2. show the naive always-on policy vs a selective policy that keeps a
   transformation only when the model predicts a win.
"""

from repro.harness.experiment import run_experiment
from repro.machines import arm7tdmi
from repro.workloads import get_workload

KERNELS = [
    "kernel1", "kernel3", "kernel5", "kernel7", "kernel12",
    "daxpy", "ddot", "dscal",
]


def main() -> None:
    machine = arm7tdmi()
    print(f"machine: {machine.name} (1-wide, "
          f"{machine.num_registers} registers, soft float)")
    print()
    header = (
        f"{'kernel':<10}{'base nJ':>12}{'slms nJ':>12}"
        f"{'Δ power':>10}{'Δ cycles':>10}  policy"
    )
    print(header)
    print("-" * len(header))

    always_on = 0.0
    selective = 0.0
    baseline = 0.0
    for name in KERNELS:
        res = run_experiment(get_workload(name), machine, "arm_gcc")
        base_nj = res.base_energy / 1000.0
        slms_nj = res.slms_energy / 1000.0
        d_power = (1 - res.slms_energy / res.base_energy) * 100
        d_cycles = (1 - res.slms_cycles / res.base_cycles) * 100
        keep = res.slms_energy < res.base_energy
        print(
            f"{name:<10}{base_nj:>12.1f}{slms_nj:>12.1f}"
            f"{d_power:>9.1f}%{d_cycles:>9.1f}%  "
            f"{'keep SLMS' if keep else 'keep original'}"
        )
        baseline += res.base_energy
        always_on += res.slms_energy
        selective += min(res.base_energy, res.slms_energy)

    print("-" * len(header))
    print(f"always-on SLMS : {(1 - always_on / baseline) * 100:+.1f}% energy")
    print(f"selective SLMS : {(1 - selective / baseline) * 100:+.1f}% energy")
    print()
    print("the paper's conclusion (§9.3): results over the ARM 'should be "
          "regarded as a success, provided that SLMS will be used "
          "selectively'")


if __name__ == "__main__":
    main()
