/* The paper's §8 interactive session, after the user's edit: lw is
 * advanced before its use so MVE can rename it. */
float x[128], y[128];
float temp = 100.0;
int lw;
for (i = 0; i < 128; i++) { x[i] = 0.01 * i + 0.5; y[i] = 0.02 * i + 1.0; }
lw = 6;
for (j = 4; j < 100; j = j + 2) {
    lw++;
    temp -= x[lw] * y[j];
}
