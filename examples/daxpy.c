/* Linpack's daxpy: y += alpha * x, the paper's bread-and-butter
 * SLMS win on in-order machines. */
float dx[300], dy[300];
float da = 0.25;
for (i = 0; i < 300; i++) { dx[i] = 0.5 * i; dy[i] = 300 - i; }
for (i = 0; i < 300; i++) {
    dy[i] = dy[i] + da * dx[i];
}
