/* The README/quickstart dot product: SLMS pipelines the second loop
 * to II = 1 with two rotating MVE temporaries. */
float A[256], B[256];
float s = 0.0, t;
for (i = 0; i < 256; i++) { A[i] = i * 0.5; B[i] = 256 - i; }
for (i = 0; i < 256; i++) {
    t = A[i] * B[i];
    s = s + t;
}
