"""§10 extensions: pipelining while-loops and frequent-path kernels.

Run:  python examples/while_loop_pipelining.py

The paper's §10 argues SLMS generalizes past counted loops and
demonstrates two cases by example; this script runs both through the
implemented extensions and measures them on the machine models:

1. the **shifted string copy** while-loop, unrolled and then software
   pipelined with rotating load registers (the paper's reg1/reg2 form);
2. a **frequent-path** loop (``if (A) B; else C; D;``) whose kernel is
   built from the hot path only, with fix-up code off the fast path
   (Fig. 23).
"""

from repro.backend.compiler import compile_and_run
from repro.core.extensions import frequent_path_slms, pipeline_while, unroll_while
from repro.lang import parse_program, parse_stmt, to_source
from repro.machines import itanium2
from repro.sim.interp import run_program, state_equal

STRING_SETUP = """
float a[512];
for (k = 0; k < 400; k++) a[k] = 400 - k;
a[400] = 0.0;
int i = 0;
"""
STRING_LOOP = "while (a[i+2]) { a[i] = a[i+2]; i++; }"


def measure(setup: str, stmts, label: str) -> int:
    prog = parse_program(setup)
    prog.body.extend(stmts)
    _, run = compile_and_run(prog, itanium2(), "gcc_O3")
    print(f"  {label:<22} {run.metrics.cycles:>8} cycles")
    return run.metrics.cycles


def part1_string_copy() -> None:
    print("=== §10.1: the shifted string copy ===")
    print(STRING_LOOP)
    loop = parse_stmt(STRING_LOOP)

    base = run_program(parse_program(STRING_SETUP + STRING_LOOP))
    variants = {
        "original": [loop.clone()],
        "unrolled x2": unroll_while(loop, 2),
        "pipelined (reg1/reg2)": pipeline_while(loop),
    }
    print()
    print("pipelined form (paper notation):")
    for stmt in variants["pipelined (reg1/reg2)"]:
        print(to_source(stmt, style="paper"))
    print()
    for label, stmts in variants.items():
        prog = parse_program(STRING_SETUP)
        prog.body.extend([s.clone() for s in stmts])
        out = run_program(prog)
        assert state_equal(
            base, out, ignore={"reg1", "reg2"}
        ), label
        measure(STRING_SETUP, stmts, label)
    print("  (all variants verified bit-identical)")


FREQ_SETUP = """
float x[512], y[512], z[512];
for (k = 0; k < 512; k++) {
    x[k] = 0.5 * k + 1.0;
    z[k] = 512 - k;
}
x[100] = -1.0;
x[300] = -2.0;
"""
FREQ_LOOP = (
    "for (i = 0; i < 480; i++) {"
    " if (x[i] > 0.0) { y[i] = x[i] * 2.0; }"
    " else { y[i] = 0.0 - x[i]; }"
    " z[i] = z[i] + y[i];"
    "}"
)


def part2_frequent_path() -> None:
    print()
    print("=== §10.2: frequent-path SLMS (Fig. 23) ===")
    print("hot path A;B;D runs 478 of 480 iterations")
    loop = parse_stmt(FREQ_LOOP)
    transformed = frequent_path_slms(loop)

    base = run_program(parse_program(FREQ_SETUP + FREQ_LOOP))
    prog = parse_program(FREQ_SETUP)
    prog.body.extend([s.clone() for s in transformed])
    out = run_program(prog)
    assert state_equal(base, out, ignore={"i"})
    print("verified: fix-up path handles the two cold iterations exactly")
    print()
    measure(FREQ_SETUP, [loop.clone()], "original")
    measure(FREQ_SETUP, transformed, "frequent-path kernel")


def main() -> None:
    part1_string_copy()
    part2_frequent_path()


if __name__ == "__main__":
    main()
